#include "linearizability/exhaustive.hpp"

#include <algorithm>
#include <unordered_set>

namespace bloom87 {
namespace {

struct memo_key {
    std::uint64_t mask;
    value_t value;

    friend bool operator==(memo_key, memo_key) noexcept = default;
};

struct memo_hash {
    std::size_t operator()(memo_key k) const noexcept {
        std::uint64_t h = k.mask * 0x9e3779b97f4a7c15ULL;
        h ^= static_cast<std::uint64_t>(k.value) + 0x517cc1b727220a95ULL +
             (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h);
    }
};

class searcher {
public:
    searcher(const std::vector<operation>& ops, value_t initial)
        : ops_(ops), initial_(initial) {}

    bool run(exhaustive_result& out) {
        path_.reserve(ops_.size());
        const bool found = dfs(0, initial_);
        out.states_explored = states_;
        if (found) out.witness = path_;
        return found;
    }

private:
    // True when `o` may be linearized next: no unlinearized operation's
    // response precedes o's invocation.
    bool minimal(std::uint64_t mask, std::size_t o) const {
        const event_pos inv = ops_[o].invoked;
        for (std::size_t p = 0; p < ops_.size(); ++p) {
            if (p == o || (mask >> p) & 1ULL) continue;
            if (ops_[p].responded < inv) return false;
        }
        return true;
    }

    bool dfs(std::uint64_t mask, value_t current) {
        ++states_;
        if (mask == (ops_.size() == 64 ? ~0ULL : (1ULL << ops_.size()) - 1)) {
            return true;
        }
        if (!visited_.insert(memo_key{mask, current}).second) return false;

        for (std::size_t o = 0; o < ops_.size(); ++o) {
            if ((mask >> o) & 1ULL) continue;
            if (!minimal(mask, o)) continue;
            const operation& op = ops_[o];
            value_t next = current;
            if (op.kind == op_kind::write) {
                next = op.value;
            } else if (op.value != current) {
                continue;  // this read cannot linearize here
            }
            path_.push_back(o);
            if (dfs(mask | (1ULL << o), next)) return true;
            path_.pop_back();
        }
        return false;
    }

    const std::vector<operation>& ops_;
    value_t initial_;
    std::uint64_t states_{0};
    std::vector<std::size_t> path_;
    std::unordered_set<memo_key, memo_hash> visited_;
};

}  // namespace

exhaustive_result check_exhaustive(const std::vector<operation>& raw,
                                   value_t initial) {
    exhaustive_result out;
    normalized_history norm =
        normalize_history(raw, initial, /*require_unique_writes=*/false);
    if (!norm.ok()) {
        out.defect = norm.defect;
        return out;
    }
    if (norm.ops.size() > 62) {
        out.defect = "history too large for exhaustive checking (limit 62 ops)";
        return out;
    }
    searcher s(norm.ops, initial);
    out.linearizable = s.run(out);
    return out;
}

}  // namespace bloom87
