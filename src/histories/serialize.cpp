#include "histories/serialize.hpp"

#include <map>
#include <ostream>
#include <sstream>
#include <string>

namespace bloom87 {
namespace {

const std::map<std::string, event_kind>& kind_names() {
    static const std::map<std::string, event_kind> names{
        {"R_start", event_kind::sim_invoke_read},
        {"R_finish", event_kind::sim_respond_read},
        {"W_start", event_kind::sim_invoke_write},
        {"W_finish", event_kind::sim_respond_write},
        {"real_read", event_kind::real_read},
        {"real_write", event_kind::real_write},
    };
    return names;
}

std::string name_of(event_kind k) {
    for (const auto& [name, kind] : kind_names()) {
        if (kind == k) return name;
    }
    return "?";
}

}  // namespace

void write_gamma(std::ostream& os, const std::vector<event>& gamma,
                 value_t initial) {
    os << "gamma v1 initial=" << initial << "\n";
    for (const event& e : gamma) {
        os << name_of(e.kind) << " proc=" << e.processor << " op=" << e.op;
        if (is_real(e.kind)) {
            os << " reg=" << int(e.reg) << " tag=" << int(e.tag)
               << " value=" << e.value;
            if (e.kind == event_kind::real_read) {
                os << " observed=";
                if (e.observed_write == no_event) {
                    os << "initial";
                } else {
                    os << e.observed_write;
                }
            }
        } else {
            os << " value=" << e.value;
        }
        os << "\n";
    }
}

gamma_parse_result read_gamma(std::istream& is) {
    gamma_parse_result out;
    std::string line;
    std::size_t line_no = 0;
    bool header_seen = false;

    auto fail = [&](const std::string& msg) {
        out.error = "line " + std::to_string(line_no) + ": " + msg;
        return out;
    };

    while (std::getline(is, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word)) continue;

        if (!header_seen) {
            if (word != "gamma") return fail("expected 'gamma v1' header");
            std::string version;
            if (!(ls >> version) || version != "v1") {
                return fail("unsupported gamma version");
            }
            std::string field;
            while (ls >> field) {
                if (field.starts_with("initial=")) {
                    out.initial = std::stoll(field.substr(8));
                }
            }
            header_seen = true;
            continue;
        }

        const auto kind_it = kind_names().find(word);
        if (kind_it == kind_names().end()) {
            return fail("unknown event kind '" + word + "'");
        }
        event e;
        e.kind = kind_it->second;
        std::string field;
        while (ls >> field) {
            const auto eq = field.find('=');
            if (eq == std::string::npos) {
                return fail("malformed field '" + field + "'");
            }
            const std::string key = field.substr(0, eq);
            const std::string val = field.substr(eq + 1);
            try {
                if (key == "proc") {
                    e.processor = static_cast<processor_id>(std::stoi(val));
                } else if (key == "op") {
                    e.op = static_cast<op_index>(std::stoul(val));
                } else if (key == "reg") {
                    e.reg = static_cast<std::uint8_t>(std::stoi(val));
                } else if (key == "tag") {
                    e.tag = val != "0";
                } else if (key == "value") {
                    e.value = std::stoll(val);
                } else if (key == "observed") {
                    e.observed_write =
                        val == "initial" ? no_event : std::stoull(val);
                } else {
                    return fail("unknown field '" + key + "'");
                }
            } catch (const std::exception&) {
                return fail("bad number in field '" + field + "'");
            }
        }
        out.gamma.push_back(e);
    }
    if (!header_seen) {
        line_no = 0;
        return fail("empty input (no gamma header)");
    }
    return out;
}

}  // namespace bloom87
