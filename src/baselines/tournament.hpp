// bloom87: the BROKEN four-writer tournament register (paper, Section 8).
//
// "Consider N = 2^k writers arranged in a tournament... However, this does
// not work." This file implements the natural-but-wrong extension so the
// repository can demonstrate the failure: four writers over two real
// TWO-writer registers, running Bloom's tag-bit protocol one level up.
// Writers Wr00, Wr01 share real register 0; Wr10, Wr11 share register 1.
// A writer in pair p reads the other pair's tag t' and writes (v, p (+) t').
//
// Per the paper's footnote 6, the counterexample does not depend on how the
// two-writer registers are built -- "it works for any protocol, or even
// hardware atomic two-writer registers" -- so we use hardware MRMW atomic
// words as the strongest possible substrate. The register is STILL not
// atomic: an overwritten value can reappear (Figure 5), which
// bench_fig5_counterexample replays deterministically and the
// linearizability checker flags.
//
// The split-phase writer API (begin_write / finish_write) exists precisely
// to drive the Figure 5 schedule: Wr00 performs its real reads, "goes to
// sleep", and finishes its real write after Wr11 and Wr01 have written.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>

#include "core/protocol.hpp"
#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "registers/tagged.hpp"
#include "util/bits.hpp"
#include "util/sync.hpp"

namespace bloom87 {

/// Four-writer n-reader register via the (incorrect) tournament scheme.
/// Writer ids: 0 = Wr00, 1 = Wr01 (pair 0); 2 = Wr10, 3 = Wr11 (pair 1).
/// Reader processor ids start at 4 by convention.
template <word_packable T>
class tournament_four_writer {
public:
    class writer;
    class reader;

    explicit tournament_four_writer(T initial, event_log* log = nullptr) noexcept
        : regs_{pack_tagged(initial, false), pack_tagged(initial, false)},
          log_(log) {}

    tournament_four_writer(const tournament_four_writer&) = delete;
    tournament_four_writer& operator=(const tournament_four_writer&) = delete;

    /// Write port for writer `id` in [0, 4). One thread per port.
    [[nodiscard]] writer make_writer(int id) noexcept { return writer{*this, id}; }

    /// Read port; `processor` names the reader in logged histories.
    [[nodiscard]] reader make_reader(processor_id processor = 4) noexcept {
        return reader{*this, processor};
    }

    /// Current contents of real register i (for the Figure 5 table).
    [[nodiscard]] tagged<T> real_contents(int i) const noexcept {
        const std::uint64_t w = regs_[i].load(std::memory_order_seq_cst);
        return {unpack_value<T>(w), unpack_tag(w)};
    }

    class writer {
    public:
        /// Full write: real read of the other pair's register, then the
        /// real write -- the two-writer protocol run at tournament level.
        void write(T v) {
            begin_write(v);
            finish_write();
        }

        /// Phase 1: the real read + tag computation ("(reads)" in Fig. 5).
        void begin_write(T v) {
            assert(!armed_ && "begin_write called twice without finish_write");
            const op_index op = next_op_++;
            log(event_kind::sim_invoke_write, op, static_cast<value_t>(v));
            const std::uint64_t other =
                owner_->regs_[1 - pair_].load(std::memory_order_seq_cst);
            pending_ = pack_tagged(v, writer_tag_choice(pair_, unpack_tag(other)));
            pending_op_ = op;
            armed_ = true;
        }

        /// Phase 2: the single real write, possibly long after phase 1.
        void finish_write() {
            assert(armed_ && "finish_write without begin_write");
            owner_->regs_[pair_].store(pending_, std::memory_order_seq_cst);
            log(event_kind::sim_respond_write, pending_op_, 0);
            armed_ = false;
        }

        [[nodiscard]] int id() const noexcept { return id_; }
        [[nodiscard]] int pair() const noexcept { return pair_; }

    private:
        friend class tournament_four_writer;
        writer(tournament_four_writer& owner, int id) noexcept
            : owner_(&owner), id_(id), pair_(id >> 1) {
            assert(id >= 0 && id < 4);
        }

        void log(event_kind kind, op_index op, value_t v) {
            if (owner_->log_ == nullptr) return;
            event e;
            e.kind = kind;
            e.processor = static_cast<processor_id>(id_);
            e.op = op;
            e.value = v;
            owner_->log_->append(e);
        }

        tournament_four_writer* owner_;
        int id_;
        int pair_;
        op_index next_op_{0};
        std::uint64_t pending_{0};
        op_index pending_op_{0};
        bool armed_{false};
    };

    class reader {
    public:
        [[nodiscard]] T read() {
            const op_index op = next_op_++;
            log(event_kind::sim_invoke_read, op, 0);
            const std::uint64_t w0 = owner_->regs_[0].load(std::memory_order_seq_cst);
            const std::uint64_t w1 = owner_->regs_[1].load(std::memory_order_seq_cst);
            const int pick = reader_pick(unpack_tag(w0), unpack_tag(w1));
            const std::uint64_t w2 =
                owner_->regs_[pick].load(std::memory_order_seq_cst);
            const T result = unpack_value<T>(w2);
            log(event_kind::sim_respond_read, op, static_cast<value_t>(result));
            return result;
        }

    private:
        friend class tournament_four_writer;
        reader(tournament_four_writer& owner, processor_id processor) noexcept
            : owner_(&owner), processor_(processor) {}

        void log(event_kind kind, op_index op, value_t v) {
            if (owner_->log_ == nullptr) return;
            event e;
            e.kind = kind;
            e.processor = processor_;
            e.op = op;
            e.value = v;
            owner_->log_->append(e);
        }

        tournament_four_writer* owner_;
        processor_id processor_;
        op_index next_op_{0};
    };

private:
    // Hardware MRMW atomic words standing in for the two "real two-writer
    // registers" (strongest substrate; the scheme fails regardless).
    std::array<std::atomic<std::uint64_t>, 2> regs_;
    event_log* log_;
};

}  // namespace bloom87
