// bloom87: structured views over a recorded gamma sequence.
//
// A raw event vector (from event_log::snapshot) is parsed into a `history`:
// per-operation records with invocation/response gamma positions and the
// real-register accesses each operation performed. Both checkers consume
// this form: the generic linearizability checker uses only the simulated
// operations; the Bloom constructive linearizer also uses the real accesses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "histories/events.hpp"

namespace bloom87 {

/// Kind of a simulated operation.
enum class op_kind : std::uint8_t { read, write };

/// One simulated operation reconstructed from gamma.
struct operation {
    op_id id{};
    op_kind kind{op_kind::read};
    value_t value{0};          ///< write: argument; read: returned value
    event_pos invoked{no_event};
    event_pos responded{no_event};  ///< no_event if the op never finished (crash/pending)
    std::vector<event_pos> real_accesses;  ///< gamma positions, in program order

    [[nodiscard]] bool complete() const noexcept { return responded != no_event; }
};

/// A parsed execution: the gamma backbone plus per-operation records.
struct history {
    std::vector<event> gamma;        ///< the raw recorded sequence
    std::vector<operation> ops;      ///< all simulated operations
    value_t initial_value{0};        ///< v0 of the simulated register

    /// Index of each op in `ops`, keyed by its identity.
    std::map<op_id, std::size_t> index;

    [[nodiscard]] const operation* find(op_id id) const {
        auto it = index.find(id);
        return it == index.end() ? nullptr : &ops[it->second];
    }
};

/// Errors found while parsing a raw event sequence into a history.
struct parse_error {
    std::string message;
    event_pos position{no_event};
};

/// Builds a history from a raw gamma sequence.
///
/// Enforces well-formedness of the recording itself (not atomicity!):
///  * each (processor, op) has at most one invocation and one response,
///    response after invocation, matching kinds;
///  * real accesses fall inside their operation's interval;
///  * per-processor operations do not overlap (input-correctness, paper §3);
///  * real_read events cite an `observed_write` that is a real_write to the
///    same register at an earlier position (or no_event), and that write is
///    the *last* write to that register before the read.
///
/// Returns the history, or the first violation found.
struct parse_result {
    history hist;
    std::optional<parse_error> error;

    [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

[[nodiscard]] parse_result parse_history(std::vector<event> gamma,
                                         value_t initial_value);

/// Renders a history as one event per line (for diagnostics and goldens).
[[nodiscard]] std::string format_history(const history& h);

/// Renders only the external schedule (simulated invocations/responses).
[[nodiscard]] std::string format_external_schedule(const history& h);

}  // namespace bloom87
