// Substrate-parameterized concurrency tests: the two-writer register must
// be atomic over EVERY substrate the repository provides. Each typed case
// runs threaded workloads, logs the external schedule, and checks it with
// the polynomial register checker.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/recording.hpp"
#include "registers/seqlock.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

constexpr std::size_t k_readers = 2;

/// Uniform construction across substrate shapes. Each maker returns the
/// register with external-schedule logging attached (the recording
/// substrate wires the log through its own constructor and additionally
/// records the real accesses).
template <typename Reg>
struct maker;

template <>
struct maker<recording_register> {
    static auto make(event_log* log) {
        return std::make_unique<two_writer_register<value_t, recording_register>>(
            0, log);
    }
};
template <>
struct maker<seqlock_register<value_t>> {
    static auto make(event_log* log) {
        auto reg = std::make_unique<
            two_writer_register<value_t, seqlock_register<value_t>>>(0);
        reg->set_external_log(log);
        return reg;
    }
};
template <>
struct maker<ported_substrate<value_t>> {
    static auto make(event_log* log) {
        auto reg = std::make_unique<
            two_writer_register<value_t, ported_substrate<value_t>>>(
            0, [](tagged<value_t> init, int reg_index) {
                return ported_substrate<value_t>(init, k_readers, reg_index);
            });
        reg->set_external_log(log);
        return reg;
    }
};

template <typename Reg>
class SubstrateConcurrency : public ::testing::Test {};

using Substrates =
    ::testing::Types<recording_register, seqlock_register<value_t>,
                     ported_substrate<value_t>>;
TYPED_TEST_SUITE(SubstrateConcurrency, Substrates);

TYPED_TEST(SubstrateConcurrency, ConcurrentHistoriesAtomic) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        event_log log(1 << 17);
        auto reg = maker<TypeParam>::make(&log);
        start_gate gate;
        std::atomic<bool> done{false};

        std::thread w0([&] {
            gate.wait();
            for (std::uint32_t i = 0; i < 600; ++i) {
                reg->writer0().write(unique_value(0, i));
            }
        });
        std::thread w1([&] {
            gate.wait();
            for (std::uint32_t i = 0; i < 600; ++i) {
                reg->writer1().write(unique_value(1, i));
            }
        });
        std::vector<std::thread> pool;
        for (std::size_t r = 0; r < k_readers; ++r) {
            pool.emplace_back([&, r] {
                auto rd = reg->make_reader(static_cast<processor_id>(2 + r));
                gate.wait();
                for (int i = 0;
                     i < 3000 && !done.load(std::memory_order_acquire); ++i) {
                    (void)rd.read();
                }
            });
        }
        gate.open();
        w0.join();
        w1.join();
        done.store(true, std::memory_order_release);
        for (auto& t : pool) t.join();

        ASSERT_FALSE(log.overflowed());
        parse_result parsed = parse_history(log.snapshot(), 0);
        ASSERT_TRUE(parsed.ok()) << parsed.error->message;
        const auto res = check_fast(parsed.hist.ops, 0);
        ASSERT_TRUE(res.ok()) << *res.defect;
        EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.diagnosis;
    }
}

TYPED_TEST(SubstrateConcurrency, MixedReadersAndWriterReads) {
    event_log log(1 << 17);
    auto reg = maker<TypeParam>::make(&log);
    start_gate gate;

    std::thread w0([&] {
        gate.wait();
        for (std::uint32_t i = 0; i < 400; ++i) {
            if (i % 5 == 0) {
                (void)reg->writer0().read();
            } else {
                reg->writer0().write(unique_value(0, i));
            }
        }
    });
    std::thread w1([&] {
        gate.wait();
        for (std::uint32_t i = 0; i < 400; ++i) {
            if (i % 7 == 0) {
                (void)reg->writer1().read_cached();
            } else {
                reg->writer1().write(unique_value(1, i));
            }
        }
    });
    std::thread rd([&] {
        auto port = reg->make_reader(2);
        gate.wait();
        for (int i = 0; i < 800; ++i) (void)port.read();
    });
    gate.open();
    w0.join();
    w1.join();
    rd.join();

    ASSERT_FALSE(log.overflowed());
    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto res = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

TYPED_TEST(SubstrateConcurrency, CrashSweepOverSubstrate) {
    event_log log(1 << 17);
    auto reg = maker<TypeParam>::make(&log);
    start_gate gate;

    std::thread w0([&] {
        gate.wait();
        for (std::uint32_t i = 0; i < 300; ++i) {
            switch (i % 4) {
                case 0:
                    reg->writer0().write_crashed(unique_value(0, i),
                                                 crash_point::before_read);
                    break;
                case 1:
                    reg->writer0().write_crashed(unique_value(0, i),
                                                 crash_point::after_read);
                    break;
                case 2:
                    reg->writer0().write_crashed(unique_value(0, i),
                                                 crash_point::after_write);
                    break;
                default:
                    reg->writer0().write(unique_value(0, i));
                    break;
            }
        }
    });
    std::thread w1([&] {
        gate.wait();
        for (std::uint32_t i = 0; i < 300; ++i) {
            reg->writer1().write(unique_value(1, i));
        }
    });
    std::thread rd([&] {
        auto port = reg->make_reader(2);
        gate.wait();
        for (int i = 0; i < 600; ++i) (void)port.read();
    });
    gate.open();
    w0.join();
    w1.join();
    rd.join();

    ASSERT_FALSE(log.overflowed());
    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto res = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

}  // namespace
}  // namespace bloom87
