// bloom87: access-observer hook for instrumented registers.
//
// registers/instrumented.hpp already counts every real read and write; an
// access_observer lets it STREAM those accesses to an analysis (the
// happens-before race detector) without the wrapper knowing anything about
// vector clocks. Kept dependency-free so the header-only registers library
// can include it without pulling in the analysis implementation.
#pragma once

#include <cstdint>

namespace bloom87::analysis {

/// Receives every real register access from an instrumented source, in the
/// order the source observed them. `thread` is the accessing processor,
/// `location` identifies the register.
class access_observer {
public:
    access_observer() = default;
    access_observer(const access_observer&) = default;
    access_observer& operator=(const access_observer&) = default;
    virtual ~access_observer() = default;

    virtual void on_real_access(std::int16_t thread, std::uint32_t location,
                                bool is_write) = 0;
};

}  // namespace bloom87::analysis
