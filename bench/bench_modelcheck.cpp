// [TAB-D] Bounded model checking summary.
//
// States explored, distinct external histories, and the atomicity verdict
// for each protocol configuration the repository verifies exhaustively:
// Bloom's two-writer register (PASS at every bound), the deliberately
// broken tag-rule mutant (FAIL), the four-writer tournament (FAIL, with a
// violating trace printed), and the substrate constructions at their exact
// consistency levels.
//
// Every configuration runs on the sequential engine (threads = 1) and on
// the parallel work-sharing engine (threads = hardware_concurrency, or
// --threads N); the verdict and the schedule-invariant counters must agree
// between the two. Usage:
//
//   bench_modelcheck [--threads N] [--json BENCH_modelcheck.json]
//
// --json writes a machine-readable record (states/sec, wall ms per engine,
// thread count, speedup vs 1 thread) so the perf trajectory is tracked
// across PRs.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::mc;

namespace {

mc_register make_reg(reg_level level, mc_value domain, mc_value committed) {
    mc_register r;
    r.level = level;
    r.domain = domain;
    r.committed = committed;
    return r;
}

struct bench_config {
    std::string name;
    std::string prop_name;
    property prop{property::atomic};
    value_t initial{0};
    bool expect_pass{true};
    bool print_first_violation{false};
    std::function<sim_state()> make;
};

struct timed_result {
    explore_result res;
    double ms{0};
};

timed_result run(const bench_config& c, unsigned threads) {
    // Return the previous configuration's freed heap to the kernel before
    // starting the clock: glibc otherwise charges a one-off consolidation
    // pass (hundreds of ms after a multi-million-state run) to whichever
    // explore() happens to allocate next.
    harness::trim_heap();
    const sim_state s = c.make();
    explore_config cfg;
    cfg.prop = c.prop;
    cfg.initial = c.initial;
    cfg.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    explore_result res = explore(s, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    return {std::move(res),
            std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

/// The counters that must not depend on the thread count. When a run
/// stopped early (first violation, with stop_at_first_violation set) or
/// was truncated, only the verdict itself is schedule-invariant -- how much
/// of the space each engine covered before the stop is not.
bool verdicts_match(const explore_result& a, const explore_result& b) {
    if (a.property_holds != b.property_holds || a.truncated != b.truncated) {
        return false;
    }
    const bool stopped_early = !a.property_holds || a.truncated;
    if (stopped_early) return true;
    return a.leaves == b.leaves &&
           a.distinct_histories == b.distinct_histories &&
           a.violations == b.violations;
}

std::vector<bench_config> make_configs() {
    std::vector<bench_config> configs;

    configs.push_back({"Bloom 2x2 writes, 1 reader", "atomic", property::atomic,
                       0, true, false, [] {
                           sim_state s;
                           s.registers = {make_reg(reg_level::atomic, 12, 0),
                                          make_reg(reg_level::atomic, 12, 0)};
                           s.procs.push_back(make_bloom_writer(0, {1, 2}));
                           s.procs.push_back(make_bloom_writer(1, {3, 4}));
                           s.procs.push_back(make_bloom_reader(2, 1));
                           return s;
                       }});
    configs.push_back({"Bloom 1x1 writes, 2 readers", "atomic", property::atomic,
                       0, true, false, [] {
                           sim_state s;
                           s.registers = {make_reg(reg_level::atomic, 6, 0),
                                          make_reg(reg_level::atomic, 6, 0)};
                           s.procs.push_back(make_bloom_writer(0, {1}));
                           s.procs.push_back(make_bloom_writer(1, {2}));
                           s.procs.push_back(make_bloom_reader(2, 2));
                           s.procs.push_back(make_bloom_reader(3, 1));
                           return s;
                       }});
    configs.push_back({"Bloom MUTANT (wrong tag rule)", "atomic",
                       property::atomic, 0, false, false, [] {
                           sim_state s;
                           s.registers = {make_reg(reg_level::atomic, 12, 0),
                                          make_reg(reg_level::atomic, 12, 0)};
                           s.procs.push_back(make_bloom_writer(0, {1, 2}));
                           s.procs.push_back(
                               make_bloom_writer_wrong_tag(1, {3, 4}));
                           s.procs.push_back(make_bloom_reader(2, 2));
                           return s;
                       }});
    configs.push_back({"Bloom, reader samples tags reversed (fn. 5)", "atomic",
                       property::atomic, 0, true, false, [] {
                           sim_state s;
                           s.registers = {make_reg(reg_level::atomic, 12, 0),
                                          make_reg(reg_level::atomic, 12, 0)};
                           s.procs.push_back(make_bloom_writer(0, {1, 2}));
                           s.procs.push_back(make_bloom_writer(1, {3, 4}));
                           s.procs.push_back(make_bloom_reader_reversed(2, 2));
                           return s;
                       }});
    configs.push_back({"Bloom ABLATION (third read skipped)", "atomic",
                       property::atomic, 0, false, false, [] {
                           sim_state s;
                           s.registers = {make_reg(reg_level::atomic, 12, 0),
                                          make_reg(reg_level::atomic, 12, 0)};
                           s.procs.push_back(make_bloom_writer(0, {1, 2}));
                           s.procs.push_back(make_bloom_writer(1, {3, 4}));
                           s.procs.push_back(make_bloom_reader_no_reread(2, 2));
                           return s;
                       }});
    configs.push_back({"Tournament 4-writer (Fig. 5)", "atomic",
                       property::atomic, 1, false, true, [] {
                           sim_state s;
                           s.registers = {
                               make_reg(reg_level::atomic, 10,
                                        encode_tagged(1, false)),
                               make_reg(reg_level::atomic, 10,
                                        encode_tagged(1, false))};
                           s.procs.push_back(make_tournament_writer(0, {2}));
                           s.procs.push_back(make_tournament_writer(1, {3}));
                           s.procs.push_back(make_tournament_writer(3, {4}));
                           s.procs.push_back(make_tournament_reader(4, 2));
                           return s;
                       }});
    configs.push_back({"Simpson 4-slot, safe data + atomic ctrl", "atomic",
                       property::atomic, 0, true, false, [] {
                           sim_state s;
                           for (int i = 0; i < 4; ++i) {
                               s.registers.push_back(
                                   make_reg(reg_level::safe, 3, 0));
                           }
                           for (int i = 0; i < 4; ++i) {
                               s.registers.push_back(
                                   make_reg(reg_level::atomic, 2, 0));
                           }
                           s.procs.push_back(make_fourslot_writer(0, {1, 2}));
                           s.procs.push_back(make_fourslot_reader(0, 1, 2));
                           return s;
                       }});
    configs.push_back({"Simpson 4-slot, regular ctrl bits", "atomic",
                       property::atomic, 0, false, false, [] {
                           sim_state s;
                           for (int i = 0; i < 4; ++i) {
                               s.registers.push_back(
                                   make_reg(reg_level::safe, 3, 0));
                           }
                           for (int i = 0; i < 4; ++i) {
                               s.registers.push_back(
                                   make_reg(reg_level::regular, 2, 0));
                           }
                           s.procs.push_back(make_fourslot_writer(0, {1, 2}));
                           s.procs.push_back(make_fourslot_reader(0, 1, 2));
                           return s;
                       }});
    configs.push_back({"SWMR-from-SWSR, 2 readers", "atomic", property::atomic,
                       0, true, false, [] {
                           sim_state s;
                           for (int i = 0; i < 2 + 4; ++i) {
                               s.registers.push_back(
                                   make_reg(reg_level::atomic, 3, 0));
                           }
                           s.procs.push_back(make_mr_writer(0, 2, {1, 2}));
                           s.procs.push_back(make_mr_reader(0, 2, 0, 2, 2, {1, 2}));
                           s.procs.push_back(make_mr_reader(0, 2, 1, 3, 1, {1, 2}));
                           return s;
                       }});
    configs.push_back({"SWMR-from-SWSR, report round SKIPPED", "atomic",
                       property::atomic, 0, false, false, [] {
                           sim_state s;
                           for (int i = 0; i < 2 + 4; ++i) {
                               s.registers.push_back(
                                   make_reg(reg_level::atomic, 3, 0));
                           }
                           s.procs.push_back(make_mr_writer(0, 2, {1, 2}));
                           s.procs.push_back(
                               make_mr_reader_no_report(0, 2, 0, 2, 2, {1, 2}));
                           s.procs.push_back(
                               make_mr_reader_no_report(0, 2, 1, 3, 2, {1, 2}));
                           return s;
                       }});
    configs.push_back({"Lamport unary (3 regular bits)", "regular",
                       property::regular_swmr, 0, true, false, [] {
                           sim_state s;
                           for (int i = 0; i < 3; ++i) {
                               s.registers.push_back(make_reg(
                                   reg_level::regular, 2, i == 0 ? 1 : 0));
                           }
                           s.procs.push_back(make_unary_writer(0, 3, {2, 1}));
                           s.procs.push_back(make_unary_reader(0, 3, 1, 2));
                           return s;
                       }});
    configs.push_back({"Lamport unary (3 regular bits)", "atomic",
                       property::atomic, 0, false, false, [] {
                           sim_state s;
                           for (int i = 0; i < 3; ++i) {
                               s.registers.push_back(make_reg(
                                   reg_level::regular, 2, i == 0 ? 1 : 0));
                           }
                           s.procs.push_back(make_unary_writer(0, 3, {2, 1}));
                           s.procs.push_back(make_unary_reader(0, 3, 1, 2));
                           return s;
                       }});
    configs.push_back({"safe bit, naive writer", "regular",
                       property::regular_swmr, 0, false, false, [] {
                           sim_state s;
                           s.registers.push_back(make_reg(reg_level::safe, 2, 0));
                           s.procs.push_back(make_bit_writer(0, {1, 1}, false));
                           s.procs.push_back(make_bit_reader(0, 1, 1));
                           return s;
                       }});
    configs.push_back({"safe bit, write-only-changes writer", "regular",
                       property::regular_swmr, 0, true, false, [] {
                           sim_state s;
                           s.registers.push_back(make_reg(reg_level::safe, 2, 0));
                           s.procs.push_back(
                               make_bit_writer(0, {1, 1, 0, 1}, true));
                           s.procs.push_back(make_bit_reader(0, 1, 2));
                           return s;
                       }});
    return configs;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    unsigned threads = 0;
    harness::flag_parser parser("bench_modelcheck",
                                "bounded exhaustive verification, both engines");
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    parser.add_unsigned("threads",
                        "parallel-engine thread count (0 = hardware)",
                        &threads);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    if (threads == 0) threads = hw;

    print_banner(std::cout, "TAB-D", "Bounded exhaustive verification");
    std::cout << "parallel engine: " << threads << " thread(s), "
              << "hardware_concurrency = " << hw << "\n\n";

    const std::vector<bench_config> configs = make_configs();

    table t({"configuration", "property", "states", "histories", "verdict",
             "t=1 ms", "t=" + std::to_string(threads) + " ms", "speedup"});

    struct row {
        const bench_config* cfg;
        timed_result seq;
        timed_result par;
        bool match;
    };
    std::vector<row> rows;
    bool all_match = true;
    for (const bench_config& c : configs) {
        timed_result seq = run(c, 1);
        // threads == 1: the parallel run would be the same engine; reuse.
        timed_result par = threads > 1 ? run(c, threads) : seq;
        const bool match = verdicts_match(seq.res, par.res);
        all_match &= match;
        const bool pass = par.res.property_holds;
        t.row({c.name, c.prop_name, with_commas(par.res.states_explored),
               with_commas(par.res.distinct_histories),
               std::string(pass ? "PASS" : "FAIL") +
                   (pass == c.expect_pass ? " (expected)"
                                          : "  ** UNEXPECTED **") +
                   (match ? "" : "  ** ENGINE MISMATCH **"),
               fixed(seq.ms, 1), fixed(par.ms, 1),
               fixed(par.ms > 0 ? seq.ms / par.ms : 1.0, 2)});
        if (c.print_first_violation && par.res.first_violation) {
            std::cout << "  " << c.name << " -- a violating history:\n"
                      << format_operations(par.res.first_violation->hist);
        }
        rows.push_back({&c, std::move(seq), std::move(par), match});
    }
    t.print(std::cout);
    if (!all_match) {
        std::cout << "\n** the parallel engine DISAGREES with the sequential "
                     "engine on at least one configuration **\n";
    }

    if (!json_path.empty()) {
        // Machine-readable engine comparison: raw (uncomma'd) numbers, one
        // row per configuration, in the shared bloom87-harness-v4 shape so
        // the perf trajectory is tracked with the same tooling as every
        // other bench.
        table engines({"name", "property", "states", "distinct_histories",
                       "property_holds", "expected_pass", "verdicts_match",
                       "threads", "wall_ms_1_thread", "wall_ms_n_threads",
                       "states_per_sec_1_thread", "states_per_sec_n_threads",
                       "speedup"});
        for (const row& r : rows) {
            auto per_sec = [](const timed_result& tr) {
                return tr.ms > 0
                           ? 1000.0 *
                                 static_cast<double>(tr.res.states_explored) /
                                 tr.ms
                           : 0.0;
            };
            engines.row(
                {r.cfg->name, r.cfg->prop_name,
                 std::to_string(r.seq.res.states_explored),
                 std::to_string(r.seq.res.distinct_histories),
                 r.seq.res.property_holds ? "true" : "false",
                 r.cfg->expect_pass ? "true" : "false",
                 r.match ? "true" : "false", std::to_string(threads),
                 fixed(r.seq.ms, 3), fixed(r.par.ms, 3),
                 fixed(per_sec(r.seq), 0), fixed(per_sec(r.par), 0),
                 fixed(r.par.ms > 0 ? r.seq.ms / r.par.ms : 1.0, 3)});
        }
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "modelcheck");
        rep.add_table("verification_matrix", t);
        rep.add_table("engine_comparison", engines);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return all_match ? 0 : 1;
}
