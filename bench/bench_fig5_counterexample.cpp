// [FIG5] Regenerates Figure 5 of the paper: the four-writer tournament
// counterexample (due to Leslie Lamport). Replays the exact schedule from
// the paper's table on the broken tournament register, prints the same
// rows, shows the linearizability verdicts, and contrasts with (a) Bloom's
// two-writer register under the same schedule shape and (b) an exhaustive
// model-checking search for the minimal violation.
//
//   bench_fig5_counterexample [--json BENCH_fig5.json]
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/tournament.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/history.hpp"
#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/recording.hpp"
#include "util/table.hpp"

namespace {

// The paper uses letters; we mirror them onto integers for the registers.
constexpr std::int32_t val_a = 1, val_x = 10, val_c = 20, val_d = 30;

std::string letter(std::int32_t v) {
    switch (v) {
        case val_a: return "'a'";
        case val_x: return "'x'";
        case val_c: return "'c'";
        case val_d: return "'d'";
        default: return "?";
    }
}

std::string cell(bloom87::tagged<std::int32_t> t) {
    return letter(t.value) + "," + (t.tag ? "1" : "0");
}

}  // namespace

int main(int argc, char** argv) {
    using namespace bloom87;

    harness::flag_parser parser("bench_fig5_counterexample",
                                "four-writer tournament counterexample");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    // The bounded-search verdicts, collected for the --json report.
    table verdicts({"system", "checker", "verdict"});

    print_banner(std::cout, "FIG5", "Four-writer tournament counterexample");

    event_log log(256);
    tournament_four_writer<std::int32_t> reg(val_a, &log);
    auto rd = reg.make_reader(4);
    auto wr00 = reg.make_writer(0);
    auto wr01 = reg.make_writer(1);
    auto wr11 = reg.make_writer(3);

    table t({"Processor", "Action", "Reg0", "Reg1", "Value"});
    auto row = [&](const std::string& proc, const std::string& act) {
        t.row({proc, act, cell(reg.real_contents(0)), cell(reg.real_contents(1)),
               letter(rd.read())});
    };

    row("initial", "-");
    wr00.begin_write(val_x);
    row("Wr00", "real reads");
    wr11.write(val_c);
    row("Wr11", "sim. writes");
    wr01.write(val_d);
    row("Wr01", "sim. writes");
    wr00.finish_write();
    row("Wr00", "real writes");
    t.print(std::cout);

    std::cout << "\nWhen Wr01 writes, the value 'c' becomes obsolete.\n"
              << "When Wr00 finishes its write, 'c' REAPPEARS.\n";

    // Checker verdicts on the recorded external history.
    parse_result parsed = parse_history(log.snapshot(), val_a);
    if (!parsed.ok()) {
        std::cout << "history malformed: " << parsed.error->message << "\n";
        return 1;
    }
    const auto fast = check_fast(parsed.hist.ops, val_a);
    const auto slow = check_exhaustive(parsed.hist.ops, val_a);
    std::cout << "\nfast register checker : "
              << (fast.linearizable ? "ATOMIC" : "NOT ATOMIC")
              << (fast.diagnosis.empty() ? "" : "  (" + fast.diagnosis + ")")
              << "\nexhaustive checker    : "
              << (slow.linearizable ? "ATOMIC" : "NOT ATOMIC") << "\n";
    verdicts.row({"tournament, replayed schedule", "fast",
                  fast.linearizable ? "ATOMIC" : "NOT ATOMIC"});
    verdicts.row({"tournament, replayed schedule", "exhaustive",
                  slow.linearizable ? "ATOMIC" : "NOT ATOMIC"});

    // Contrast: the same adversarial shape against Bloom's TWO-writer
    // register (one writer pausing mid-write) stays atomic.
    print_banner(std::cout, "FIG5b",
                 "Same schedule shape on Bloom's two-writer register");
    {
        event_log log2(256);
        two_writer_register<value_t, recording_register> breg(val_a, &log2);
        auto brd = breg.make_reader(2);
        // Writer 0 pauses between its real read and real write while writer 1
        // writes twice -- the closest two-writer analogue of Figure 5.
        breg.writer0().write_paced(val_x, [&] {
            breg.writer1().write(val_c);
            (void)brd.read();
            breg.writer1().write(val_d);
            (void)brd.read();
        });
        (void)brd.read();

        parse_result p2 = parse_history(log2.snapshot(), val_a);
        const auto v2 = check_fast(p2.hist.ops, val_a);
        std::cout << "two-writer register under the analogous schedule: "
                  << (v2.linearizable ? "ATOMIC (as proven in the paper)"
                                      : "NOT ATOMIC (bug!)")
                  << "\n";
        verdicts.row({"Bloom two-writer, analogous schedule", "fast",
                      v2.linearizable ? "ATOMIC" : "NOT ATOMIC"});
    }

    // Exhaustive confirmation: the explorer finds a violating schedule with
    // three tournament writers and one reader, and certifies there is NONE
    // for the two-writer protocol at the same bound.
    print_banner(std::cout, "FIG5c", "Bounded exhaustive search");
    {
        using namespace bloom87::mc;
        sim_state s;
        mc_register r;
        r.level = reg_level::atomic;
        r.domain = 16;
        r.committed = encode_tagged(1, false);
        s.registers = {r, r};
        s.procs.push_back(make_tournament_writer(0, {2}));
        s.procs.push_back(make_tournament_writer(1, {3}));
        s.procs.push_back(make_tournament_writer(3, {4}));
        s.procs.push_back(make_tournament_reader(4, 2));
        explore_config cfg;
        cfg.initial = 1;
        const explore_result res = explore(s, cfg);
        std::cout << "tournament, 3 writers x 1 write, 1 reader x 2 reads:\n"
                  << "  states=" << with_commas(res.states_explored)
                  << " histories=" << with_commas(res.distinct_histories)
                  << " -> " << (res.property_holds ? "ATOMIC" : "VIOLATION FOUND")
                  << "\n";
        if (res.first_violation) {
            std::cout << "  first violating history:\n";
            for (const std::string& line :
                 {std::string(format_operations(res.first_violation->hist))}) {
                std::cout << "    " << line;
            }
        }

        sim_state s2;
        s2.registers = {r, r};
        s2.procs.push_back(make_bloom_writer(0, {2, 3}));
        s2.procs.push_back(make_bloom_writer(1, {4, 5}));
        s2.procs.push_back(make_bloom_reader(2, 2));
        explore_config cfg2;
        cfg2.initial = 1;
        const explore_result res2 = explore(s2, cfg2);
        std::cout << "Bloom two-writer, 2 writers x 2 writes, 1 reader x 2 reads:\n"
                  << "  states=" << with_commas(res2.states_explored)
                  << " histories=" << with_commas(res2.distinct_histories)
                  << " -> " << (res2.property_holds ? "ATOMIC on every schedule"
                                                    : "VIOLATION (bug!)")
                  << "\n";
        verdicts.row({"tournament, bounded exhaustive search", "modelcheck",
                      res.property_holds ? "ATOMIC" : "VIOLATION FOUND"});
        verdicts.row({"Bloom two-writer, bounded exhaustive search",
                      "modelcheck",
                      res2.property_holds ? "ATOMIC" : "VIOLATION FOUND"});
    }

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fig5_counterexample");
        rep.add_table("paper_schedule", t);
        rep.add_table("verdicts", verdicts);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
