// bloom87: the two-writer n-reader atomic register (the paper's result).
//
// two_writer_register<T, Reg> simulates a 2-writer, n-reader atomic register
// on top of two 1-writer, (n+1)-reader atomic registers of type Reg holding
// tagged<T>. Costs match the paper exactly:
//
//   simulated write           = 1 real read + 1 real write
//   simulated read            = 3 real reads
//   simulated read by writer  = 1 or 2 real reads (cached variant, §5)
//
// Both operations are wait-free (no loops, no waiting on other processors)
// and a writer crashing at any point leaves the register consistent: the
// write's only externally visible step is its single final real write.
//
// Usage:
//   two_writer_register<int, packed_atomic_register<int>> reg(0);
//   auto& w0 = reg.writer0();            // owned by thread A
//   auto& w1 = reg.writer1();            // owned by thread B
//   auto r   = reg.make_reader();        // one per reader thread
//   w0.write(42);
//   int v = r.read();
//
// Thread contract: writer0()/writer1() handles must each be driven by at
// most one thread at a time; every reader thread uses its own reader handle.
// This mirrors the paper's model: each port of the register is a sequential
// processor.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "core/protocol.hpp"
#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "histories/history.hpp"
#include "registers/concepts.hpp"
#include "registers/tagged.hpp"

namespace bloom87 {

/// Where a deliberately injected writer crash happens (failure testing).
enum class crash_point : std::uint8_t {
    before_read,   ///< crash before any real access: write never visible
    after_read,    ///< crash between real read and real write: never visible
    after_write,   ///< crash after the real write: write fully visible
};

template <typename T, typename Reg>
    requires swmr_register<Reg, tagged<T>>
class two_writer_register {
public:
    class writer;
    class reader;

    /// Builds the register initialized to v0: both real registers start with
    /// value v0 and tag bit 0 (paper, Section 5).
    explicit two_writer_register(T initial)
        requires std::constructible_from<Reg, tagged<T>>
        : regs_{Reg{tagged<T>{initial, false}}, Reg{tagged<T>{initial, false}}},
          writers_{writer{*this, 0}, writer{*this, 1}} {}

    /// Recording-substrate constructor: forwards the shared gamma log and
    /// the register index to each real register, and logs the simulated
    /// operations' invocations/responses as well.
    two_writer_register(T initial, event_log* log)
        requires std::constructible_from<Reg, tagged<T>, event_log*, std::uint8_t>
        : regs_{Reg{tagged<T>{initial, false}, log, 0},
                Reg{tagged<T>{initial, false}, log, 1}},
          writers_{writer{*this, 0}, writer{*this, 1}}, log_(log) {}

    /// Factory constructor for substrates needing per-register arguments
    /// (e.g. ported_substrate). `make(initial_tagged, reg_index)` must
    /// return the register by value (constructed in place via guaranteed
    /// elision; substrates are immovable).
    template <typename Factory>
        requires std::is_invocable_r_v<Reg, Factory&, tagged<T>, int>
    two_writer_register(T initial, Factory&& make)
        : regs_{make(tagged<T>{initial, false}, 0),
                make(tagged<T>{initial, false}, 1)},
          writers_{writer{*this, 0}, writer{*this, 1}} {}

    two_writer_register(const two_writer_register&) = delete;
    two_writer_register& operator=(const two_writer_register&) = delete;

    /// Attaches an external-schedule log: every simulated operation's
    /// invocation and response is appended (values included when T converts
    /// to value_t). Works with ANY substrate -- real-register *-actions are
    /// additionally recorded only by the recording substrate. Attach before
    /// concurrent use.
    void set_external_log(event_log* log) noexcept { log_ = log; }

    /// The two write ports. Each must be driven by one thread at a time.
    [[nodiscard]] writer& writer0() noexcept { return writers_[0]; }
    [[nodiscard]] writer& writer1() noexcept { return writers_[1]; }

    /// Creates a read port. `processor` names the reader in recorded
    /// histories; readers are conventionally numbered from 2 upward.
    [[nodiscard]] reader make_reader(processor_id processor = 2) noexcept {
        return reader{*this, processor};
    }

    /// A write port: performs simulated writes, and simulated reads in both
    /// the plain (3 real reads) and cached (1-2 real reads) variants.
    class writer {
    public:
        /// Simulated write (paper, Section 5):
        ///   read t',v' from Reg_{~i}; t := i (+) t'; write t,v to Reg_i.
        void write(T v) {
            const access_context ctx = begin(op_kind::write, v);
            const tagged<T> other = owner_->regs_[1 - index_].read(ctx);
            const bool t = writer_tag_choice(index_, other.tag);
            owner_->regs_[index_].write(tagged<T>{v, t}, ctx);
            cache_ = tagged<T>{v, t};
            cache_valid_ = true;
            end(event_kind::sim_respond_write, 0, ctx);
        }

        /// Simulated read using the full three-real-read reader protocol.
        [[nodiscard]] T read() {
            const access_context ctx = begin(op_kind::read, T{});
            const T result = owner_->read_protocol(ctx);
            end(event_kind::sim_respond_read, static_cast<value_t>(0), ctx,
                result);
            return result;
        }

        /// Simulated read using the writer's local copy of its own real
        /// register (paper, Section 5): one real read when the tag sum
        /// points at our own register, two otherwise.
        [[nodiscard]] T read_cached() {
            const access_context ctx = begin(op_kind::read, T{});
            if (!cache_valid_) {
                // First operation ever: own register still holds the
                // initial value; a real read of it is free to cache.
                cache_ = owner_->regs_[index_].read(ctx);
                cache_valid_ = true;
            }
            const tagged<T> other = owner_->regs_[1 - index_].read(ctx);
            const bool t0 = index_ == 0 ? cache_.tag : other.tag;
            const bool t1 = index_ == 0 ? other.tag : cache_.tag;
            const int pick = reader_pick(t0, t1);
            T result;
            if (pick == index_) {
                result = cache_.value;
            } else {
                result = owner_->regs_[1 - index_].read(ctx).value;
            }
            end(event_kind::sim_respond_read, 0, ctx, result);
            return result;
        }

        /// Simulated write with an adversarial pause between the real read
        /// and the real write (the protocol's only vulnerable window; an
        /// overlapping write by the other writer makes this one impotent,
        /// paper Section 7). Real schedulers almost never produce that
        /// interleaving spontaneously -- cache-line arbitration keeps the
        /// two writers' accesses bursty -- so verification harnesses use
        /// this to exercise the impotent-write machinery deliberately.
        template <typename Pause>
        void write_paced(T v, Pause&& between_read_and_write) {
            const access_context ctx = begin(op_kind::write, v);
            const tagged<T> other = owner_->regs_[1 - index_].read(ctx);
            between_read_and_write();
            const bool t = writer_tag_choice(index_, other.tag);
            owner_->regs_[index_].write(tagged<T>{v, t}, ctx);
            cache_ = tagged<T>{v, t};
            cache_valid_ = true;
            end(event_kind::sim_respond_write, 0, ctx);
        }

        /// Failure injection: run the write protocol but crash at `cp`.
        /// The invocation is logged (if recording) but never acknowledged;
        /// the handle remains usable, modeling a processor that recovers
        /// with fresh state. An out-of-range `cp` (a cast from a bad
        /// integer) is a programming error, rejected up front rather than
        /// silently running the full protocol as after_write would.
        void write_crashed(T v, crash_point cp) {
            assert(cp == crash_point::before_read ||
                   cp == crash_point::after_read ||
                   cp == crash_point::after_write);
            const access_context ctx = begin(op_kind::write, v);
            switch (cp) {
                case crash_point::before_read:
                    return;  // no real access: the write is never visible
                case crash_point::after_read:
                case crash_point::after_write:
                    break;
                default:
                    return;  // out-of-range (release builds): act as
                             // before_read, the most conservative crash
            }
            const tagged<T> other = owner_->regs_[1 - index_].read(ctx);
            if (cp == crash_point::after_read) return;  // read but no write
            const bool t = writer_tag_choice(index_, other.tag);
            owner_->regs_[index_].write(tagged<T>{v, t}, ctx);
            cache_ = tagged<T>{v, t};
            cache_valid_ = true;
        }

        /// This port's writer index (0 or 1).
        [[nodiscard]] int index() const noexcept { return index_; }

    private:
        friend class two_writer_register;
        writer(two_writer_register& owner, int index) noexcept
            : owner_(&owner), index_(index) {}

        access_context begin(op_kind kind, [[maybe_unused]] T v) {
            const access_context ctx{static_cast<processor_id>(index_), next_op_++};
            if (owner_->log_ != nullptr) {
                event e;
                e.kind = kind == op_kind::write ? event_kind::sim_invoke_write
                                                : event_kind::sim_invoke_read;
                e.processor = ctx.processor;
                e.op = ctx.op;
                if constexpr (std::convertible_to<T, value_t>) {
                    e.value = kind == op_kind::write ? static_cast<value_t>(v) : 0;
                }
                owner_->log_->append(e);
            }
            return ctx;
        }

        void end(event_kind kind, value_t, access_context ctx,
                 [[maybe_unused]] T read_result = T{}) {
            if (owner_->log_ != nullptr) {
                event e;
                e.kind = kind;
                e.processor = ctx.processor;
                e.op = ctx.op;
                if constexpr (std::convertible_to<T, value_t>) {
                    e.value = kind == event_kind::sim_respond_read
                                  ? static_cast<value_t>(read_result)
                                  : 0;
                }
                owner_->log_->append(e);
            }
        }

        two_writer_register* owner_;
        int index_;
        op_index next_op_{0};
        tagged<T> cache_{};
        bool cache_valid_{false};
    };

    /// A read port (paper, Section 5):
    ///   read t0,v0 from Reg0; read t1,v1 from Reg1;
    ///   r := t0 (+) t1; read t2,v2 from Reg_r; return v2.
    class reader {
    public:
        [[nodiscard]] T read() {
            const access_context ctx{processor_, next_op_++};
            if (owner_->log_ != nullptr) {
                event e;
                e.kind = event_kind::sim_invoke_read;
                e.processor = ctx.processor;
                e.op = ctx.op;
                owner_->log_->append(e);
            }
            const T result = owner_->read_protocol(ctx);
            if (owner_->log_ != nullptr) {
                event e;
                e.kind = event_kind::sim_respond_read;
                e.processor = ctx.processor;
                e.op = ctx.op;
                if constexpr (std::convertible_to<T, value_t>) {
                    e.value = static_cast<value_t>(result);
                }
                owner_->log_->append(e);
            }
            return result;
        }

        /// Simulated read with an adversarial pause between the tag sample
        /// (first two real reads) and the final real read -- the paper's
        /// "very slow reader" (Section 7.2), which may return the value of
        /// an impotent write. Verification harnesses use this to exercise
        /// Step 3 / Lemma 4 deliberately.
        template <typename Pause>
        [[nodiscard]] T read_paced(Pause&& between_tags_and_final) {
            const access_context ctx{processor_, next_op_++};
            if (owner_->log_ != nullptr) {
                event e;
                e.kind = event_kind::sim_invoke_read;
                e.processor = ctx.processor;
                e.op = ctx.op;
                owner_->log_->append(e);
            }
            const tagged<T> r0 = owner_->regs_[0].read(ctx);
            const tagged<T> r1 = owner_->regs_[1].read(ctx);
            between_tags_and_final();
            const int pick = reader_pick(r0.tag, r1.tag);
            const T result = owner_->regs_[pick].read(ctx).value;
            if (owner_->log_ != nullptr) {
                event e;
                e.kind = event_kind::sim_respond_read;
                e.processor = ctx.processor;
                e.op = ctx.op;
                if constexpr (std::convertible_to<T, value_t>) {
                    e.value = static_cast<value_t>(result);
                }
                owner_->log_->append(e);
            }
            return result;
        }

        [[nodiscard]] processor_id processor() const noexcept { return processor_; }

    private:
        friend class two_writer_register;
        reader(two_writer_register& owner, processor_id processor) noexcept
            : owner_(&owner), processor_(processor) {}

        two_writer_register* owner_;
        processor_id processor_;
        op_index next_op_{0};
    };

    /// Direct access to the real registers (tests and benches only).
    [[nodiscard]] Reg& real_register(int i) noexcept { return regs_[i]; }

private:
    T read_protocol(access_context ctx) {
        const tagged<T> r0 = regs_[0].read(ctx);
        const tagged<T> r1 = regs_[1].read(ctx);
        const int pick = reader_pick(r0.tag, r1.tag);
        return regs_[pick].read(ctx).value;
    }

    std::array<Reg, 2> regs_;
    std::array<writer, 2> writers_;
    event_log* log_{nullptr};
};

}  // namespace bloom87
