// bloom87: minimal streaming JSON emitter for machine-readable bench
// artifacts (BENCH_*.json). Append-only with automatic comma placement; no
// reading, no DOM -- the benches only ever serialize flat records, and the
// repository takes no third-party dependencies for that.
#pragma once

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>

namespace bloom87 {

class json_writer {
public:
    explicit json_writer(std::ostream& os) : os_(os) {}

    json_writer& begin_object() {
        sep();
        os_ << '{';
        need_comma_ = false;
        return *this;
    }
    json_writer& end_object() {
        os_ << '}';
        need_comma_ = true;
        return *this;
    }
    json_writer& begin_array() {
        sep();
        os_ << '[';
        need_comma_ = false;
        return *this;
    }
    json_writer& end_array() {
        os_ << ']';
        need_comma_ = true;
        return *this;
    }

    json_writer& key(std::string_view k) {
        sep();
        quoted(k);
        os_ << ':';
        after_key_ = true;
        return *this;
    }

    json_writer& value(std::string_view v) {
        sep();
        quoted(v);
        need_comma_ = true;
        return *this;
    }
    json_writer& value(const char* v) { return value(std::string_view(v)); }
    json_writer& value(bool v) {
        sep();
        os_ << (v ? "true" : "false");
        need_comma_ = true;
        return *this;
    }
    json_writer& value(double v) {
        sep();
        os_ << v;
        need_comma_ = true;
        return *this;
    }
    json_writer& value(std::uint64_t v) {
        sep();
        os_ << v;
        need_comma_ = true;
        return *this;
    }
    json_writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
    json_writer& value(int v) {
        sep();
        os_ << v;
        need_comma_ = true;
        return *this;
    }

    /// key + scalar in one call: w.field("states", 42)
    template <typename T>
    json_writer& field(std::string_view k, T v) {
        key(k);
        return value(v);
    }

private:
    void sep() {
        if (after_key_) {
            after_key_ = false;
            return;
        }
        if (need_comma_) os_ << ',';
        need_comma_ = false;
    }

    void quoted(std::string_view s) {
        os_ << '"';
        for (char c : s) {
            switch (c) {
                case '"': os_ << "\\\""; break;
                case '\\': os_ << "\\\\"; break;
                case '\n': os_ << "\\n"; break;
                case '\t': os_ << "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof buf, "\\u%04x",
                                      static_cast<unsigned>(c));
                        os_ << buf;
                    } else {
                        os_ << c;
                    }
            }
        }
        os_ << '"';
    }

    std::ostream& os_;
    bool need_comma_{false};
    bool after_key_{false};
};

}  // namespace bloom87
