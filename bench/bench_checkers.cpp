// [TAB-E] Checker cost: the paper's constructive proof as an algorithm.
//
// Section 7's proof is constructive -- it assigns every operation its
// linearization point directly from the recorded real-register accesses, in
// O(n log n). A general-purpose linearizability checker must SEARCH for an
// order (exponential worst case even with memoization; the register-
// specialized polynomial checker sits in between). This bench records real
// concurrent executions of increasing size through the harness driver
// (register "bloom/recording", gamma collection) and times the full checker
// pipeline on each.
//
//   bench_checkers [--json BENCH_checkers.json]
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::harness;

int main(int argc, char** argv) {
    common_flags flags;
    flags.register_name = "bloom/recording";
    flag_parser parser("bench_checkers",
                       "atomicity-checking cost vs history size");
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-E",
                 "Atomicity-checking cost vs history size");

    std::unique_ptr<std::ofstream> json_os;
    std::unique_ptr<report_writer> rep;
    if (!flags.json_path.empty()) {
        json_os = std::make_unique<std::ofstream>(flags.json_path);
        if (!*json_os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        rep = std::make_unique<report_writer>(*json_os, "checkers");
    }

    const std::vector<checker_kind> kinds = {
        checker_kind::bloom, checker_kind::fast, checker_kind::exhaustive};

    table t({"ops", "gamma events", "constructive (ms)", "fast register (ms)",
             "exhaustive (ms)", "all agree"});
    bool all_agree = true;

    struct size_cfg {
        std::size_t ops;
        std::size_t readers;
    };
    for (const size_cfg sz : std::vector<size_cfg>{
             {5, 2}, {25, 2}, {100, 3}, {500, 3}, {2000, 4}, {8000, 4}}) {
        run_spec spec;
        spec.register_name = flags.register_name;
        spec.load.readers = sz.readers;
        spec.load.ops_per_writer = sz.ops;
        spec.load.ops_per_reader = sz.ops;
        spec.seed = sz.ops * 31 + 7;
        spec.collect = collect_mode::gamma;
        const run_result res = run(spec);
        if (!res.ok) {
            std::cerr << spec.register_name << ": " << res.error << "\n";
            return 1;
        }

        const pipeline_result checks =
            run_checkers(res.events, 0, kinds, spec.register_name);
        std::string cells[3] = {"-", "-", "-"};
        bool agree = checks.parsed;
        for (const check_verdict& v : checks.verdicts) {
            const std::size_t i = v.kind == checker_kind::bloom ? 0
                                  : v.kind == checker_kind::fast ? 1
                                                                 : 2;
            if (!v.ran) {
                cells[i] = "skipped (" + v.skip_reason + ")";
            } else {
                cells[i] = fixed(v.millis, 3);
                agree &= v.pass;
            }
        }
        all_agree &= agree;
        t.row({with_commas(checks.operations),
               with_commas(res.events.size()), cells[0], cells[1], cells[2],
               agree ? "yes (ATOMIC)" : "** DISAGREE **"});
        if (rep) rep->add_run(spec, res, &checks);
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: the constructive linearizer (the paper's\n"
              << "proof, executed) and the polynomial register checker scale\n"
              << "near-linearly; exhaustive search is only feasible for tiny\n"
              << "histories. All verdicts agree: ATOMIC.\n";

    if (rep) {
        rep->add_table("checker_cost", t);
        rep->finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return all_agree ? 0 : 1;
}
