// Tests for the VA-style multi-writer register (threads) and its model
// (exhaustive): n writers work where the tournament fails, at the price the
// paper's economy avoids for n = 2.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/fast_register.hpp"
#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "registers/va_register.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

TEST(VaRegister, SequentialLastWriteWins) {
    va_register<int> reg(9, 4);
    EXPECT_EQ(reg.read(), 9);
    auto w0 = reg.make_writer_port(0);
    auto w3 = reg.make_writer_port(3);
    w0.write(1);
    EXPECT_EQ(reg.read(), 1);
    w3.write(2);
    EXPECT_EQ(reg.read(), 2);
    w0.write(3);
    EXPECT_EQ(reg.read(), 3);
    EXPECT_EQ(w3.read(), 3);
}

TEST(VaRegister, TimestampTieBrokenByWriterId) {
    // Two writers scanning the same state write the same timestamp; the
    // higher writer id must win deterministically (no value loss).
    va_register<int> reg(0, 2);
    auto w0 = reg.make_writer_port(0);
    auto w1 = reg.make_writer_port(1);
    // Simulate the tie by writing from both from the same initial state:
    // sequential code cannot create a true tie, but after w0's write, w1
    // scans and goes one higher -- reads must never go backwards.
    w0.write(10);
    w1.write(20);
    EXPECT_EQ(reg.read(), 20);
}

class VaConcurrent : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VaConcurrent, HistoriesAtomicForManyWriters) {
    const std::size_t writers = GetParam();
    va_register<value_t> reg(0, writers);
    event_log log(1 << 16);
    start_gate gate;

    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < writers; ++w) {
        pool.emplace_back([&, w] {
            auto port = reg.make_writer_port(w);
            gate.wait();
            for (std::uint32_t i = 0; i < 400; ++i) {
                const value_t v = unique_value(static_cast<processor_id>(w), i);
                event e;
                e.kind = event_kind::sim_invoke_write;
                e.processor = static_cast<processor_id>(w);
                e.op = i;
                e.value = v;
                log.append(e);
                port.write(v);
                e.kind = event_kind::sim_respond_write;
                log.append(e);
            }
        });
    }
    for (std::size_t r = 0; r < 2; ++r) {
        pool.emplace_back([&, r] {
            const auto proc = static_cast<processor_id>(10 + r);
            gate.wait();
            for (op_index i = 0; i < 600; ++i) {
                event e;
                e.kind = event_kind::sim_invoke_read;
                e.processor = proc;
                e.op = i;
                log.append(e);
                const value_t v = reg.read();
                e.kind = event_kind::sim_respond_read;
                e.value = v;
                log.append(e);
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    ASSERT_FALSE(log.overflowed());
    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto res = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << writers << " writers: " << res.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(WriterCounts, VaConcurrent,
                         ::testing::Values(2, 3, 4, 6));

// ---------------------------------------------------------------------------
// Model checking: VA passes with THREE writers (exactly where the
// tournament fails), and the split-write Bloom mutant is caught.
// ---------------------------------------------------------------------------

namespace modelchecks {
using namespace bloom87::mc;

mc_register stamp_reg(mc_value domain) {
    mc_register r;
    r.level = reg_level::atomic;
    r.domain = domain;
    r.committed = 0;
    return r;
}

TEST(VaModel, TwoWritersAtomic) {
    constexpr int n = 2;
    constexpr mc_value vdom = 4;  // values 0..3; 0 is initial
    constexpr mc_value domain = (2 + 1) * n * vdom;  // up to 2 total writes
    sim_state s;
    for (int i = 0; i < n; ++i) s.registers.push_back(stamp_reg(domain));
    s.procs.push_back(make_va_writer(0, n, 0, {1}, vdom));
    s.procs.push_back(make_va_writer(0, n, 1, {2}, vdom));
    s.procs.push_back(make_va_reader(0, n, 4, 2, vdom));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

TEST(VaModel, ThreeWritersAtomicWhereTournamentFails) {
    constexpr int n = 3;
    constexpr mc_value vdom = 5;
    constexpr mc_value domain = (3 + 1) * n * vdom;
    sim_state s;
    for (int i = 0; i < n; ++i) s.registers.push_back(stamp_reg(domain));
    s.procs.push_back(make_va_writer(0, n, 0, {1}, vdom));
    s.procs.push_back(make_va_writer(0, n, 1, {2}, vdom));
    s.procs.push_back(make_va_writer(0, n, 2, {3}, vdom));
    s.procs.push_back(make_va_reader(0, n, 4, 2, vdom));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
    EXPECT_GT(res.distinct_histories, 100u);
}

TEST(SplitWriteModel, SeparateValueAndTagWritesAreNotAtomic) {
    sim_state s;
    // Layout: value0, tag0, value1, tag1. Values 0..4; tags 0/1.
    for (int i = 0; i < 4; ++i) {
        mc_register r;
        r.level = reg_level::atomic;
        r.domain = i % 2 == 0 ? 5 : 2;
        r.committed = 0;
        s.registers.push_back(r);
    }
    s.procs.push_back(make_split_bloom_writer(0, {1, 2}));
    s.procs.push_back(make_split_bloom_writer(1, {3, 4}));
    s.procs.push_back(make_split_bloom_reader(2, 2));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds)
        << "splitting the (value, tag) pair must break atomicity";
}

}  // namespace modelchecks

}  // namespace
}  // namespace bloom87
