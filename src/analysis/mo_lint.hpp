// bloom87: memory-order contract lint over the register headers.
//
// A text-level scanner (no compiler needed, so it runs as a CI step and a
// unit test in milliseconds): finds every atomic call site -- .load(),
// .store(), .exchange(), .fetch_add(), .fetch_sub(), compare_exchange_*(),
// std::atomic_thread_fence() -- extracts the receiving object and the
// memory_order_* arguments, and checks the site against the declared
// contract table (analysis/contracts.hpp). Findings:
//
//  * undeclared site: an atomic call on a (receiver, op) pair the file's
//    contract does not list;
//  * order violation: a memory order outside the declared allowed set,
//    flagged as WEAKENED when it is strictly weaker than everything the
//    contract permits (the dangerous direction);
//  * implicit order: a call relying on the defaulted seq_cst is treated as
//    seq_cst and must be allowed by the contract like any explicit order;
//  * stale contract row: a declared site matching no call in the file
//    (keeps the table honest when headers change);
//  * unaudited file / unreadable file, for the directory walker.
//
// examples/mo_lint.cpp wraps this in a CLI that exits nonzero on any
// finding; tests feed synthetic weakened headers through lint_source.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/contracts.hpp"

namespace bloom87::analysis {

struct lint_finding {
    std::string file;
    std::size_t line{0};      ///< 1-based source line, 0 for file-level findings
    std::string object;       ///< receiver text ("" for fences / file-level)
    std::string op;
    std::string order;        ///< the offending order, when applicable
    std::string message;
};

/// Lints one header's text against its declared file contract. `file` is
/// the bare header name ("seqlock.hpp"); text in `content`.
[[nodiscard]] std::vector<lint_finding> lint_source(std::string_view file,
                                                    std::string_view content);

/// Lints every audited header under the source root (reads
/// "<src_root>/<contract dir>/<file>", e.g. "src/registers/seqlock.hpp"
/// and "src/histories/thread_log.hpp"); a missing or unreadable header is
/// itself a finding.
[[nodiscard]] std::vector<lint_finding> lint_directory(
    const std::string& src_root);

/// One line per finding, "file:line: message" shaped.
[[nodiscard]] std::string format_findings(
    const std::vector<lint_finding>& findings);

}  // namespace bloom87::analysis
