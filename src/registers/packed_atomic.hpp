// bloom87: lock-free SWMR atomic register for small value types.
//
// When T (plus the tag bit) fits in a 64-bit word, a single std::atomic
// word IS a 1-writer n-reader atomic register -- in fact the hardware gives
// the stronger multi-writer guarantee; we only rely on the weaker contract.
// Both operations are a single wait-free instruction. This is the default
// production substrate.
//
// Following CP.100/CP.101 of the C++ Core Guidelines, we stay on
// memory_order_seq_cst: the protocol's proof assumes a single total order of
// real-register *-actions, and seq_cst is the memory model's way of
// providing exactly that across the two registers.
#pragma once

#include <atomic>

#include "registers/concepts.hpp"
#include "util/bits.hpp"
#include "util/sync.hpp"

namespace bloom87 {

/// SWMR atomic register over tagged<T> backed by one atomic 64-bit word.
template <word_packable T>
class packed_atomic_register {
public:
    explicit packed_atomic_register(tagged<T> initial) noexcept
        : word_(pack_tagged(initial.value, initial.tag)) {}

    /// Wait-free atomic read; any thread.
    [[nodiscard]] tagged<T> read(access_context = {}) noexcept {
        const std::uint64_t w = word_.load(std::memory_order_seq_cst);
        return {unpack_value<T>(w), unpack_tag(w)};
    }

    /// Wait-free atomic write; owning writer only.
    void write(tagged<T> v, access_context = {}) noexcept {
        word_.store(pack_tagged(v.value, v.tag), std::memory_order_seq_cst);
    }

private:
    // Own cache line: the two real registers of one simulated register are
    // written by different processors and must not false-share.
    alignas(cacheline_size) std::atomic<std::uint64_t> word_;
};

static_assert(tagged_substrate<packed_atomic_register<std::int32_t>, std::int32_t>);

}  // namespace bloom87
