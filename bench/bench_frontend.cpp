// [FRONTEND] The high-throughput front end, measured end to end.
//
// Four experiments, one report (the committed BENCH_harness.json):
//
//  1. collection_modes -- scripted threads-mode runs of the same workload
//     under the shared-gamma MPMC log vs the per-thread lock-free rings,
//     at 2/4/8 processors (best of N repetitions per cell). The per-thread
//     path does strictly less shared work per recorded event (one relaxed
//     fetch_add vs fetch_add + shared slot + release flag), which is the
//     point of the rework.
//  2. paced_clients -- timed runs multiplexing open-loop simulated clients
//     over the worker threads, below and beyond saturation, reporting the
//     merged p50/p99/p999 due-time latency (queueing included: no
//     coordinated omission) and the saturation ops/sec.
//  3. streaming_long_run -- a timed run watched by the bounded-memory
//     streaming checker until it has verified >= 10x the events the
//     post-hoc atomicity monitor can hold in memory (1<<20 events), with
//     the retained-operation peak proving the memory bound.
//  4. streaming_detection -- a seeded faulty/ run in which the streaming
//     checker flags the injected corruption mid-stream with a finite
//     first-violation latency in completed operations.
//
//   bench_frontend [--smoke] [--reps N] [--json BENCH_harness.json]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "registers/faulty.hpp"
#include "util/table.hpp"

using namespace bloom87;
namespace harness = bloom87::harness;

namespace {

/// The post-hoc checkers' capacity reference: the atomicity monitor's
/// default event_log capacity (1<<20 events). The streaming long run must
/// verify at least 10x this.
constexpr std::uint64_t posthoc_capacity_events = 1ULL << 20;

struct kept_run {
    harness::run_spec spec;
    harness::run_result result;
};

[[nodiscard]] harness::run_spec collection_spec(std::size_t procs,
                                                harness::collect_mode mode,
                                                std::size_t ops,
                                                std::uint64_t seed) {
    harness::run_spec spec;
    spec.register_name = "bloom/packed";
    spec.load.writers = 2;
    spec.load.readers = procs - 2;
    spec.load.ops_per_writer = ops;
    spec.load.ops_per_reader = ops;
    spec.seed = seed;
    spec.collect = mode;
    spec.schedule = harness::schedule_mode::threads;
    return spec;
}

[[nodiscard]] double total_ops_per_sec(const harness::run_result& r) {
    return r.measured_s > 0
               ? static_cast<double>(r.total_reads + r.total_writes) /
                     r.measured_s
               : 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::uint64_t reps = 5;
    std::string json_path;
    harness::flag_parser parser(
        "bench_frontend",
        "collection modes, paced-client latency, and streaming checking");
    parser.add_flag("smoke",
                    "CI scale: small runs, same report structure", &smoke);
    parser.add_uint64("reps", "repetitions per collection-mode cell (best "
                              "kept)", &reps);
    parser.add_string("json", "write the run report (harness schema) to PATH",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (reps == 0) reps = 1;

    print_banner(std::cout, "FRONTEND",
                 "Per-thread collection, paced clients, streaming checking");

    std::vector<kept_run> kept;
    bool ok = true;

    // ---- 1. collection modes: shared gamma vs per-thread rings ----------
    // Cells are a few ms each; best-of-`reps` with the two modes
    // interleaved per rep, so scheduler/frequency drift hits both alike.
    const std::size_t cell_ops = smoke ? 2000 : 50000;
    const std::vector<std::size_t> proc_counts = {2, 4, 8};
    table modes({"procs", "gamma ops/s", "per_thread ops/s", "speedup"});
    for (const std::size_t procs : proc_counts) {
        double best[2] = {0, 0};
        kept_run best_run[2];
        for (std::uint64_t rep = 0; rep < reps; ++rep) {
            for (int m = 0; m < 2; ++m) {
                const harness::collect_mode mode =
                    m == 0 ? harness::collect_mode::gamma
                           : harness::collect_mode::per_thread;
                const harness::run_spec spec =
                    collection_spec(procs, mode, cell_ops, 1 + rep);
                harness::run_result res = harness::run(spec);
                if (!res.ok) {
                    std::cerr << "collection cell failed: " << res.error
                              << "\n";
                    return 1;
                }
                const double ops_s = total_ops_per_sec(res);
                if (ops_s > best[m]) {
                    best[m] = ops_s;
                    // Recorded histories are large; keep the totals only.
                    res.events.clear();
                    res.events.shrink_to_fit();
                    best_run[m] = {spec, std::move(res)};
                }
                harness::trim_heap();
            }
        }
        const double speedup = best[0] > 0 ? best[1] / best[0] : 0;
        modes.row({std::to_string(procs), fixed(best[0], 0), fixed(best[1], 0),
                   fixed(speedup, 2)});
        if (procs >= 4 && best[1] <= best[0]) {
            std::cout << "note: per_thread did not beat gamma at " << procs
                      << " procs this round\n";
            if (!smoke) ok = false;
        }
        kept.push_back(std::move(best_run[0]));
        kept.push_back(std::move(best_run[1]));
    }
    modes.print(std::cout);
    std::cout << "\n";

    // ---- 2. open-loop paced clients: latency under and past saturation --
    table clients_t({"clients", "pace", "offered ops/s", "achieved ops/s",
                     "p50 us", "p99 us", "p999 us", "max us"});
    const unsigned duration_ms = smoke ? 150 : 600;
    struct client_cfg {
        unsigned clients;
        std::uint64_t pace_ns;
    };
    const std::vector<client_cfg> client_cfgs = {
        {smoke ? 64u : 512u, 1000000},   // offered load well under capacity
        {smoke ? 512u : 4096u, 250000},  // offered load past one core
    };
    for (const client_cfg& cc : client_cfgs) {
        harness::run_spec spec;
        spec.register_name = "bloom/packed";
        spec.load.writers = 2;
        spec.load.readers = 2;
        spec.seed = 2;
        spec.duration_ms = duration_ms;
        spec.warmup_ms = smoke ? 20 : 100;
        spec.collect = harness::collect_mode::none;
        spec.clients = cc.clients;
        spec.client_pace_ns = cc.pace_ns;
        const harness::run_result res = harness::run(spec);
        if (!res.ok) {
            std::cerr << "paced-client run failed: " << res.error << "\n";
            return 1;
        }
        const double offered = 1e9 / static_cast<double>(cc.pace_ns) *
                               static_cast<double>(cc.clients);
        clients_t.row({std::to_string(cc.clients),
                       std::to_string(cc.pace_ns / 1000) + " us",
                       fixed(offered, 0), fixed(total_ops_per_sec(res), 0),
                       fixed(res.latency.p50_us, 1),
                       fixed(res.latency.p99_us, 1),
                       fixed(res.latency.p999_us, 1),
                       fixed(res.latency.max_us, 1)});
        if (res.latency.samples == 0) {
            std::cerr << "paced-client run recorded no latency samples\n";
            ok = false;
        }
        kept.push_back({spec, res});
        harness::trim_heap();
    }
    clients_t.print(std::cout);
    std::cout << "\n(latency measured from each client's DUE time: queueing\n"
              << "delay past saturation is charged to the operation.)\n\n";

    // ---- 3. streaming long run: beyond post-hoc capacity ----------------
    const std::uint64_t target_events =
        smoke ? posthoc_capacity_events / 4 : 10 * posthoc_capacity_events;
    harness::run_spec long_spec;
    long_spec.register_name = "bloom/packed";
    long_spec.load.writers = 2;
    long_spec.load.readers = 2;
    long_spec.seed = 3;
    long_spec.collect = harness::collect_mode::per_thread;
    long_spec.schedule = harness::schedule_mode::threads;
    long_spec.streaming_monitor = true;
    long_spec.stream_window = 4096;
    long_spec.stream_stride = 4096;
    long_spec.duration_ms = smoke ? 500 : 2000;
    harness::run_result long_res;
    for (int attempt = 0; attempt < 5; ++attempt) {
        long_res = harness::run(long_spec);
        if (!long_res.ok) {
            std::cerr << "streaming long run failed: " << long_res.error
                      << "\n";
            return 1;
        }
        if (long_res.stream.events >= target_events) break;
        // Not enough events yet: scale the duration from the measured rate,
        // clamped so one attempt never runs away (the checker throttles the
        // producers, so the rate is the checker's, not the register's).
        const double rate = static_cast<double>(long_res.stream.events) /
                            std::max(0.001, long_res.measured_s);
        const double need_s =
            static_cast<double>(target_events) / std::max(1000.0, rate);
        long_spec.duration_ms = std::min<unsigned>(
            smoke ? 10000 : 120000,
            static_cast<unsigned>(need_s * 1200) + 500);
        harness::trim_heap();
    }
    const double capacity_ratio =
        static_cast<double>(long_res.stream.events) /
        static_cast<double>(posthoc_capacity_events);
    table stream_t({"events verified", "x post-hoc capacity", "ops retired",
                    "retained peak", "checkpoints", "violation"});
    stream_t.row({std::to_string(long_res.stream.events),
                  fixed(capacity_ratio, 1),
                  std::to_string(long_res.stream.ops_retired),
                  std::to_string(long_res.stream.retained_peak),
                  std::to_string(long_res.stream.checkpoints),
                  long_res.stream.violation ? "YES (unexpected)" : "none"});
    stream_t.print(std::cout);
    std::cout << "\n(post-hoc capacity reference: the atomicity monitor's\n"
              << "default 1<<20-event log; the streaming checker holds only\n"
              << "the retained window regardless of run length.)\n\n";
    if (long_res.stream.violation) {
        std::cerr << "clean streaming run flagged a violation: "
                  << long_res.stream.diagnosis << "\n";
        ok = false;
    }
    if (!smoke && long_res.stream.events < target_events) {
        std::cerr << "streaming long run fell short of "
                  << target_events << " events\n";
        ok = false;
    }
    kept.push_back({long_spec, long_res});
    harness::trim_heap();

    // ---- 4. streaming detection of injected corruption ------------------
    table detect_t({"fault", "injected", "violation", "detection pos",
                    "latency (ops)"});
    bool caught_all = true;
    for (const fault_class cls :
         {fault_class::stale_read, fault_class::lost_write,
          fault_class::torn_value}) {
        harness::run_spec spec;
        spec.register_name = "faulty/seqlock";
        spec.load.writers = 2;
        spec.load.readers = 2;
        spec.load.ops_per_writer = 160;
        spec.load.ops_per_reader = 160;
        spec.collect = harness::collect_mode::gamma;
        spec.schedule = harness::schedule_mode::seeded;
        spec.fault.cls = cls;
        spec.fault.rate_num = 1;
        spec.fault.rate_den = 32;
        spec.streaming_monitor = true;
        spec.stream_window = 64;
        spec.stream_stride = 16;
        harness::run_result res;
        for (std::uint64_t seed = 3; seed < 9; ++seed) {
            spec.seed = seed;
            spec.fault.seed = seed;
            res = harness::run(spec);
            if (!res.ok) {
                std::cerr << "faulty streaming run failed: " << res.error
                          << "\n";
                return 1;
            }
            if (res.stream.violation) break;
        }
        detect_t.row({fault_class_name(cls),
                      std::to_string(res.faults_injected.total()),
                      res.stream.violation ? "detected" : "MISSED",
                      res.stream.violation
                          ? std::to_string(res.stream.detection_pos)
                          : "-",
                      res.stream.violation
                          ? std::to_string(res.stream.latency_ops)
                          : "-"});
        caught_all = caught_all && res.stream.violation;
        res.events.clear();
        res.events.shrink_to_fit();
        kept.push_back({spec, std::move(res)});
        harness::trim_heap();
    }
    detect_t.print(std::cout);
    if (!caught_all) {
        std::cerr << "\na corrupting fault class went unnoticed mid-stream\n";
        ok = false;
    }

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "frontend");
        for (const kept_run& kr : kept) {
            const bool is_long = &kr == &kept[kept.size() - 4];
            rep.add_run(kr.spec, kr.result, nullptr,
                        [&](json_writer& w) {
                            if (is_long) {
                                w.field("posthoc_capacity_events",
                                        posthoc_capacity_events);
                                w.field("capacity_ratio", capacity_ratio);
                            }
                        });
        }
        rep.add_table("collection_modes", modes);
        rep.add_table("paced_clients", clients_t);
        rep.add_table("streaming_long_run", stream_t);
        rep.add_table("streaming_detection", detect_t);
        rep.finish();
        std::cout << "wrote " << json_path << "\n";
    }
    return ok ? 0 : 1;
}
