// Tests for src/core: the protocol decision rules and single-threaded
// behavior of the two-writer register (alternating writers, tag evolution,
// writer-read variants, crash injection, recording integration).
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/history.hpp"
#include "histories/workload.hpp"
#include "registers/instrumented.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/recording.hpp"
#include "registers/seqlock.hpp"

namespace bloom87 {
namespace {

using packed_reg = two_writer_register<int, packed_atomic_register<int>>;

TEST(Protocol, WriterTagChoiceMakesSumEqualIndex) {
    // After writer i writes tag i(+)t' while the other register still holds
    // t', the sum is i -- the write is potent.
    for (int i : {0, 1}) {
        for (bool other : {false, true}) {
            const bool t = writer_tag_choice(i, other);
            const bool t0 = i == 0 ? t : other;
            const bool t1 = i == 0 ? other : t;
            EXPECT_EQ(reader_pick(t0, t1), i);
            EXPECT_TRUE(write_is_potent(i, t0, t1));
        }
    }
}

TEST(Protocol, ReaderPicksRegisterOfTagSum) {
    EXPECT_EQ(reader_pick(false, false), 0);
    EXPECT_EQ(reader_pick(true, true), 0);
    EXPECT_EQ(reader_pick(true, false), 1);
    EXPECT_EQ(reader_pick(false, true), 1);
}

TEST(TwoWriter, InitialValueVisibleToEveryone) {
    packed_reg reg(99);
    auto r = reg.make_reader();
    EXPECT_EQ(r.read(), 99);
    EXPECT_EQ(reg.writer0().read(), 99);
    EXPECT_EQ(reg.writer1().read(), 99);
    EXPECT_EQ(reg.writer0().read_cached(), 99);
    EXPECT_EQ(reg.writer1().read_cached(), 99);
}

TEST(TwoWriter, SingleWriterSequence) {
    packed_reg reg(0);
    auto r = reg.make_reader();
    for (int v = 1; v <= 20; ++v) {
        reg.writer0().write(v);
        EXPECT_EQ(r.read(), v);
    }
}

TEST(TwoWriter, AlternatingWritersLastWriteWins) {
    packed_reg reg(0);
    auto r = reg.make_reader();
    for (int v = 1; v <= 20; ++v) {
        if (v % 2 == 0) {
            reg.writer0().write(v);
        } else {
            reg.writer1().write(v);
        }
        EXPECT_EQ(r.read(), v) << "after write " << v;
        EXPECT_EQ(reg.writer0().read(), v);
        EXPECT_EQ(reg.writer1().read(), v);
        EXPECT_EQ(reg.writer0().read_cached(), v);
        EXPECT_EQ(reg.writer1().read_cached(), v);
    }
}

TEST(TwoWriter, QuiescentWriteIsPotent) {
    // Section 5: "If one writer is quiescent while the other writes, the
    // active writer can set the sum of the tag bits to its own index."
    packed_reg reg(0);
    for (int v = 1; v <= 5; ++v) {
        reg.writer0().write(v);
        const auto c0 = reg.real_register(0).read();
        const auto c1 = reg.real_register(1).read();
        EXPECT_TRUE(write_is_potent(0, c0.tag, c1.tag));
    }
    for (int v = 6; v <= 10; ++v) {
        reg.writer1().write(v);
        const auto c0 = reg.real_register(0).read();
        const auto c1 = reg.real_register(1).read();
        EXPECT_TRUE(write_is_potent(1, c0.tag, c1.tag));
    }
}

TEST(TwoWriter, WorksOverSeqlockSubstrate) {
    two_writer_register<std::int64_t, seqlock_register<std::int64_t>> reg(-1);
    auto r = reg.make_reader();
    EXPECT_EQ(r.read(), -1);
    reg.writer1().write(1234567890123LL);
    EXPECT_EQ(r.read(), 1234567890123LL);
    reg.writer0().write(-7);
    EXPECT_EQ(r.read(), -7);
}

// ---------------------------------------------------------------------------
// Cost accounting (paper, Section 5).
// ---------------------------------------------------------------------------

using counted_reg =
    two_writer_register<int, instrumented_register<packed_atomic_register<int>>>;

access_counts total(counted_reg& reg) {
    return reg.real_register(0).counts() + reg.real_register(1).counts();
}

TEST(Costs, SimulatedWriteIsOneReadOneWrite) {
    counted_reg reg(0);
    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    reg.writer0().write(1);
    const access_counts c = total(reg);
    EXPECT_EQ(c.reads, 1u);
    EXPECT_EQ(c.writes, 1u);
}

TEST(Costs, SimulatedReadIsThreeReads) {
    counted_reg reg(0);
    auto r = reg.make_reader();
    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    (void)r.read();
    const access_counts c = total(reg);
    EXPECT_EQ(c.reads, 3u);
    EXPECT_EQ(c.writes, 0u);
}

TEST(Costs, CachedWriterReadIsOneOrTwoReads) {
    counted_reg reg(0);
    // Warm both writers' caches with one write each; writer 0 writes last,
    // so the tag sum points at register 0.
    reg.writer1().write(1);
    reg.writer0().write(2);

    // Writer 0: the sum points at its OWN register -- one real read.
    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    EXPECT_EQ(reg.writer0().read_cached(), 2);
    EXPECT_EQ(total(reg).reads, 1u);

    // Writer 1: the sum points at the OTHER register -- two real reads.
    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    EXPECT_EQ(reg.writer1().read_cached(), 2);
    EXPECT_EQ(total(reg).reads, 2u);
    EXPECT_EQ(total(reg).writes, 0u);
}

// ---------------------------------------------------------------------------
// Crash injection (paper, Section 5: a writer crash leaves the register
// consistent -- the write either fully occurs or not at all).
// ---------------------------------------------------------------------------

TEST(Crash, BeforeRealWriteIsInvisible) {
    packed_reg reg(0);
    auto r = reg.make_reader();
    reg.writer0().write(1);
    reg.writer1().write_crashed(50, crash_point::before_read);
    EXPECT_EQ(r.read(), 1);
    reg.writer1().write_crashed(60, crash_point::after_read);
    EXPECT_EQ(r.read(), 1);
    // The register remains fully usable by everyone.
    reg.writer0().write(2);
    EXPECT_EQ(r.read(), 2);
    reg.writer1().write(3);
    EXPECT_EQ(r.read(), 3);
}

TEST(Crash, AfterRealWriteIsFullyVisible) {
    packed_reg reg(0);
    auto r = reg.make_reader();
    reg.writer0().write_crashed(42, crash_point::after_write);
    EXPECT_EQ(r.read(), 42);
    reg.writer1().write(43);
    EXPECT_EQ(r.read(), 43);
}

// Each crash point's substrate footprint matches its visibility claim:
// before_read touches neither real register, after_read performs only the
// real read (so the written value can never become visible), after_write
// completes both real accesses (so the write is fully visible).
TEST(Crash, CrashPointFootprintsMatchVisibilityClaims) {
    counted_reg reg(0);
    auto r = reg.make_reader();

    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    reg.writer0().write_crashed(10, crash_point::before_read);
    EXPECT_EQ(total(reg).reads, 0u);
    EXPECT_EQ(total(reg).writes, 0u);
    EXPECT_EQ(r.read(), 0);

    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    reg.writer0().write_crashed(20, crash_point::after_read);
    EXPECT_EQ(reg.real_register(1).counts().reads, 1u);  // the other register
    EXPECT_EQ(total(reg).writes, 0u);
    EXPECT_EQ(r.read(), 0);

    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    reg.writer0().write_crashed(30, crash_point::after_write);
    EXPECT_EQ(reg.real_register(1).counts().reads, 1u);
    EXPECT_EQ(reg.real_register(0).counts().writes, 1u);
    EXPECT_EQ(r.read(), 30);
}

// An out-of-range crash_point (memory corruption, a miscast integer) is a
// programming error: rejected by the assert in debug builds, and treated as
// the most conservative crash (before_read -- nothing visible) when
// assertions are compiled out.
TEST(Crash, OutOfRangeCrashPointIsRejectedOrConservative) {
    const auto bogus = static_cast<crash_point>(7);
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
    packed_reg reg(0);
    EXPECT_DEATH(reg.writer0().write_crashed(99, bogus), "crash_point");
#else
    counted_reg reg(0);
    auto r = reg.make_reader();
    reg.writer0().write(1);
    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
    reg.writer0().write_crashed(99, bogus);
    EXPECT_EQ(total(reg).reads, 0u);
    EXPECT_EQ(total(reg).writes, 0u);
    EXPECT_EQ(r.read(), 1);
#endif
}

// ---------------------------------------------------------------------------
// Recording integration: the external schedule and the real accesses land
// in gamma in the right shape.
// ---------------------------------------------------------------------------

TEST(RecordingIntegration, GammaHasProtocolShape) {
    event_log log(256);
    two_writer_register<value_t, recording_register> reg(0, &log);
    auto r = reg.make_reader(2);
    reg.writer0().write(unique_value(0, 0));
    reg.writer1().write(unique_value(1, 0));
    EXPECT_EQ(r.read(), unique_value(1, 0));

    const parse_result res = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(res.ok()) << res.error->message;
    ASSERT_EQ(res.hist.ops.size(), 3u);
    const operation* w0 = res.hist.find(op_id{0, 0});
    ASSERT_NE(w0, nullptr);
    EXPECT_EQ(w0->real_accesses.size(), 2u);
    const operation* rd = res.hist.find(op_id{2, 0});
    ASSERT_NE(rd, nullptr);
    EXPECT_EQ(rd->real_accesses.size(), 3u);
    EXPECT_EQ(rd->value, unique_value(1, 0));
}

}  // namespace
}  // namespace bloom87
