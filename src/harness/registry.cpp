#include "harness/registry.hpp"

#include <utility>

#include "analysis/contracts.hpp"
#include "baselines/mutex_register.hpp"
#include "baselines/native_atomic.hpp"
#include "baselines/rwlock_register.hpp"
#include "baselines/tournament.hpp"
#include "histories/workload.hpp"
#include "registers/fourslot.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/recording.hpp"
#include "registers/seqlock.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "registers/va_register.hpp"

namespace bloom87::harness {
namespace {

/// A 56-bit value payload that satisfies word_packable (sizeof == 7), so the
/// packed-word substrates can carry the harness's 64-bit unique values
/// (unique_value never exceeds 2^56). Kept trivial -- no user-provided
/// constructors -- so word packing's memcpy stays warning-clean; convert
/// with pack56(). The implicit conversion back to value_t is what lets
/// two_writer_register's event logging record the true value.
struct packed56 {
    unsigned char bytes[7];

    operator value_t() const noexcept {  // NOLINT(google-explicit-constructor)
        std::uint64_t out = 0;
        for (int i = 0; i < 7; ++i) {
            out |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
        }
        return static_cast<value_t>(out);
    }
};
static_assert(word_packable<packed56>);

[[nodiscard]] packed56 pack56(value_t v) noexcept {
    packed56 p;
    for (int i = 0; i < 7; ++i) {
        p.bytes[i] = static_cast<unsigned char>(
            static_cast<std::uint64_t>(v) >> (8 * i));
    }
    return p;
}

template <typename T>
T from_value(value_t v) {
    if constexpr (std::is_same_v<T, packed56>) {
        return pack56(v);
    } else {
        return static_cast<T>(v);
    }
}

/// Manual invocation/response logging for registers that do not log their
/// own simulated operations (the native word, the VA register, the SWMR
/// ladder). Mirrors atomicity_monitor's event shape.
class ext_logger {
public:
    ext_logger(event_log* log, processor_id proc) : log_(log), proc_(proc) {}

    void invoke(op_kind kind, value_t v) {
        if (log_ == nullptr) return;
        event e;
        e.kind = kind == op_kind::write ? event_kind::sim_invoke_write
                                        : event_kind::sim_invoke_read;
        e.processor = proc_;
        e.op = next_op_;
        e.value = kind == op_kind::write ? v : 0;
        log_->append(e);
    }
    void respond(op_kind kind, value_t result) {
        if (log_ == nullptr) return;
        event e;
        e.kind = kind == op_kind::write ? event_kind::sim_respond_write
                                        : event_kind::sim_respond_read;
        e.processor = proc_;
        e.op = next_op_;
        e.value = kind == op_kind::write ? 0 : result;
        log_->append(e);
    }
    void finish_op() { ++next_op_; }

private:
    event_log* log_;
    processor_id proc_;
    op_index next_op_{0};
};

// ---------------------------------------------------------------- bloom/* --

/// Adapter over two_writer_register<T, Reg>. The register itself logs
/// simulated operations (set_external_log / recording constructor), so the
/// ports never log.
template <typename T, typename Reg>
class bloom_any final : public any_register {
    using reg_t = two_writer_register<T, Reg>;

public:
    explicit bloom_any(std::unique_ptr<reg_t> reg) : reg_(std::move(reg)) {}

    class wport final : public any_port {
    public:
        wport(reg_t& r, int index)
            : w_(index == 0 ? &r.writer0() : &r.writer1()),
              proc_(static_cast<processor_id>(index)) {}

        value_t read() override { return static_cast<value_t>(w_->read()); }
        void write(value_t v) override { w_->write(from_value<T>(v)); }
        void write_paced(value_t v, const pause_fn& pause) override {
            w_->write_paced(from_value<T>(v), pause);
        }
        bool write_crashed(value_t v, crash_point cp) override {
            w_->write_crashed(from_value<T>(v), cp);
            return true;
        }
        bool read_cached(value_t& out) override {
            out = static_cast<value_t>(w_->read_cached());
            return true;
        }
        bool stall(const pause_fn& during) override {
            // Counter offset keeps staller values disjoint from any
            // scripted workload value (those counters stay < 2^31).
            w_->write_paced(
                from_value<T>(unique_value(proc_, 0x80000000u + stall_count_++)),
                during);
            return true;
        }

    private:
        typename reg_t::writer* w_;
        processor_id proc_;
        std::uint32_t stall_count_{0};
    };

    class rport final : public any_port {
    public:
        explicit rport(typename reg_t::reader rd) : rd_(std::move(rd)) {}

        value_t read() override { return static_cast<value_t>(rd_.read()); }
        void write(value_t) override {}  // reader ports never write
        value_t read_paced(const pause_fn& pause) override {
            return static_cast<value_t>(rd_.read_paced(pause));
        }
        bool stall(const pause_fn& during) override {
            (void)rd_.read_paced(during);
            return true;
        }

    private:
        typename reg_t::reader rd_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role role) override {
        if (role == port_role::writer) {
            return std::make_unique<wport>(*reg_, processor);
        }
        return std::make_unique<rport>(reg_->make_reader(processor));
    }

private:
    std::unique_ptr<reg_t> reg_;
};

// ------------------------------------------------------------- baseline/* --

/// Adapter over the blocking baselines (mutex / rw-lock). The registers log
/// their own simulated operations when constructed with a log.
template <typename Reg>
class lock_any final : public any_register {
public:
    lock_any(value_t initial, event_log* log) : reg_(initial, log) {}

    class port final : public any_port {
    public:
        port(Reg& r, processor_id proc, port_role role)
            : reg_(&r), proc_(proc), role_(role) {}

        value_t read() override { return reg_->read(proc_); }
        void write(value_t v) override { reg_->write(v, proc_); }
        bool stall(const pause_fn& during) override {
            if (role_ != port_role::writer) return false;
            auto lock = take_lock(*reg_);
            during();
            return true;
        }

    private:
        static auto take_lock(mutex_register<value_t>& r) { return r.stall(); }
        static auto take_lock(rwlock_register<value_t>& r) {
            return r.stall_writer();
        }

        Reg* reg_;
        processor_id proc_;
        port_role role_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role role) override {
        return std::make_unique<port>(reg_, processor, role);
    }

private:
    Reg reg_;
};

/// Adapter over the native MRMW atomic word; logging is the adapter's job.
class native_any final : public any_register {
    using reg_t = native_atomic_register<packed56>;

public:
    native_any(value_t initial, event_log* log)
        : reg_(pack56(initial)), log_(log) {}

    class port final : public any_port {
    public:
        port(reg_t& r, event_log* log, processor_id proc)
            : reg_(&r), logger_(log, proc), proc_(proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = static_cast<value_t>(reg_->read(proc_));
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t v) override {
            logger_.invoke(op_kind::write, v);
            reg_->write(pack56(v), proc_);
            logger_.respond(op_kind::write, 0);
            logger_.finish_op();
        }

    private:
        reg_t* reg_;
        ext_logger logger_;
        processor_id proc_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role) override {
        return std::make_unique<port>(reg_, log_, processor);
    }

private:
    reg_t reg_;
    event_log* log_;
};

// ------------------------------------------------------------------- va/* --

class va_any final : public any_register {
    using reg_t = va_register<value_t>;

public:
    va_any(value_t initial, std::size_t writers, event_log* log)
        : reg_(initial, writers), log_(log) {}

    class wport final : public any_port {
    public:
        wport(reg_t::writer_port p, event_log* log, processor_id proc)
            : p_(std::move(p)), logger_(log, proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = p_.read();
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t v) override {
            logger_.invoke(op_kind::write, v);
            p_.write(v);
            logger_.respond(op_kind::write, 0);
            logger_.finish_op();
        }

    private:
        reg_t::writer_port p_;
        ext_logger logger_;
    };

    class rport final : public any_port {
    public:
        rport(reg_t& r, event_log* log, processor_id proc)
            : reg_(&r), logger_(log, proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = reg_->read();
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t) override {}

    private:
        reg_t* reg_;
        ext_logger logger_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role role) override {
        if (role == port_role::writer) {
            return std::make_unique<wport>(
                reg_.make_writer_port(static_cast<std::size_t>(processor)),
                log_, processor);
        }
        return std::make_unique<rport>(reg_, log_, processor);
    }

private:
    reg_t reg_;
    event_log* log_;
};

// ----------------------------------------------------------------- swmr/* --

/// The SWMR-from-SWSR ladder as a 1-writer register in its own right.
/// The ladder gets readers + 1 ports: reader processor p (>= 1) maps to
/// port p - 1, and the writer (whose scripted reads must go through a real
/// port too) owns the extra port `readers`.
class swmr_any final : public any_register {
    using reg_t = swmr_from_swsr<value_t>;

public:
    swmr_any(value_t initial, std::size_t readers, event_log* log)
        : reg_(tagged<value_t>{initial, false}, readers + 1),
          writer_read_port_(readers), log_(log) {}

    class wport final : public any_port {
    public:
        wport(reg_t& r, std::size_t read_port, event_log* log,
              processor_id proc)
            : reg_(&r), rd_(r.make_reader_port(read_port)), logger_(log, proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = rd_.read().value;
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t v) override {
            logger_.invoke(op_kind::write, v);
            reg_->write(tagged<value_t>{v, false});
            logger_.respond(op_kind::write, 0);
            logger_.finish_op();
        }

    private:
        reg_t* reg_;
        reg_t::reader_port rd_;
        ext_logger logger_;
    };

    class rport final : public any_port {
    public:
        rport(reg_t::reader_port p, event_log* log, processor_id proc)
            : p_(std::move(p)), logger_(log, proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = p_.read().value;
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t) override {}

    private:
        reg_t::reader_port p_;
        ext_logger logger_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role role) override {
        if (role == port_role::writer) {
            return std::make_unique<wport>(reg_, writer_read_port_, log_,
                                           processor);
        }
        return std::make_unique<rport>(
            reg_.make_reader_port(static_cast<std::size_t>(processor) - 1),
            log_, processor);
    }

private:
    reg_t reg_;
    std::size_t writer_read_port_;
    event_log* log_;
};

// ----------------------------------------------------------- tournament/* --

/// The BROKEN Section 8 tournament (4 writers over native atomic words).
/// Registered so the harness can demonstrate the failure: checkers are
/// expected to reject its histories (info.expected_atomic = false).
/// The register's own logging stays off; the adapter logs every simulated
/// operation itself so a writer's scripted reads (served by an internal
/// reader handle) share the writer's per-processor op counter.
class tournament_any final : public any_register {
    using reg_t = tournament_four_writer<packed56>;

public:
    tournament_any(value_t initial, event_log* log)
        : reg_(pack56(initial), nullptr), log_(log) {}

    class wport final : public any_port {
    public:
        wport(reg_t& r, event_log* log, processor_id proc)
            : w_(r.make_writer(proc)), rd_(r.make_reader(proc)),
              logger_(log, proc), proc_(proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = static_cast<value_t>(rd_.read());
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t v) override {
            logger_.invoke(op_kind::write, v);
            w_.write(pack56(v));
            logger_.respond(op_kind::write, 0);
            logger_.finish_op();
        }
        void write_paced(value_t v, const pause_fn& pause) override {
            logger_.invoke(op_kind::write, v);
            w_.begin_write(pack56(v));
            pause();
            w_.finish_write();
            logger_.respond(op_kind::write, 0);
            logger_.finish_op();
        }
        bool stall(const pause_fn& during) override {
            write_paced(unique_value(proc_, 0x80000000u + stall_count_++),
                        during);
            return true;
        }

    private:
        reg_t::writer w_;
        reg_t::reader rd_;
        ext_logger logger_;
        processor_id proc_;
        std::uint32_t stall_count_{0};
    };

    class rport final : public any_port {
    public:
        rport(reg_t::reader rd, event_log* log, processor_id proc)
            : rd_(std::move(rd)), logger_(log, proc) {}

        value_t read() override {
            logger_.invoke(op_kind::read, 0);
            const value_t out = static_cast<value_t>(rd_.read());
            logger_.respond(op_kind::read, out);
            logger_.finish_op();
            return out;
        }
        void write(value_t) override {}

    private:
        reg_t::reader rd_;
        ext_logger logger_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role role) override {
        if (role == port_role::writer) {
            return std::make_unique<wport>(reg_, log_, processor);
        }
        return std::make_unique<rport>(reg_.make_reader(processor), log_,
                                       processor);
    }

private:
    reg_t reg_;
    event_log* log_;
};

// ----------------------------------------------------------------- faulty/* --

/// Bloom's construction over substrates wrapped in the fault injector
/// (registers/faulty.hpp). The register's own sim-event logging stays OFF:
/// the ports log invocations/responses themselves so that a port killed by
/// a port_crash fault can leave its final operation PENDING (invocation
/// without response) -- the external trace of a processor that died mid-
/// operation, exactly what the checkers must tolerate.
template <typename Inner>
class faulty_any final : public any_register {
    using reg_t = two_writer_register<value_t, faulty_register<Inner>>;

public:
    /// `make_inner(init, plan, reg_index)` builds one wrapped substrate.
    template <typename MakeInner>
    faulty_any(const register_args& a, MakeInner&& make_inner)
        : plan_(a.fault, a.log),
          log_(a.log),
          reg_(a.initial, [&](tagged<value_t> init, int reg_index) {
              return make_inner(init, &plan_, reg_index);
          }) {}

    [[nodiscard]] fault_counts faults() override { return plan_.counts(); }

    class wport final : public any_port {
    public:
        wport(reg_t& r, int index, fault_plan& plan, event_log* log)
            : w_(index == 0 ? &r.writer0() : &r.writer1()), plan_(&plan),
              logger_(log, static_cast<processor_id>(index)),
              proc_(static_cast<processor_id>(index)) {}

        value_t read() override {
            if (plan_->crashed(proc_)) return 0;
            logger_.invoke(op_kind::read, 0);
            const value_t out = static_cast<value_t>(w_->read());
            respond_unless_crashed(op_kind::read, out);
            return out;
        }
        void write(value_t v) override {
            if (plan_->crashed(proc_)) return;
            logger_.invoke(op_kind::write, v);
            w_->write(v);
            respond_unless_crashed(op_kind::write, 0);
        }
        void write_paced(value_t v, const pause_fn& pause) override {
            if (plan_->crashed(proc_)) return;
            logger_.invoke(op_kind::write, v);
            w_->write_paced(v, pause);
            respond_unless_crashed(op_kind::write, 0);
        }
        bool write_crashed(value_t v, crash_point cp) override {
            if (plan_->crashed(proc_)) return true;
            logger_.invoke(op_kind::write, v);
            w_->write_crashed(v, cp);
            logger_.finish_op();  // crashed write: pending by design
            return true;
        }
        bool read_cached(value_t& out) override {
            if (plan_->crashed(proc_)) {
                out = 0;
                return true;
            }
            logger_.invoke(op_kind::read, 0);
            out = static_cast<value_t>(w_->read_cached());
            respond_unless_crashed(op_kind::read, out);
            return true;
        }
        bool stall(const pause_fn& during) override {
            if (plan_->crashed(proc_)) return true;
            const value_t v = unique_value(proc_, 0x80000000u + stall_count_++);
            logger_.invoke(op_kind::write, v);
            w_->write_paced(v, during);
            respond_unless_crashed(op_kind::write, 0);
            return true;
        }
        [[nodiscard]] bool crashed() const override {
            return plan_->crashed(proc_);
        }

    private:
        /// A port_crash fault mid-operation kills the port: the operation
        /// stays pending (no response event) and the op counter advances.
        void respond_unless_crashed(op_kind kind, value_t v) {
            if (!plan_->crashed(proc_)) logger_.respond(kind, v);
            logger_.finish_op();
        }

        typename reg_t::writer* w_;
        fault_plan* plan_;
        ext_logger logger_;
        processor_id proc_;
        std::uint32_t stall_count_{0};
    };

    class rport final : public any_port {
    public:
        rport(typename reg_t::reader rd, fault_plan& plan, event_log* log,
              processor_id proc)
            : rd_(std::move(rd)), plan_(&plan), logger_(log, proc),
              proc_(proc) {}

        value_t read() override {
            if (plan_->crashed(proc_)) return 0;
            logger_.invoke(op_kind::read, 0);
            const value_t out = static_cast<value_t>(rd_.read());
            respond_unless_crashed(out);
            return out;
        }
        void write(value_t) override {}  // reader ports never write
        value_t read_paced(const pause_fn& pause) override {
            if (plan_->crashed(proc_)) return 0;
            logger_.invoke(op_kind::read, 0);
            const value_t out = static_cast<value_t>(rd_.read_paced(pause));
            respond_unless_crashed(out);
            return out;
        }
        bool stall(const pause_fn& during) override {
            if (plan_->crashed(proc_)) return true;
            (void)read_paced(during);
            return true;
        }
        [[nodiscard]] bool crashed() const override {
            return plan_->crashed(proc_);
        }

    private:
        void respond_unless_crashed(value_t out) {
            if (!plan_->crashed(proc_)) logger_.respond(op_kind::read, out);
            logger_.finish_op();
        }

        typename reg_t::reader rd_;
        fault_plan* plan_;
        ext_logger logger_;
        processor_id proc_;
    };

    std::unique_ptr<any_port> make_port(processor_id processor,
                                        port_role role) override {
        if (role == port_role::writer) {
            return std::make_unique<wport>(reg_, processor, plan_, log_);
        }
        return std::make_unique<rport>(reg_.make_reader(processor), plan_,
                                       log_, processor);
    }

private:
    fault_plan plan_;  // before reg_: the factory lambda takes its address
    event_log* log_;
    reg_t reg_;
};

// --------------------------------------------------------------- registry --

register_info info(std::string name, std::string description,
                   std::size_t min_writers, std::size_t max_writers,
                   bool wait_free) {
    register_info i;
    i.name = name;
    i.family = name.substr(0, name.find('/'));
    i.description = std::move(description);
    i.min_writers = min_writers;
    i.max_writers = max_writers;
    i.wait_free = wait_free;
    return i;
}

std::vector<registry_entry> build_registry() {
    std::vector<registry_entry> r;

    r.push_back({info("bloom/packed",
                      "Bloom two-writer over one packed atomic word per real "
                      "register (production substrate)",
                      2, 2, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     using reg_t =
                         two_writer_register<packed56,
                                             packed_atomic_register<packed56>>;
                     auto reg = std::make_unique<reg_t>(pack56(a.initial));
                     reg->set_external_log(a.log);
                     return std::make_unique<
                         bloom_any<packed56, packed_atomic_register<packed56>>>(
                         std::move(reg));
                 }});

    r.push_back({info("bloom/seqlock",
                      "Bloom two-writer over seqlock registers "
                      "(arbitrary-size values; readers retry during writes)",
                      2, 2, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     using reg_t =
                         two_writer_register<value_t, seqlock_register<value_t>>;
                     auto reg = std::make_unique<reg_t>(a.initial);
                     reg->set_external_log(a.log);
                     return std::make_unique<
                         bloom_any<value_t, seqlock_register<value_t>>>(
                         std::move(reg));
                 }});

    r.push_back({info("bloom/fourslot",
                      "Bloom two-writer over the depth-2 ladder: SWMR from "
                      "SWSR four-slot registers (footnote 3)",
                      2, 2, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     using reg_t =
                         two_writer_register<value_t, ported_substrate<value_t>>;
                     const std::size_t n = a.readers;
                     auto reg = std::make_unique<reg_t>(
                         a.initial, [n](tagged<value_t> init, int reg_index) {
                             return ported_substrate<value_t>(init, n, reg_index);
                         });
                     reg->set_external_log(a.log);
                     return std::make_unique<
                         bloom_any<value_t, ported_substrate<value_t>>>(
                         std::move(reg));
                 }});

    {
        register_info i =
            info("bloom/recording",
                 "Bloom two-writer over the recording substrate (gamma log "
                 "with real accesses; input to the Section 7 checker)",
                 2, 2, true);
        i.records_real_accesses = true;
        i.requires_log = true;
        r.push_back({std::move(i),
                     [](const register_args& a) -> std::unique_ptr<any_register> {
                         using reg_t =
                             two_writer_register<value_t, recording_register>;
                         auto reg = std::make_unique<reg_t>(a.initial, a.log);
                         return std::make_unique<
                             bloom_any<value_t, recording_register>>(
                             std::move(reg));
                     }});
    }

    {
        // The race-checker's live negative fixture: physically it is the
        // recording substrate (serialized, safe to run on real threads), but
        // it DECLARES the plain synchronization contract of registers/
        // plain.hpp -- so the race checker must flag its recorded histories.
        // Not expected to pass atomicity checking ceremony either: reports
        // should show the race verdict, not certify the composition.
        register_info i =
            info("bloom/plain",
                 "Bloom two-writer DECLARED over plain (unsynchronized) "
                 "registers -- the race checker's expected-fail fixture",
                 2, 2, true);
        i.records_real_accesses = true;
        i.requires_log = true;
        i.expected_atomic = false;
        r.push_back({std::move(i),
                     [](const register_args& a) -> std::unique_ptr<any_register> {
                         using reg_t =
                             two_writer_register<value_t, recording_register>;
                         auto reg = std::make_unique<reg_t>(a.initial, a.log);
                         return std::make_unique<
                             bloom_any<value_t, recording_register>>(
                             std::move(reg));
                     }});
    }

    r.push_back({info("faulty/seqlock",
                      "Bloom two-writer over seqlock substrates wrapped in "
                      "the fault injector (--fault picks the class; "
                      "docs/FAULTS.md)",
                      2, 2, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     return std::make_unique<
                         faulty_any<seqlock_register<value_t>>>(
                         a, [](tagged<value_t> init, fault_plan* plan, int) {
                             return faulty_register<seqlock_register<value_t>>(
                                 init, plan);
                         });
                 }});

    r.push_back({info("faulty/fourslot",
                      "Bloom two-writer over the fault-injected SWMR-from-"
                      "SWSR ladder (substrate faults under the deepest stack)",
                      2, 2, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     const std::size_t n = a.readers;
                     return std::make_unique<
                         faulty_any<ported_substrate<value_t>>>(
                         a, [n](tagged<value_t> init, fault_plan* plan,
                                int reg_index) {
                             return faulty_register<ported_substrate<value_t>>(
                                 init, plan, n, reg_index);
                         });
                 }});

    {
        register_info i =
            info("faulty/recording",
                 "fault-injected recording substrate: corrupted runs keep a "
                 "full gamma log for forensics and online detection",
                 2, 2, true);
        i.records_real_accesses = true;
        i.requires_log = true;
        r.push_back(
            {std::move(i),
             [](const register_args& a) -> std::unique_ptr<any_register> {
                 event_log* log = a.log;
                 return std::make_unique<faulty_any<recording_register>>(
                     a, [log](tagged<value_t> init, fault_plan* plan,
                              int reg_index) {
                         return faulty_register<recording_register>(
                             init, plan, log,
                             static_cast<std::uint8_t>(reg_index));
                     });
             }});
    }

    r.push_back({info("swmr/fourslot",
                      "the SWMR-from-SWSR ladder alone: 1 writer, n readers "
                      "over Simpson four-slot registers",
                      1, 1, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     return std::make_unique<swmr_any>(a.initial, a.readers,
                                                       a.log);
                 }});

    r.push_back({info("va/seqlock",
                      "n-writer timestamp register (Vitanyi-Awerbuch style, "
                      "Section 8's way forward) over seqlock cells",
                      1, 16, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     return std::make_unique<va_any>(a.initial, a.writers,
                                                     a.log);
                 }});

    {
        register_info i =
            info("tournament/native",
                 "the BROKEN four-writer tournament (Section 8) over native "
                 "atomic words -- checkers are expected to reject it",
                 4, 4, true);
        i.expected_atomic = false;
        r.push_back({std::move(i),
                     [](const register_args& a) -> std::unique_ptr<any_register> {
                         return std::make_unique<tournament_any>(a.initial,
                                                                 a.log);
                     }});
    }

    r.push_back({info("baseline/mutex",
                      "blocking MRMW register via one mutex (the Section 4 "
                      "anti-pattern)",
                      1, 16, false),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     return std::make_unique<lock_any<mutex_register<value_t>>>(
                         a.initial, a.log);
                 }});

    r.push_back({info("baseline/rwlock",
                      "blocking MRMW register via a readers-writers lock "
                      "([CHP])",
                      1, 16, false),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     return std::make_unique<
                         lock_any<rwlock_register<value_t>>>(a.initial, a.log);
                 }});

    r.push_back({info("baseline/native",
                      "one native MRMW atomic word (the hardware upper "
                      "baseline)",
                      1, 16, true),
                 [](const register_args& a) -> std::unique_ptr<any_register> {
                     return std::make_unique<native_any>(a.initial, a.log);
                 }});

    // Stamp each entry with its declared synchronization contract (the race
    // checker and the report writer surface it); entries without a row in
    // src/analysis/contracts.cpp stay "".
    for (registry_entry& e : r) {
        const std::optional<analysis::sync_class> cls =
            analysis::registry_sync_class(e.info.name);
        if (cls.has_value()) {
            e.info.access_contract = analysis::sync_class_name(*cls);
        }
    }

    return r;
}

}  // namespace

const std::vector<registry_entry>& registry() {
    static const std::vector<registry_entry> r = build_registry();
    return r;
}

const registry_entry* find_register(std::string_view name) {
    for (const registry_entry& e : registry()) {
        if (e.info.name == name) return &e;
    }
    return nullptr;
}

std::vector<std::string> register_names() {
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const registry_entry& e : registry()) names.push_back(e.info.name);
    return names;
}

std::unique_ptr<any_register> make_register(std::string_view name,
                                            const register_args& args,
                                            std::string* error) {
    const registry_entry* e = find_register(name);
    if (e == nullptr) {
        if (error != nullptr) {
            *error = "unknown register '" + std::string(name) +
                     "' (see --list for registered names)";
        }
        return nullptr;
    }
    if (args.writers < e->info.min_writers ||
        args.writers > e->info.max_writers) {
        if (error != nullptr) {
            *error = e->info.name + " supports " +
                     std::to_string(e->info.min_writers) + ".." +
                     std::to_string(e->info.max_writers) + " writers, got " +
                     std::to_string(args.writers);
        }
        return nullptr;
    }
    if (e->info.requires_log && args.log == nullptr) {
        if (error != nullptr) {
            *error = e->info.name +
                     " requires a gamma log (run with a recording collection "
                     "mode)";
        }
        return nullptr;
    }
    return e->make(args);
}

}  // namespace bloom87::harness
