// bloom87: text serialization of gamma sequences.
//
// A recorded execution can be written to a line-oriented text format and
// read back, so histories can be archived, shipped in bug reports, and fed
// to the offline checker tool (examples/check_history). Format, one event
// per line, `#` comments and blank lines ignored:
//
//   gamma v1 initial=<v0>
//   W_start    proc=<p> op=<k> value=<v>
//   real_read  proc=<p> op=<k> reg=<r> tag=<0|1> value=<v> observed=<pos|initial>
//   real_write proc=<p> op=<k> reg=<r> tag=<0|1> value=<v>
//   R_finish   proc=<p> op=<k> value=<v>
//   ...
//
// The position of a line (among event lines) is its gamma position, so
// `observed` references are stable under round-trip.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "histories/events.hpp"

namespace bloom87 {

/// Writes the header plus one line per event.
void write_gamma(std::ostream& os, const std::vector<event>& gamma,
                 value_t initial);

/// Parse result: the events and the initial value, or a message with the
/// offending line number.
struct gamma_parse_result {
    std::vector<event> gamma;
    value_t initial{0};
    std::optional<std::string> error;

    [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Reads the format produced by write_gamma. Tolerates comments, blank
/// lines, and arbitrary field order after the event name.
[[nodiscard]] gamma_parse_result read_gamma(std::istream& is);

}  // namespace bloom87
