#include "histories/stats.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

namespace bloom87 {

history_stats compute_stats(const history& h) {
    history_stats out;
    out.operations = h.ops.size();

    // Interval endpoints for a sweep. Pending operations extend to just
    // past the last recorded event.
    struct endpoint {
        event_pos at;
        bool is_start;
    };
    std::vector<endpoint> points;
    points.reserve(h.ops.size() * 2);
    const event_pos horizon = h.gamma.size();
    std::set<processor_id> procs;

    for (const operation& op : h.ops) {
        out.writes += op.kind == op_kind::write;
        out.reads += op.kind == op_kind::read;
        out.pending += !op.complete();
        procs.insert(op.id.processor);
        ++out.ops_per_processor[op.id.processor];
        points.push_back({op.invoked, true});
        points.push_back({op.complete() ? op.responded : horizon, false});
    }
    out.processors = procs.size();

    // Sweep for max concurrency. Endpoints are distinct gamma positions
    // except pending ends at the shared horizon; process starts before ends
    // at equal positions so back-to-back pending ops count as concurrent.
    std::sort(points.begin(), points.end(), [](endpoint a, endpoint b) {
        if (a.at != b.at) return a.at < b.at;
        return a.is_start && !b.is_start;
    });
    std::size_t in_flight = 0;
    for (const endpoint& p : points) {
        if (p.is_start) {
            out.max_concurrency = std::max(out.max_concurrency, ++in_flight);
        } else {
            --in_flight;
        }
    }

    // Overlap pairs: sort by invocation, count via active set. O(n^2) in
    // the worst case (everything overlapping); fine at report scale.
    std::vector<const operation*> by_inv;
    by_inv.reserve(h.ops.size());
    for (const operation& op : h.ops) by_inv.push_back(&op);
    std::sort(by_inv.begin(), by_inv.end(),
              [](const operation* a, const operation* b) {
                  return a->invoked < b->invoked;
              });
    std::vector<const operation*> active;
    std::set<const operation*> contended;
    for (const operation* op : by_inv) {
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](const operation* a) {
                                        const event_pos end =
                                            a->complete() ? a->responded : horizon;
                                        return end < op->invoked;
                                    }),
                     active.end());
        out.overlapping_pairs += active.size();
        if (!active.empty()) contended.insert(op);
        for (const operation* a : active) contended.insert(a);
        active.push_back(op);
    }
    out.contended_ops = contended.size();
    return out;
}

std::string format_stats(const history_stats& s) {
    std::ostringstream oss;
    oss << "operations : " << s.operations << " (" << s.writes << " writes, "
        << s.reads << " reads, " << s.pending << " pending/crashed)\n"
        << "processors : " << s.processors << " (";
    bool first = true;
    for (const auto& [proc, count] : s.ops_per_processor) {
        if (!first) oss << ", ";
        oss << "p" << proc << ":" << count;
        first = false;
    }
    oss << ")\n"
        << "concurrency: max " << s.max_concurrency << " in flight, "
        << s.overlapping_pairs << " overlapping pairs, " << s.contended_ops
        << " contended ops\n";
    return oss.str();
}

}  // namespace bloom87
