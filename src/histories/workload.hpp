// bloom87: workload generation for stress tests and benchmarks.
//
// A workload is a per-processor script of simulated operations. Writers may
// also read (the paper allows a single automaton to hold one read port and
// one write port, Section 5); readers only read. Write values are unique
// across the whole workload -- uniqueness makes linearizability checking
// unambiguous (every read names exactly one candidate write).
#pragma once

#include <cstdint>
#include <vector>

#include "histories/events.hpp"
#include "histories/history.hpp"

namespace bloom87 {

/// One scripted operation.
struct workload_op {
    op_kind kind{op_kind::read};
    value_t value{0};  ///< only meaningful for writes
};

/// Scripts, indexed by processor id. The writer count is a first-class
/// field: processors [0, writers) are writers, [writers, scripts.size())
/// are readers. (Bloom uses writers == 2; the tournament baseline 4; the
/// SWMR ladder 1 -- drivers must consult `writers` rather than assume 2.)
struct workload {
    std::vector<std::vector<workload_op>> scripts;
    std::size_t writers{2};

    [[nodiscard]] std::size_t readers() const noexcept {
        return scripts.size() - writers;
    }

    [[nodiscard]] std::size_t total_ops() const noexcept {
        std::size_t n = 0;
        for (const auto& s : scripts) n += s.size();
        return n;
    }

    /// Sanity of the processor-id convention: writer count within range and
    /// writer scripts are the only ones containing writes.
    [[nodiscard]] bool valid() const noexcept {
        if (writers > scripts.size()) return false;
        for (std::size_t p = writers; p < scripts.size(); ++p) {
            for (const workload_op& op : scripts[p]) {
                if (op.kind == op_kind::write) return false;
            }
        }
        return true;
    }
};

/// Parameters for random workload generation.
struct workload_config {
    std::size_t writers = 2;          ///< 2 for Bloom; 4 for the tournament baseline
    std::size_t readers = 2;
    std::size_t ops_per_writer = 64;
    std::size_t ops_per_reader = 64;
    /// Fraction (num/den) of a writer's operations that are *reads* -- the
    /// paper's combined read/write port.
    std::uint64_t writer_read_num = 1;
    std::uint64_t writer_read_den = 4;
};

/// Encodes a globally unique write value: (processor+1) * 2^32 + counter.
/// Never collides with the conventional initial value 0.
[[nodiscard]] constexpr value_t unique_value(processor_id proc,
                                             std::uint32_t counter) noexcept {
    return (static_cast<value_t>(proc) + 1) * (value_t{1} << 32) +
           static_cast<value_t>(counter);
}

/// Generates a reproducible random workload from a seed.
[[nodiscard]] workload make_workload(const workload_config& cfg, std::uint64_t seed);

}  // namespace bloom87
