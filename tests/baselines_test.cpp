// Tests for src/baselines: the mutex and native-atomic baselines behave as
// MRMW atomic registers; the four-writer tournament reproduces the paper's
// Figure 5 counterexample and is flagged non-atomic by the checkers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "baselines/mutex_register.hpp"
#include "baselines/native_atomic.hpp"
#include "baselines/rwlock_register.hpp"
#include "baselines/tournament.hpp"
#include "histories/event_log.hpp"
#include "histories/history.hpp"
#include "histories/workload.hpp"
#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

TEST(MutexRegister, SequentialSemantics) {
    mutex_register<int> reg(5);
    EXPECT_EQ(reg.read(), 5);
    reg.write(9);
    EXPECT_EQ(reg.read(), 9);
}

TEST(MutexRegister, ConcurrentHistoryIsAtomic) {
    event_log log(1 << 14);
    mutex_register<value_t> reg(0, &log);
    start_gate gate;
    std::vector<std::thread> pool;
    for (int w = 0; w < 3; ++w) {
        pool.emplace_back([&, w] {
            gate.wait();
            for (std::uint32_t i = 0; i < 200; ++i) {
                reg.write(unique_value(static_cast<processor_id>(w), i),
                          static_cast<processor_id>(w));
            }
        });
    }
    for (int r = 3; r < 6; ++r) {
        pool.emplace_back([&, r] {
            gate.wait();
            for (int i = 0; i < 200; ++i) {
                (void)reg.read(static_cast<processor_id>(r));
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto res = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

TEST(RwlockRegister, SequentialSemantics) {
    rwlock_register<int> reg(5);
    EXPECT_EQ(reg.read(), 5);
    reg.write(9);
    EXPECT_EQ(reg.read(), 9);
}

TEST(RwlockRegister, ConcurrentHistoryIsAtomic) {
    event_log log(1 << 14);
    rwlock_register<value_t> reg(0, &log);
    start_gate gate;
    std::vector<std::thread> pool;
    for (int w = 0; w < 2; ++w) {
        pool.emplace_back([&, w] {
            gate.wait();
            for (std::uint32_t i = 0; i < 200; ++i) {
                reg.write(unique_value(static_cast<processor_id>(w), i),
                          static_cast<processor_id>(w));
            }
        });
    }
    for (int r = 2; r < 5; ++r) {
        pool.emplace_back([&, r] {
            gate.wait();
            for (int i = 0; i < 200; ++i) {
                (void)reg.read(static_cast<processor_id>(r));
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto res = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

TEST(RwlockRegister, StalledWriterBlocksReaders) {
    rwlock_register<int> reg(0);
    std::atomic<bool> read_done{false};
    auto lock = reg.stall_writer();
    std::thread reader([&] {
        (void)reg.read(1);
        read_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(read_done.load());  // the anti-property, again
    lock.unlock();
    reader.join();
    EXPECT_TRUE(read_done.load());
}

TEST(NativeAtomic, SequentialSemantics) {
    native_atomic_register<std::int32_t> reg(-3);
    EXPECT_EQ(reg.read(), -3);
    reg.write(12);
    EXPECT_EQ(reg.read(), 12);
}

// ---------------------------------------------------------------------------
// Figure 5: the four-writer tournament counterexample, replayed exactly.
// ---------------------------------------------------------------------------

TEST(Tournament, SequentialWritesWork) {
    tournament_four_writer<std::int32_t> reg(0);
    auto rd = reg.make_reader();
    auto w0 = reg.make_writer(0);
    auto w3 = reg.make_writer(3);
    w0.write(10);
    EXPECT_EQ(rd.read(), 10);
    w3.write(20);
    EXPECT_EQ(rd.read(), 20);
}

TEST(Tournament, Figure5ValueReappears) {
    // Values: 'a' = 1 (initial), 'x' = 10, 'c' = 20, 'd' = 30.
    tournament_four_writer<std::int32_t> reg(1);
    auto rd = reg.make_reader();
    auto wr00 = reg.make_writer(0);
    auto wr01 = reg.make_writer(1);
    auto wr11 = reg.make_writer(3);

    EXPECT_EQ(rd.read(), 1);      // initial: 'a'
    wr00.begin_write(10);         // Wr00 performs its real reads, sleeps
    wr11.write(20);               // Wr11 writes 'c'
    EXPECT_EQ(rd.read(), 20);     // register holds 'c'
    wr01.write(30);               // Wr01 writes 'd': 'c' is now obsolete
    EXPECT_EQ(rd.read(), 30);     // register holds 'd'
    wr00.finish_write();          // Wr00's stale write lands
    EXPECT_EQ(rd.read(), 20);     // 'c' has REAPPEARED: not atomic

    // The real registers match the paper's final row: Reg0 = ('x', 0),
    // Reg1 = ('c', 1).
    EXPECT_EQ(reg.real_contents(0).value, 10);
    EXPECT_FALSE(reg.real_contents(0).tag);
    EXPECT_EQ(reg.real_contents(1).value, 20);
    EXPECT_TRUE(reg.real_contents(1).tag);
}

TEST(Tournament, Figure5HistoryRejectedByCheckers) {
    event_log log(256);
    tournament_four_writer<std::int32_t> reg(1, &log);
    auto rd = reg.make_reader();
    auto wr00 = reg.make_writer(0);
    auto wr01 = reg.make_writer(1);
    auto wr11 = reg.make_writer(3);

    wr00.begin_write(10);
    wr11.write(20);
    (void)rd.read();
    wr01.write(30);
    (void)rd.read();
    wr00.finish_write();
    (void)rd.read();

    parse_result parsed = parse_history(log.snapshot(), 1);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto fast = check_fast(parsed.hist.ops, 1);
    ASSERT_TRUE(fast.ok()) << *fast.defect;
    EXPECT_FALSE(fast.linearizable);
    const auto slow = check_exhaustive(parsed.hist.ops, 1);
    ASSERT_TRUE(slow.ok()) << *slow.defect;
    EXPECT_FALSE(slow.linearizable);
}

TEST(Tournament, TwoWritersOnlyIsStillAtomic) {
    // Degenerate use: only one writer per pair active -- reduces to the
    // two-writer protocol, which is correct. Sanity check that the failure
    // really needs two writers in one pair.
    event_log log(1 << 14);
    tournament_four_writer<std::int32_t> reg(0, &log);
    start_gate gate;
    std::thread t0([&] {
        gate.wait();
        auto w = reg.make_writer(0);
        for (std::int32_t i = 0; i < 300; ++i) w.write((1 << 16) + i);
    });
    std::thread t1([&] {
        gate.wait();
        auto w = reg.make_writer(2);
        for (std::int32_t i = 0; i < 300; ++i) w.write((2 << 16) + i);
    });
    std::thread t2([&] {
        gate.wait();
        auto rd = reg.make_reader(4);
        for (int i = 0; i < 400; ++i) (void)rd.read();
    });
    gate.open();
    t0.join();
    t1.join();
    t2.join();

    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto res = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

TEST(MutexRegister, StallHoldsUpReaders) {
    // The anti-property the paper calls out (Section 4): one stalled
    // processor blocks everyone on a mutual-exclusion register.
    mutex_register<int> reg(0);
    std::atomic<bool> read_done{false};
    auto lock = reg.stall();  // a "crashed" writer inside its critical section
    std::thread reader([&] {
        (void)reg.read(1);
        read_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(read_done.load());  // reader is stuck
    lock.unlock();
    reader.join();
    EXPECT_TRUE(read_done.load());
}

}  // namespace
}  // namespace bloom87
