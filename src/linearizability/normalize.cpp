#include "linearizability/normalize.hpp"

#include <set>

namespace bloom87 {

normalized_history normalize_history(const std::vector<operation>& raw,
                                     value_t initial,
                                     bool require_unique_writes) {
    normalized_history out;
    out.initial = initial;

    std::set<value_t> written;
    std::set<value_t> read_values;
    for (const operation& op : raw) {
        if (op.kind == op_kind::write) {
            const bool fresh = written.insert(op.value).second;
            if (require_unique_writes) {
                if (op.value == initial) {
                    out.defect = "write of the initial value breaks uniqueness";
                    return out;
                }
                if (!fresh) {
                    out.defect = "duplicate write value; checkers require unique writes";
                    return out;
                }
            }
        } else if (op.complete()) {
            read_values.insert(op.value);
        }
    }

    for (const operation& op : raw) {
        if (!op.complete()) {
            if (op.kind == op_kind::read) continue;  // pending read: drop
            if (read_values.contains(op.value)) {
                operation kept = op;  // observed crash-write: must take effect
                kept.responded = no_event;  // no_event == +infinity in comparisons
                out.ops.push_back(kept);
            }
            continue;  // unobserved crash-write: drop
        }
        out.ops.push_back(op);
    }

    // A read returning a value that no write (kept or dropped) ever wrote,
    // and that is not the initial value, can never linearize; catch it here
    // with a clear message instead of a generic checker failure.
    for (const operation& op : out.ops) {
        if (op.kind == op_kind::read && op.value != initial &&
            !written.contains(op.value)) {
            out.defect = "read returned a value no write produced";
            return out;
        }
    }
    return out;
}

}  // namespace bloom87
