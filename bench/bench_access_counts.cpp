// [TAB-A] Shared-memory cost accounting (paper, Section 5).
//
// The paper claims: a simulated write costs 1 real read + 1 real write; a
// simulated read costs 3 real reads; a writer that keeps a local copy of
// its own register reads only 1-2 real registers per simulated read. This
// bench measures those numbers exactly with instrumented substrates, per
// operation and amortized over a mixed workload.
//
//   bench_access_counts [--json BENCH_access_counts.json]
#include <fstream>
#include <iostream>

#include "core/two_writer.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "histories/workload.hpp"
#include "registers/instrumented.hpp"
#include "registers/packed_atomic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace bloom87;

using counted_reg =
    two_writer_register<std::int32_t,
                        instrumented_register<packed_atomic_register<std::int32_t>>>;

namespace {

access_counts totals(counted_reg& reg) {
    return reg.real_register(0).counts() + reg.real_register(1).counts();
}

void reset(counted_reg& reg) {
    reg.real_register(0).reset_counts();
    reg.real_register(1).reset_counts();
}

}  // namespace

int main(int argc, char** argv) {
    harness::flag_parser parser("bench_access_counts",
                                "real-register accesses per simulated op");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    print_banner(std::cout, "TAB-A",
                 "Real-register accesses per simulated operation");

    counted_reg reg(0);
    auto rd = reg.make_reader(2);

    table t({"operation", "real reads", "real writes", "paper claim"});

    // Warm both writer caches so the cached-read rows measure steady state.
    reg.writer1().write(1);
    reg.writer0().write(2);

    reset(reg);
    reg.writer0().write(3);
    auto c = totals(reg);
    t.row({"simulated write", std::to_string(c.reads), std::to_string(c.writes),
           "1 read + 1 write"});

    reset(reg);
    (void)rd.read();
    c = totals(reg);
    t.row({"simulated read (reader)", std::to_string(c.reads),
           std::to_string(c.writes), "3 reads"});

    reset(reg);
    (void)reg.writer0().read();
    c = totals(reg);
    t.row({"simulated read (writer, no cache)", std::to_string(c.reads),
           std::to_string(c.writes), "3 reads"});

    // Writer 0 wrote last, so the tag sum points at Reg0: its cached read
    // needs 1 real read; writer 1's needs 2.
    reset(reg);
    (void)reg.writer0().read_cached();
    c = totals(reg);
    t.row({"simulated read (writer cache, own reg current)",
           std::to_string(c.reads), std::to_string(c.writes), "1 read"});

    reset(reg);
    (void)reg.writer1().read_cached();
    c = totals(reg);
    t.row({"simulated read (writer cache, other reg current)",
           std::to_string(c.reads), std::to_string(c.writes), "2 reads"});
    t.print(std::cout);

    // Amortized over a mixed workload, including the distribution of
    // cached-read costs.
    std::cout << "\nAmortized over a mixed workload (10,000 ops/processor):\n\n";
    constexpr std::uint32_t n = 10000;
    rng gen(7);
    std::uint64_t writes = 0, writer_reads = 0, reader_reads = 0;
    reset(reg);
    std::uint32_t w0 = 100000, w1 = 200000;
    for (std::uint32_t i = 0; i < n; ++i) {
        switch (gen.below(4)) {
            case 0: reg.writer0().write(static_cast<std::int32_t>(w0++)); ++writes; break;
            case 1: reg.writer1().write(static_cast<std::int32_t>(w1++)); ++writes; break;
            case 2:
                (void)(gen.chance(1, 2) ? reg.writer0().read_cached()
                                        : reg.writer1().read_cached());
                ++writer_reads;
                break;
            default: (void)rd.read(); ++reader_reads; break;
        }
    }
    c = totals(reg);
    const double expected_min =
        static_cast<double>(writes + writer_reads + 3 * reader_reads);
    const double expected_max =
        static_cast<double>(writes + 2 * writer_reads + 3 * reader_reads);
    table a({"ops", "writes", "writer cached reads", "reader reads",
             "total real accesses", "bound from Section 5"});
    std::string bound = "[";
    bound += fixed(expected_min + writes, 0);
    bound += ", ";
    bound += fixed(expected_max + writes, 0);
    bound += "]";
    a.row({with_commas(n), with_commas(writes), with_commas(writer_reads),
           with_commas(reader_reads), with_commas(c.total()), bound});
    a.print(std::cout);
    std::cout << "\n(writes contribute 1 read + 1 write each; cached reads 1-2\n"
              << "reads; reader reads exactly 3 reads.)\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "access_counts");
        rep.add_table("per_operation", t);
        rep.add_table("amortized", a);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
