// [FIG3] Regenerates the content of Figure 3 of the paper: the timing
// structure behind Lemma 2 ("the prefinisher of an impotent write is
// potent"). Two parts:
//
//  1. A deterministic replay of the impotent-write interleaving, printing
//     the tag-bit timeline in the style of the paper's figure.
//  2. Randomized validation: thousands of paced concurrent executions;
//     every write is classified potent/impotent, every impotent write's
//     prefinisher is located (Lemma 1) and checked potent (Lemma 2). The
//     constructive linearizer aborts with the lemma's name if either ever
//     fails, so the run doubles as a statistical test of the lemmas.
#include <iostream>
#include <thread>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

using namespace bloom87;

namespace {

void deterministic_replay() {
    event_log log(64);
    recording_register reg0(tagged<value_t>{0, false}, &log, 0);
    recording_register reg1(tagged<value_t>{0, false}, &log, 1);

    table t({"Time", "Event", "Reg0 tag", "Reg1 tag", "note"});
    bool t0 = false, t1 = false;
    auto row = [&](const std::string& when, const std::string& what,
                   const std::string& note) {
        t.row({when, what, t0 ? "1" : "0", t1 ? "1" : "0", note});
    };

    row("-", "initial", "both tags 0, sum 0");

    // W0 by Wr0: real read at T0r, then it stalls.
    const bool w0_saw = reg1.read({0, 0}).tag;  // T0r
    row("T0r", "Wr0 reads Reg1", "W0 sees tag " + std::string(w0_saw ? "1" : "0"));

    // W1 by Wr1: full write within W0's window.
    const bool w1_saw = reg0.read({1, 0}).tag;  // T1r
    row("T1r", "Wr1 reads Reg0", "W1 sees tag " + std::string(w1_saw ? "1" : "0"));
    const bool w1_tag = writer_tag_choice(1, w1_saw);
    reg1.write(tagged<value_t>{200, w1_tag}, {1, 0});  // T1w
    t1 = w1_tag;
    row("T1w", "Wr1 writes Reg1", "sum now 1: W1 is POTENT");

    // W0 resumes with stale information.
    const bool w0_tag = writer_tag_choice(0, w0_saw);
    reg0.write(tagged<value_t>{100, w0_tag}, {0, 0});  // T0w
    t0 = w0_tag;
    row("T0w", "Wr0 writes Reg0",
        "sum still 1 != 0: W0 is IMPOTENT, prefinished by W1");
    t.print(std::cout);

    std::cout
        << "\nLemma 2's proof shows the five times of a hypothetical\n"
        << "impotent prefinisher would have to satisfy T1r < T1w' < T0r <\n"
        << "T1w < T0w -- forcing an earlier impotent write without a potent\n"
        << "prefinisher, a contradiction. Above, W1 read Reg0 BEFORE W0's\n"
        << "write and wrote within W0's window, so W1 is potent and\n"
        << "prefinishes W0.\n";
}

void randomized_validation() {
    std::size_t potent = 0, impotent = 0, histories = 0;
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        event_log log(1 << 17);
        two_writer_register<value_t, recording_register> reg(0, &log);
        start_gate gate;
        auto writer_loop = [&](int index) {
            rng pace(seed * 2 + static_cast<std::uint64_t>(index));
            auto& wr = index == 0 ? reg.writer0() : reg.writer1();
            for (std::uint32_t i = 0; i < 2000; ++i) {
                const bool stall = pace.chance(1, 10);
                wr.write_paced(unique_value(static_cast<processor_id>(index), i),
                               [&] {
                                   if (stall) {
                                       std::this_thread::sleep_for(
                                           std::chrono::microseconds(30));
                                   }
                               });
            }
        };
        std::thread a([&] { gate.wait(); writer_loop(0); });
        std::thread b([&] { gate.wait(); writer_loop(1); });
        gate.open();
        a.join();
        b.join();

        parse_result parsed = parse_history(log.snapshot(), 0);
        if (!parsed.ok()) {
            std::cout << "RECORDING DEFECT: " << parsed.error->message << "\n";
            return;
        }
        const bloom_result res = bloom_linearize(parsed.hist);
        if (!res.ok() || !res.atomic) {
            std::cout << "LEMMA VIOLATION: "
                      << (res.ok() ? res.diagnosis : *res.defect) << "\n";
            return;
        }
        potent += res.potent_count;
        impotent += res.impotent_count;
        ++histories;
    }

    table t({"histories", "writes", "potent", "impotent", "impotent %",
             "Lemma 1", "Lemma 2"});
    const std::size_t writes = potent + impotent;
    t.row({std::to_string(histories), with_commas(writes), with_commas(potent),
           with_commas(impotent),
           fixed(100.0 * static_cast<double>(impotent) /
                     static_cast<double>(writes),
                 3),
           "every impotent write has a unique prefinisher: HOLDS",
           "every prefinisher is potent: HOLDS"});
    t.print(std::cout);
}

}  // namespace

int main() {
    print_banner(std::cout, "FIG3",
                 "Lemma 2 timing: impotent writes and their prefinishers");
    std::cout << "--- deterministic replay of the impotence interleaving ---\n\n";
    deterministic_replay();
    std::cout << "\n--- randomized validation over paced concurrent runs ---\n\n";
    randomized_validation();
    return 0;
}
