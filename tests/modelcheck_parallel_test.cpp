// Parallel work-sharing explorer (src/modelcheck/explorer.cpp): the thread
// count must never change a verdict. Every schedule-invariant counter
// (property_holds, leaves, distinct_histories, violations) is identical for
// threads in {1, 2, 4}; states_explored/memo_hits may differ only when the
// exploration is truncated or stopped early. Also pins down the stop-flag
// semantics: stop_at_first_violation and max_states must terminate every
// worker without deadlock, and a FAIL verdict always carries a violating
// trace.
#include <gtest/gtest.h>

#include <functional>

#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"

namespace bloom87::mc {
namespace {

mc_register atomic_reg(mc_value domain, mc_value committed = 0) {
    mc_register r;
    r.level = reg_level::atomic;
    r.domain = domain;
    r.committed = committed;
    return r;
}

mc_register weak_reg(reg_level level, mc_value domain, mc_value committed = 0) {
    mc_register r;
    r.level = level;
    r.domain = domain;
    r.committed = committed;
    return r;
}

using state_factory = std::function<sim_state()>;

/// Seed configurations mirroring modelcheck_test / modelcheck_sweep_test.
sim_state bloom_2x2_1reader() {
    sim_state s;
    s.registers.push_back(atomic_reg(12));
    s.registers.push_back(atomic_reg(12));
    s.procs.push_back(make_bloom_writer(0, {1, 2}));
    s.procs.push_back(make_bloom_writer(1, {3, 4}));
    s.procs.push_back(make_bloom_reader(2, 1));
    return s;
}

sim_state bloom_1x1_2readers() {
    sim_state s;
    s.registers.push_back(atomic_reg(6));
    s.registers.push_back(atomic_reg(6));
    s.procs.push_back(make_bloom_writer(0, {1}));
    s.procs.push_back(make_bloom_writer(1, {2}));
    s.procs.push_back(make_bloom_reader(2, 2));
    s.procs.push_back(make_bloom_reader(3, 1));
    return s;
}

sim_state bloom_broken_tag() {
    sim_state s;
    s.registers.push_back(atomic_reg(16));
    s.registers.push_back(atomic_reg(16));
    s.procs.push_back(make_bloom_writer(0, {1, 2}));
    s.procs.push_back(make_bloom_writer_wrong_tag(1, {3, 4}));
    s.procs.push_back(make_bloom_reader(2, 2));
    return s;
}

/// Smaller mutant (one write each) for FULL-space exploration: still
/// violates (130 distinct violating histories) at a fraction of the cost.
sim_state bloom_broken_tag_small() {
    sim_state s;
    s.registers.push_back(atomic_reg(8));
    s.registers.push_back(atomic_reg(8));
    s.procs.push_back(make_bloom_writer(0, {1}));
    s.procs.push_back(make_bloom_writer_wrong_tag(1, {2}));
    s.procs.push_back(make_bloom_reader(2, 2));
    return s;
}

sim_state tournament_fig5() {
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(1, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(1, false)));
    s.procs.push_back(make_tournament_writer(0, {2}));
    s.procs.push_back(make_tournament_writer(1, {3}));
    s.procs.push_back(make_tournament_writer(3, {4}));
    s.procs.push_back(make_tournament_reader(4, 2));
    return s;
}

/// One-read tournament for FULL-space exploration (the two-read Fig. 5
/// configuration is kept for the stop-flag tests, which stop early).
sim_state tournament_one_read() {
    sim_state s = tournament_fig5();
    s.procs.back() = make_tournament_reader(4, 1);
    return s;
}

sim_state fourslot_safe_atomic() {
    sim_state s;
    for (int i = 0; i < 4; ++i) s.registers.push_back(weak_reg(reg_level::safe, 3, 0));
    for (int i = 0; i < 4; ++i) s.registers.push_back(weak_reg(reg_level::atomic, 2, 0));
    s.procs.push_back(make_fourslot_writer(0, {1, 2}));
    s.procs.push_back(make_fourslot_reader(0, 1, 2));
    return s;
}

sim_state mr_2readers() {
    sim_state s;
    for (int i = 0; i < 2 + 4; ++i) s.registers.push_back(atomic_reg(3));
    s.procs.push_back(make_mr_writer(0, 2, {1, 2}));
    s.procs.push_back(make_mr_reader(0, 2, 0, 2, 2, {1, 2}));
    s.procs.push_back(make_mr_reader(0, 2, 1, 3, 1, {1, 2}));
    return s;
}

sim_state unary_3bits() {
    sim_state s;
    for (int i = 0; i < 3; ++i) {
        s.registers.push_back(weak_reg(reg_level::regular, 2, i == 0 ? 1 : 0));
    }
    s.procs.push_back(make_unary_writer(0, 3, {2, 1}));
    s.procs.push_back(make_unary_reader(0, 3, 1, 2));
    return s;
}

/// Runs the factory's configuration at threads in {1, 2, 4} and asserts
/// every schedule-invariant result matches the sequential engine.
void expect_thread_equivalence(const state_factory& make, explore_config cfg) {
    cfg.threads = 1;
    const explore_result seq = explore(make(), cfg);
    ASSERT_FALSE(seq.truncated) << "equivalence configs must fit the budget";
    for (unsigned threads : {2u, 4u}) {
        cfg.threads = threads;
        const explore_result par = explore(make(), cfg);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(par.property_holds, seq.property_holds);
        EXPECT_EQ(par.leaves, seq.leaves);
        EXPECT_EQ(par.distinct_histories, seq.distinct_histories);
        EXPECT_EQ(par.violations, seq.violations);
        EXPECT_FALSE(par.truncated);
        // Not truncated and not stopped early: even the traversal counters
        // are schedule-invariant (every reachable state is expanded exactly
        // once, so the visit-call count is a graph property).
        EXPECT_EQ(par.states_explored, seq.states_explored);
        EXPECT_EQ(par.memo_hits, seq.memo_hits);
        if (!par.property_holds) {
            ASSERT_TRUE(par.first_violation.has_value());
            EXPECT_FALSE(par.first_violation->hist.empty());
        }
    }
}

TEST(ParallelEquivalence, Bloom2x2OneReader) {
    expect_thread_equivalence(bloom_2x2_1reader, explore_config{});
}

TEST(ParallelEquivalence, Bloom1x1TwoReaders) {
    expect_thread_equivalence(bloom_1x1_2readers, explore_config{});
}

TEST(ParallelEquivalence, FourSlotSafeDataAtomicControl) {
    expect_thread_equivalence(fourslot_safe_atomic, explore_config{});
}

TEST(ParallelEquivalence, MultiReaderConstruction) {
    expect_thread_equivalence(mr_2readers, explore_config{});
}

TEST(ParallelEquivalence, UnaryRegularity) {
    explore_config cfg;
    cfg.prop = property::regular_swmr;
    expect_thread_equivalence(unary_3bits, cfg);
}

TEST(ParallelEquivalence, ViolatingConfigsCountedExhaustively) {
    // With stop_at_first_violation off the full space is explored, so even
    // FAIL verdicts have schedule-invariant counts (distinct violating
    // histories are deduplicated globally).
    explore_config cfg;
    cfg.stop_at_first_violation = false;
    expect_thread_equivalence(bloom_broken_tag_small, cfg);
    cfg.initial = 1;
    expect_thread_equivalence(tournament_one_read, cfg);
}

TEST(ParallelEquivalence, AutoThreadCountMatchesSequential) {
    explore_config cfg;  // threads = 0: hardware_concurrency
    const explore_result auto_res = explore(bloom_2x2_1reader(), cfg);
    cfg.threads = 1;
    const explore_result seq = explore(bloom_2x2_1reader(), cfg);
    EXPECT_TRUE(auto_res.property_holds);
    EXPECT_EQ(auto_res.leaves, seq.leaves);
    EXPECT_EQ(auto_res.distinct_histories, seq.distinct_histories);
}

// ---------------------------------------------------------------------------
// Stop-flag semantics.
// ---------------------------------------------------------------------------

class StopFlag : public ::testing::TestWithParam<unsigned> {};

TEST_P(StopFlag, BrokenTagMutantAlwaysReportsATrace) {
    explore_config cfg;
    cfg.stop_at_first_violation = true;
    cfg.threads = GetParam();
    const explore_result res = explore(bloom_broken_tag(), cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
    ASSERT_TRUE(res.first_violation.has_value());
    EXPECT_FALSE(res.first_violation->hist.empty());
    EXPECT_FALSE(res.first_violation->diagnosis.empty());
    EXPECT_GE(res.violations, 1u);
}

TEST_P(StopFlag, TournamentAlwaysReportsATrace) {
    explore_config cfg;
    cfg.stop_at_first_violation = true;
    cfg.initial = 1;
    cfg.threads = GetParam();
    const explore_result res = explore(tournament_fig5(), cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
    ASSERT_TRUE(res.first_violation.has_value());
    EXPECT_FALSE(res.first_violation->hist.empty());
}

TEST_P(StopFlag, MaxStatesTruncatesWithoutDeadlock) {
    explore_config cfg;
    cfg.max_states = 2'000;  // far below the ~450k reachable states
    cfg.threads = GetParam();
    const explore_result res = explore(bloom_2x2_1reader(), cfg);
    EXPECT_TRUE(res.truncated);
    // A truncated run proves nothing; it must still report coherently.
    EXPECT_GE(res.states_explored, cfg.max_states);
}

TEST_P(StopFlag, MaxStatesOfOneStillTerminates) {
    explore_config cfg;
    cfg.max_states = 1;
    cfg.threads = GetParam();
    const explore_result res = explore(bloom_2x2_1reader(), cfg);
    EXPECT_TRUE(res.truncated);
}

INSTANTIATE_TEST_SUITE_P(Threads, StopFlag, ::testing::Values(1u, 2u, 4u));

}  // namespace
}  // namespace bloom87::mc
