// bloom87: actions of the (simplified) Lynch-Tuttle I/O automaton model.
//
// Paper, Section 2-3. An action is a signal passed between automata over a
// named channel. The register signature (paper, Figure 1) consists of:
//
//   R_start        command to read                  (input to the register)
//   R_finish(v)    read acknowledgment carrying v   (output)
//   W_start(v)     command to write v               (input)
//   W_finish       write acknowledgment             (output)
//   R*(v), W*(v)   internal events marking the instant the operation
//                  "actually occurred" (the *-actions)
//
// Channels are plain strings ("wr0->reg1", "ext:rd2", ...); composition
// synchronizes actions by (channel, kind) equality: one automaton's output
// is delivered to every automaton that declares it as input.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "histories/events.hpp"

namespace bloom87::ioa {

enum class act : std::uint8_t {
    read_request,   ///< R_start
    read_ack,       ///< R_finish(v)
    write_request,  ///< W_start(v)
    write_ack,      ///< W_finish
    star_read,      ///< R*(v) -- internal
    star_write,     ///< W*(v) -- internal
};

[[nodiscard]] constexpr bool is_request(act a) noexcept {
    return a == act::read_request || a == act::write_request;
}
[[nodiscard]] constexpr bool is_ack(act a) noexcept {
    return a == act::read_ack || a == act::write_ack;
}
[[nodiscard]] constexpr bool is_star(act a) noexcept {
    return a == act::star_read || a == act::star_write;
}

struct action {
    act kind{act::read_request};
    std::string channel;
    value_t value{0};  ///< W_start / R_finish / star actions carry a value

    friend bool operator==(const action&, const action&) = default;
    friend auto operator<=>(const action&, const action&) = default;
};

[[nodiscard]] std::string to_string(act a);
[[nodiscard]] std::string to_string(const action& a);

}  // namespace bloom87::ioa
