// bloom87: plain (unsynchronized) register.
//
// Used wherever accesses are already serialized by construction: inside the
// recording register's critical section, in single-threaded scenario drivers,
// and as the backing store of the model checker's simulated registers.
// NOT thread-safe on its own.
#pragma once

#include "registers/concepts.hpp"

namespace bloom87 {

/// Trivial register; caller must serialize accesses externally.
template <typename V>
class plain_register {
public:
    explicit plain_register(V initial) : value_(initial) {}

    [[nodiscard]] V read(access_context = {}) const noexcept { return value_; }
    void write(V v, access_context = {}) noexcept { value_ = v; }

private:
    V value_;
};

}  // namespace bloom87
