#include "harness/cli.hpp"

#include <charconv>
#include <iostream>

#include "harness/registry.hpp"

namespace bloom87::harness {
namespace {

template <typename T>
bool parse_number(const std::string& text, T* out) {
    T v{};
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
    *out = v;
    return true;
}

}  // namespace

bool flag_parser::assign(const option& o, const std::string& text) {
    switch (o.k) {
        case kind::flag:
            return false;  // flags never take a value
        case kind::string:
            *static_cast<std::string*>(o.out) = text;
            return true;
        case kind::int32:
            return parse_number(text, static_cast<int*>(o.out));
        case kind::uint32:
            return parse_number(text, static_cast<unsigned*>(o.out));
        case kind::size:
            return parse_number(text, static_cast<std::size_t*>(o.out));
        case kind::uint64:
            return parse_number(text, static_cast<std::uint64_t*>(o.out));
    }
    return false;
}

bool flag_parser::parse(int argc, char** argv) {
    std::size_t next_positional = 0;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            print_usage(std::cout);
            help_ = true;
            return true;
        }
        if (arg.rfind("--", 0) == 0) {
            std::string name = arg.substr(2);
            std::string value;
            bool has_value = false;
            const std::size_t eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name.resize(eq);
                has_value = true;
            }
            const option* match = nullptr;
            for (const option& o : opts_) {
                if (o.name == name) {
                    match = &o;
                    break;
                }
            }
            if (match == nullptr) {
                std::cerr << program_ << ": unknown flag --" << name << "\n";
                print_usage(std::cerr);
                return false;
            }
            if (match->k == kind::flag) {
                if (has_value) {
                    std::cerr << program_ << ": --" << name
                              << " takes no value\n";
                    return false;
                }
                *static_cast<bool*>(match->out) = true;
                continue;
            }
            if (!has_value) {
                if (i + 1 >= argc) {
                    std::cerr << program_ << ": --" << name
                              << " needs a value\n";
                    print_usage(std::cerr);
                    return false;
                }
                value = argv[++i];
            }
            if (!assign(*match, value)) {
                std::cerr << program_ << ": bad value '" << value
                          << "' for --" << name << "\n";
                return false;
            }
            continue;
        }
        if (next_positional < positionals_.size()) {
            if (!parse_number(arg, positionals_[next_positional].out)) {
                std::cerr << program_ << ": bad value '" << arg << "' for "
                          << positionals_[next_positional].name << "\n";
                return false;
            }
            ++next_positional;
            continue;
        }
        std::cerr << program_ << ": unexpected argument '" << arg << "'\n";
        print_usage(std::cerr);
        return false;
    }
    return true;
}

void flag_parser::print_usage(std::ostream& os) const {
    os << "usage: " << program_;
    for (const positional& p : positionals_) os << " [" << p.name << "]";
    if (!opts_.empty()) os << " [flags]";
    os << "\n  " << description_ << "\n";
    for (const positional& p : positionals_) {
        os << "  " << p.name << ": " << p.help << " (default "
           << *p.out << ")\n";
    }
    for (const option& o : opts_) {
        os << "  --" << o.name;
        switch (o.k) {
            case kind::flag:
                break;
            case kind::string:
                os << " <str>";
                break;
            default:
                os << " <n>";
                break;
        }
        os << ": " << o.help;
        switch (o.k) {
            case kind::string: {
                const auto& v = *static_cast<std::string*>(o.out);
                if (!v.empty()) os << " (default " << v << ")";
                break;
            }
            case kind::int32:
                os << " (default " << *static_cast<int*>(o.out) << ")";
                break;
            case kind::uint32:
                os << " (default " << *static_cast<unsigned*>(o.out) << ")";
                break;
            case kind::size:
                os << " (default " << *static_cast<std::size_t*>(o.out) << ")";
                break;
            case kind::uint64:
                os << " (default " << *static_cast<std::uint64_t*>(o.out)
                   << ")";
                break;
            case kind::flag:
                break;
        }
        os << "\n";
    }
}

void common_flags::add_to(flag_parser& p) {
    p.add_string("register", "registry name of the register to drive",
                 &register_name);
    p.add_size("writers", "writer processors", &writers);
    p.add_size("readers", "reader processors", &readers);
    p.add_size("ops", "scripted ops per processor", &ops);
    p.add_uint64("seed", "workload/schedule seed", &seed);
    p.add_string("json", "write the run report (harness schema) to PATH",
                 &json_path);
    p.add_string("check",
                 "comma-separated checkers (bloom,fast,exhaustive,monitor,"
                 "regular,safe,race,none)",
                 &check);
    p.add_unsigned("duration-ms",
                   "timed run length (0 = scripted run, checkable)",
                   &duration_ms);
    p.add_unsigned("threads", "worker threads where applicable (0 = auto)",
                   &threads);
    p.add_flag("list", "print the register registry and exit", &list);
    p.add_string("fault",
                 "substrate fault class (none,stale_read,lost_write,"
                 "torn_value,delayed_visibility,port_crash); faulty/ "
                 "registers only",
                 &fault);
    p.add_string("fault-rate",
                 "per-access trigger probability, 'num/den' or 'den' (=1/den)",
                 &fault_rate);
    p.add_uint64("fault-seed", "seed of the fault plan's private rng",
                 &fault_seed);
    p.add_uint64("fault-at",
                 "inject at exactly the nth substrate access (0 = use rate)",
                 &fault_at);
    p.add_flag("online",
               "run the online atomicity verifier concurrently with the run",
               &online);
    p.add_flag("streaming",
               "run the bounded-memory streaming checker during the run "
               "(the only monitor that may watch a timed run)",
               &streaming);
    p.add_unsigned("stream-window",
                   "streaming checker: events of context kept behind the "
                   "frontier",
                   &stream_window);
    p.add_unsigned("stream-stride",
                   "streaming checker: events between incremental checks",
                   &stream_stride);
    p.add_unsigned("clients",
                   "timed runs: multiplex this many open-loop paced clients "
                   "over the worker threads (0 = closed loop)",
                   &clients);
    p.add_uint64("client-pace-ns", "per-client inter-arrival time",
                 &client_pace_ns);
}

run_spec common_flags::to_spec() const {
    run_spec spec;
    spec.register_name = register_name;
    spec.load.writers = writers;
    spec.load.readers = readers;
    spec.load.ops_per_writer = ops;
    spec.load.ops_per_reader = ops;
    spec.seed = seed;
    spec.duration_ms = duration_ms;

    const std::optional<fault_class> cls = parse_fault_class(fault);
    if (!cls.has_value()) {
        std::cerr << "warning: unknown fault class '" << fault
                  << "' ignored (known: none, stale_read, lost_write, "
                     "torn_value, delayed_visibility, port_crash)\n";
    } else {
        spec.fault.cls = *cls;
    }
    spec.fault.seed = fault_seed;
    spec.fault.at = fault_at;
    std::uint64_t num = 1;
    std::uint64_t den = 64;
    const std::size_t slash = fault_rate.find('/');
    const bool rate_ok =
        slash == std::string::npos
            ? parse_number(fault_rate, &den)
            : parse_number(fault_rate.substr(0, slash), &num) &&
                  parse_number(fault_rate.substr(slash + 1), &den);
    if (!rate_ok || den == 0) {
        std::cerr << "warning: bad --fault-rate '" << fault_rate
                  << "' ignored (want 'num/den' or 'den')\n";
    } else {
        spec.fault.rate_num = num;
        spec.fault.rate_den = den;
    }
    spec.online_monitor = online;
    spec.streaming_monitor = streaming;
    spec.stream_window = stream_window;
    spec.stream_stride = stream_stride;
    spec.clients = clients;
    spec.client_pace_ns = client_pace_ns;

    if (duration_ms == 0) {
        const registry_entry* e = find_register(register_name);
        // Fault runs always collect through the shared gamma log: the
        // injection position and the online verifier both live there.
        spec.collect = (e != nullptr && e->info.requires_log) ||
                               spec.fault.active() || spec.online_monitor
                           ? collect_mode::gamma
                           : collect_mode::per_thread;
    } else {
        // Timed runs collect nothing -- unless the streaming checker rides
        // along, which checks and discards a per_thread merge.
        spec.collect = streaming ? collect_mode::per_thread
                                 : collect_mode::none;
    }
    return spec;
}

void print_register_list(std::ostream& os) {
    os << "registered registers:\n";
    for (const registry_entry& e : registry()) {
        os << "  " << e.info.name;
        os << "  (writers " << e.info.min_writers << ".."
           << e.info.max_writers;
        if (!e.info.wait_free) os << ", blocking";
        if (e.info.records_real_accesses) os << ", records real accesses";
        if (!e.info.expected_atomic) os << ", KNOWN NOT ATOMIC";
        os << ")\n      " << e.info.description << "\n";
    }
}

}  // namespace bloom87::harness
