// mo_lint: memory-order contract lint over the audited headers.
//
// Scans every audited header under the source root (src/registers/ plus
// the harness collection structures in src/histories/) for atomic call
// sites and checks each against the declared contract table
// (src/analysis/contracts.cpp): undeclared sites, weakened or otherwise
// undeclared memory orders, implicit seq_cst, and stale contract rows all
// fail. CI runs this on every push; docs/ANALYSIS.md describes the table.
//
//   ./build/examples/mo_lint                       # lints under src/
//   ./build/examples/mo_lint --dir path/to/src
#include <cstdio>
#include <string>

#include "analysis/mo_lint.hpp"

int main(int argc, char** argv) {
    std::string dir = "src";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--dir <source root>]\n", argv[0]);
            std::printf(
                "lints atomic call sites against the declared memory-order "
                "contracts\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return 64;
        }
    }

    const auto findings = bloom87::analysis::lint_directory(dir);
    std::size_t files = 0;
    for (const auto& fc : bloom87::analysis::register_contracts()) {
        (void)fc;
        ++files;
    }
    if (findings.empty()) {
        std::printf("mo_lint: %zu headers clean against their declared "
                    "memory-order contracts\n",
                    files);
        return 0;
    }
    std::fputs(bloom87::analysis::format_findings(findings).c_str(), stderr);
    std::fprintf(stderr, "mo_lint: %zu finding(s) across %zu audited "
                         "header(s)\n",
                 findings.size(), files);
    return 1;
}
