// Scale stress: large histories, long-running contention, and many reader
// threads, all driven through the run harness (src/harness). Kept to tens
// of seconds total; the point is to shake out races and scale limits the
// small tests cannot reach.
#include <gtest/gtest.h>

#include "harness/checkers.hpp"
#include "harness/driver.hpp"

namespace bloom87 {
namespace {

using namespace bloom87::harness;

TEST(Stress, QuarterMillionOpsCheckedEndToEnd) {
    // 2 writers x 50k ops + 4 readers x 40k reads on the recording
    // substrate, verified by BOTH the constructive linearizer and the fast
    // checker through the pipeline.
    run_spec spec;
    spec.register_name = "bloom/recording";
    spec.load.writers = 2;
    spec.load.readers = 4;
    spec.load.ops_per_writer = 50000;
    spec.load.ops_per_reader = 40000;
    spec.seed = 7;
    spec.collect = collect_mode::gamma;

    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_FALSE(res.log_overflowed);
    EXPECT_EQ(res.total_reads + res.total_writes,
              2u * 50000 + 4u * 40000);

    const pipeline_result checks = run_checkers(
        res.events, 0, {checker_kind::bloom, checker_kind::fast});
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    EXPECT_EQ(checks.operations, 2u * 50000 + 4u * 40000);
    for (const check_verdict& v : checks.verdicts) {
        ASSERT_TRUE(v.ran) << checker_name(v.kind) << ": " << v.skip_reason;
        EXPECT_TRUE(v.pass) << checker_name(v.kind) << ": " << v.diagnosis;
    }
}

TEST(Stress, ManyReaderThreadsOnPackedSubstrate) {
    // 12 reader threads against both writers on the lock-free substrate,
    // with contention-free per-thread event collection; the merged history
    // must be linearizable (strictly stronger than the per-writer
    // monotonicity the pre-harness version of this test asserted).
    run_spec spec;
    spec.register_name = "bloom/packed";
    spec.load.writers = 2;
    spec.load.readers = 12;
    spec.load.ops_per_writer = 20000;
    spec.load.ops_per_reader = 15000;
    spec.seed = 11;
    spec.collect = collect_mode::per_thread;

    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.threads.size(), 14u);

    const pipeline_result checks =
        run_checkers(res.events, 0, {checker_kind::fast});
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    ASSERT_EQ(checks.verdicts.size(), 1u);
    ASSERT_TRUE(checks.verdicts[0].ran) << checks.verdicts[0].skip_reason;
    EXPECT_TRUE(checks.verdicts[0].pass) << checks.verdicts[0].diagnosis;
}

TEST(Stress, PacedContentionKeepsLemmasTrue) {
    // Long paced run maximizing impotent writes; the linearizer revalidates
    // Lemmas 1/2/4 on every one of them.
    run_spec spec;
    spec.register_name = "bloom/recording";
    spec.load.writers = 2;
    spec.load.readers = 1;
    spec.load.ops_per_writer = 12000;
    spec.load.ops_per_reader = 15000;
    spec.seed = 1234;
    spec.collect = collect_mode::gamma;
    spec.pace.writer_pace_num = 1;
    spec.pace.writer_pace_den = 12;
    spec.pace.reader_pace_num = 1;
    spec.pace.reader_pace_den = 8;
    spec.pace.pause_yields = 512;

    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_FALSE(res.log_overflowed);

    const pipeline_result checks =
        run_checkers(res.events, 0, {checker_kind::bloom});
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    ASSERT_EQ(checks.verdicts.size(), 1u);
    const check_verdict& v = checks.verdicts[0];
    ASSERT_TRUE(v.ran) << v.skip_reason;
    EXPECT_TRUE(v.pass) << v.diagnosis;
    EXPECT_GT(v.impotent_writes, 0u);
}

}  // namespace
}  // namespace bloom87
