#include "ioa/register_automaton.hpp"

namespace bloom87::ioa {

register_automaton::register_automaton(std::string name, value_t initial,
                                       std::string write_channel,
                                       std::vector<std::string> read_channels)
    : name_(std::move(name)), current_(initial),
      write_channel_(std::move(write_channel)) {
    channels_[write_channel_] = channel_state{true, phase::idle, 0};
    for (auto& c : read_channels) {
        channels_[std::move(c)] = channel_state{false, phase::idle, 0};
    }
}

bool register_automaton::in_input(const action& a) const {
    auto it = channels_.find(a.channel);
    if (it == channels_.end()) return false;
    return it->second.is_write ? a.kind == act::write_request
                               : a.kind == act::read_request;
}

bool register_automaton::in_output(const action& a) const {
    auto it = channels_.find(a.channel);
    if (it == channels_.end()) return false;
    return it->second.is_write ? a.kind == act::write_ack
                               : a.kind == act::read_ack;
}

bool register_automaton::in_internal(const action& a) const {
    auto it = channels_.find(a.channel);
    if (it == channels_.end()) return false;
    return it->second.is_write ? a.kind == act::star_write
                               : a.kind == act::star_read;
}

std::vector<action> register_automaton::enabled() const {
    std::vector<action> out;
    for (const auto& [chan, st] : channels_) {
        if (st.ph == phase::requested) {
            out.push_back(action{st.is_write ? act::star_write : act::star_read,
                                 chan, st.is_write ? st.value : current_});
        } else if (st.ph == phase::performed) {
            out.push_back(action{st.is_write ? act::write_ack : act::read_ack,
                                 chan, st.value});
        }
    }
    return out;
}

void register_automaton::apply(const action& a) {
    auto it = channels_.find(a.channel);
    if (it == channels_.end()) return;  // not ours; ignore (input-enabled)
    channel_state& st = it->second;
    switch (a.kind) {
        case act::read_request:
        case act::write_request:
            // Improper input on a busy channel is ignored.
            if (st.ph == phase::idle) {
                st.ph = phase::requested;
                st.value = a.value;
            }
            break;
        case act::star_read:
            st.value = current_;  // the instant the read takes effect
            st.ph = phase::performed;
            ++stars_;
            break;
        case act::star_write:
            current_ = st.value;  // the instant the write takes effect
            st.ph = phase::performed;
            ++stars_;
            break;
        case act::read_ack:
        case act::write_ack:
            st.ph = phase::idle;
            break;
    }
}

}  // namespace bloom87::ioa
