#include "linearizability/monitor.hpp"

#include <cassert>

#include "histories/history.hpp"
#include "linearizability/fast_register.hpp"

namespace bloom87 {

atomicity_monitor::atomicity_monitor(value_t initial, std::size_t capacity)
    : initial_(initial), log_(capacity) {}

void atomicity_monitor::port::begin_write(value_t v) {
    assert(!open_ && "port already has an operation in flight");
    event e;
    e.kind = event_kind::sim_invoke_write;
    e.processor = processor_;
    e.op = next_op_;
    e.value = v;
    owner_->log_.append(e);
    open_ = true;
    open_op_ = next_op_++;
    open_is_write_ = true;
}

void atomicity_monitor::port::end_write() {
    assert(open_ && open_is_write_);
    event e;
    e.kind = event_kind::sim_respond_write;
    e.processor = processor_;
    e.op = open_op_;
    owner_->log_.append(e);
    open_ = false;
}

void atomicity_monitor::port::begin_read() {
    assert(!open_ && "port already has an operation in flight");
    event e;
    e.kind = event_kind::sim_invoke_read;
    e.processor = processor_;
    e.op = next_op_;
    owner_->log_.append(e);
    open_ = true;
    open_op_ = next_op_++;
    open_is_write_ = false;
}

void atomicity_monitor::port::end_read(value_t result) {
    assert(open_ && !open_is_write_);
    event e;
    e.kind = event_kind::sim_respond_read;
    e.processor = processor_;
    e.op = open_op_;
    e.value = result;
    owner_->log_.append(e);
    open_ = false;
}

void atomicity_monitor::port::abandon() { open_ = false; }

monitor_verdict atomicity_monitor::verify() const {
    monitor_verdict out;
    if (log_.overflowed()) {
        out.diagnosis = "monitor capacity exceeded; history incomplete";
        return out;
    }
    const parse_result parsed = parse_history(log_.snapshot(), initial_);
    if (!parsed.ok()) {
        out.diagnosis = "malformed history: " + parsed.error->message;
        return out;
    }
    out.operations = parsed.hist.ops.size();
    const fast_check_result res = check_fast(parsed.hist.ops, initial_);
    if (!res.ok()) {
        out.diagnosis = "checker defect: " + *res.defect;
        return out;
    }
    out.atomic = res.linearizable;
    if (!out.atomic) out.diagnosis = res.diagnosis;
    return out;
}

bool online_verifier::check_prefix(const std::vector<event>& events,
                                   std::size_t n,
                                   std::string* diagnosis) const {
    std::vector<event> prefix(events.begin(),
                              events.begin() + static_cast<std::ptrdiff_t>(n));
    const parse_result parsed = parse_history(prefix, initial_);
    if (!parsed.ok()) {
        *diagnosis = "malformed history: " + parsed.error->message;
        return true;
    }
    const fast_check_result res = check_fast(parsed.hist.ops, initial_);
    if (!res.ok()) {
        *diagnosis = "checker defect: " + *res.defect;
        return true;
    }
    if (!res.linearizable) {
        *diagnosis = res.diagnosis;
        return true;
    }
    return false;
}

bool online_verifier::poll() {
    if (violation_) return true;
    const std::size_t n = log_->size();
    if (n < checked_ + stride_) return false;
    const std::vector<event> events = log_->snapshot_prefix(n);
    std::string diagnosis;
    if (check_prefix(events, events.size(), &diagnosis)) {
        violation_ = true;
        detection_prefix_ = events.size();
        diagnosis_ = std::move(diagnosis);
    }
    checked_ = events.size();
    return violation_;
}

bool online_verifier::finish() {
    if (violation_) return true;
    const std::size_t n = log_->size();
    if (n == checked_) return violation_;
    const std::vector<event> events = log_->snapshot_prefix(n);
    std::string diagnosis;
    if (check_prefix(events, events.size(), &diagnosis)) {
        violation_ = true;
        detection_prefix_ = events.size();
        diagnosis_ = std::move(diagnosis);
    }
    checked_ = events.size();
    return violation_;
}

std::optional<op_id> online_verifier::locate_culprit() {
    if (!violation_ || detection_prefix_ == 0) return std::nullopt;
    const std::vector<event> events = log_->snapshot_prefix(detection_prefix_);
    // Invariant: check(hi) is violating, check(lo) is not. The predicate is
    // monotone (a violating prefix stays violating under extension), so the
    // search lands on the smallest violating prefix.
    std::size_t lo = 0;
    std::size_t hi = events.size();
    std::string hi_diagnosis = diagnosis_;
    while (hi - lo > 1) {
        const std::size_t mid = lo + (hi - lo) / 2;
        std::string diagnosis;
        if (check_prefix(events, mid, &diagnosis)) {
            hi = mid;
            hi_diagnosis = std::move(diagnosis);
        } else {
            lo = mid;
        }
    }
    detection_prefix_ = hi;
    diagnosis_ = std::move(hi_diagnosis);
    const event& closer = events[hi - 1];
    return op_id{closer.processor, closer.op};
}

}  // namespace bloom87
