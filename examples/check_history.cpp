// check_history: offline atomicity checker for recorded executions.
//
// Usage:
//   check_history record [seed]      # record a live execution, print gamma
//   check_history check  [file]      # check a gamma file (default: stdin)
//
// `record` runs a short concurrent execution of the two-writer register
// through the run harness (recording substrate, paced writers and a slow
// reader) and prints it in the serialized gamma format (pipe to a file to
// archive). `check` parses a gamma file and runs all applicable checkers:
// history well-formedness, the paper's constructive linearizer (with
// per-lemma diagnostics), and the polynomial register checker. Exit
// status: 0 atomic, 2 not atomic, 1 malformed input.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "harness/driver.hpp"
#include "histories/serialize.hpp"
#include "histories/stats.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/fast_register.hpp"

using namespace bloom87;

namespace {

int do_record(std::uint64_t seed) {
    harness::run_spec spec;
    spec.register_name = "bloom/recording";
    spec.load.writers = 2;
    spec.load.readers = 1;
    spec.load.ops_per_writer = 40;
    spec.load.ops_per_reader = 60;
    spec.load.writer_read_num = 0;  // writers only write here
    spec.seed = seed;
    spec.collect = harness::collect_mode::gamma;
    spec.pace.writer_pace_num = 1;
    spec.pace.writer_pace_den = 6;
    spec.pace.reader_pace_num = 1;
    spec.pace.reader_pace_den = 4;
    spec.pace.pause_yields = 128;
    const harness::run_result run = harness::run(spec);
    if (!run.ok) {
        std::fprintf(stderr, "run failed: %s\n", run.error.c_str());
        return 1;
    }
    write_gamma(std::cout, run.events, 0);
    return 0;
}

int do_check(std::istream& in) {
    const gamma_parse_result parsed_text = read_gamma(in);
    if (!parsed_text.ok()) {
        std::cerr << "parse error: " << *parsed_text.error << "\n";
        return 1;
    }
    std::printf("parsed %zu gamma events (initial value %lld)\n",
                parsed_text.gamma.size(),
                static_cast<long long>(parsed_text.initial));

    const parse_result hist =
        parse_history(parsed_text.gamma, parsed_text.initial);
    if (!hist.ok()) {
        std::cerr << "history malformed at position " << hist.error->position
                  << ": " << hist.error->message << "\n";
        return 1;
    }
    std::printf("well-formed: %zu simulated operations\n", hist.hist.ops.size());
    std::fputs(format_stats(compute_stats(hist.hist)).c_str(), stdout);

    bool any_real = false;
    for (const operation& op : hist.hist.ops) {
        any_real |= !op.real_accesses.empty();
    }

    int verdict = 0;
    if (any_real) {
        const bloom_result res = bloom_linearize(hist.hist);
        if (!res.ok()) {
            std::printf("constructive linearizer: gamma not protocol-shaped (%s);"
                        " falling back to the generic checker\n",
                        res.defect->c_str());
        } else if (res.atomic) {
            std::printf(
                "constructive linearizer: ATOMIC (%zu potent, %zu impotent "
                "writes; reads: %zu potent / %zu impotent / %zu initial)\n",
                res.potent_count, res.impotent_count, res.reads_of_potent,
                res.reads_of_impotent, res.reads_of_initial);
        } else {
            std::printf("constructive linearizer: NOT ATOMIC -- %s\n",
                        res.diagnosis.c_str());
            verdict = 2;
        }
    } else {
        std::printf("no real-register events: external-schedule checking only\n");
    }

    const fast_check_result fast =
        check_fast(hist.hist.ops, parsed_text.initial);
    if (!fast.ok()) {
        std::cerr << "fast checker defect: " << *fast.defect << "\n";
        return 1;
    }
    if (fast.linearizable) {
        std::printf("fast register checker : ATOMIC\n");
    } else {
        std::printf("fast register checker : NOT ATOMIC -- %s\n",
                    fast.diagnosis.c_str());
        verdict = 2;
    }
    return verdict;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string mode = argc > 1 ? argv[1] : "check";
    if (mode == "record") {
        const std::uint64_t seed =
            argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
        return do_record(seed);
    }
    if (mode == "check") {
        if (argc > 2) {
            std::ifstream f(argv[2]);
            if (!f) {
                std::cerr << "cannot open " << argv[2] << "\n";
                return 1;
            }
            return do_check(f);
        }
        return do_check(std::cin);
    }
    std::cerr << "usage: " << argv[0] << " record [seed] | check [file]\n";
    return 64;
}
