// The analysis subsystem: the FastTrack-style happens-before race detector,
// the memory-order contract lint, and their wiring into the harness checker
// pipeline, the instrumented registers, and the bounded model checker.
#include <gtest/gtest.h>

#include <string>

#include "analysis/contracts.hpp"
#include "analysis/mo_lint.hpp"
#include "analysis/race_detector.hpp"
#include "harness/checkers.hpp"
#include "harness/driver.hpp"
#include "harness/registry.hpp"
#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "registers/instrumented.hpp"
#include "registers/plain.hpp"

namespace bloom87 {
namespace {

using namespace bloom87::analysis;

// --------------------------------------------------------------- detector --

TEST(RaceDetector, ConflictingPlainAccessesRace) {
    race_detector det(2, 1);
    det.on_access(0, 0, true, sync_class::plain);
    det.on_access(1, 0, false, sync_class::plain);
    ASSERT_TRUE(det.first_race().has_value());
    const race_report& r = *det.first_race();
    EXPECT_EQ(r.location, 0u);
    EXPECT_EQ(r.first_thread, 0);
    EXPECT_EQ(r.second_thread, 1);
    EXPECT_TRUE(r.first_is_write);
    EXPECT_FALSE(r.second_is_write);
    EXPECT_EQ(r.first_pos, 1u);
    EXPECT_EQ(r.second_pos, 2u);
    EXPECT_EQ(det.races(), 1u);
    EXPECT_EQ(det.accesses(), 2u);
}

TEST(RaceDetector, ReleaseAcquireOrdersPlainAccesses) {
    // t0: plain write x; release y.   t1: acquire y; plain read+write x.
    // The sync pair transfers t0's clock, so nothing races.
    race_detector det(2, 2);
    det.on_access(0, 0, true, sync_class::plain);
    det.on_access(0, 1, true, sync_class::sync);
    det.on_access(1, 1, false, sync_class::sync);
    det.on_access(1, 0, false, sync_class::plain);
    det.on_access(1, 0, true, sync_class::plain);
    EXPECT_EQ(det.races(), 0u);
    EXPECT_FALSE(det.first_race().has_value());
}

TEST(RaceDetector, WithoutTheJoinTheSamePairRaces) {
    // Same accesses minus t1's acquire load: the write is unordered.
    race_detector det(2, 2);
    det.on_access(0, 0, true, sync_class::plain);
    det.on_access(0, 1, true, sync_class::sync);
    det.on_access(1, 0, false, sync_class::plain);
    EXPECT_EQ(det.races(), 1u);
}

TEST(RaceDetector, RelaxedAccessesNeitherRaceNorOrder) {
    race_detector det(2, 1);
    // Relaxed accesses conflict-free by definition...
    det.on_access(0, 0, true, sync_class::relaxed);
    det.on_access(1, 0, false, sync_class::relaxed);
    EXPECT_EQ(det.races(), 0u);
    // ...and create no happens-before edge either: a later plain pair on
    // the same location still races.
    det.on_access(0, 0, true, sync_class::plain);
    det.on_access(1, 0, false, sync_class::plain);
    EXPECT_EQ(det.races(), 1u);
}

TEST(RaceDetector, WriteAfterUnjoinedReadRaces) {
    // The seqlock-weak shape: a reader that never publishes its clock; the
    // writer's next plain write cannot be ordered after the read.
    race_detector det(2, 1);
    det.on_access(1, 0, false, sync_class::plain);
    det.on_access(0, 0, true, sync_class::plain);
    ASSERT_TRUE(det.first_race().has_value());
    EXPECT_FALSE(det.first_race()->first_is_write);
    EXPECT_TRUE(det.first_race()->second_is_write);
}

TEST(RaceDetector, FingerprintTracksClocksNotAccessCounts) {
    // Re-joining the same release state changes nothing the detector's
    // future behavior depends on, so the fingerprint must not change --
    // this is what lets model-check retry loops reconverge.
    race_detector a(2, 1);
    race_detector b(2, 1);
    a.on_access(0, 0, true, sync_class::sync);
    b.on_access(0, 0, true, sync_class::sync);
    a.on_access(1, 0, false, sync_class::sync);
    b.on_access(1, 0, false, sync_class::sync);
    b.on_access(1, 0, false, sync_class::sync);  // idempotent extra join
    std::vector<std::uint64_t> fa, fb;
    a.fingerprint(fa);
    b.fingerprint(fb);
    EXPECT_EQ(fa, fb);
    EXPECT_NE(a.accesses(), b.accesses());
}

// ------------------------------------------------------------------- lint --

TEST(MoLint, FlagsWeakenedOrder) {
    // packed_atomic.hpp declares word_ load/store at seq_cst only.
    const auto findings = lint_source(
        "packed_atomic.hpp",
        "v = word_.load(std::memory_order_relaxed);\n"
        "word_.store(x, std::memory_order_seq_cst);\n");
    ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
    EXPECT_EQ(findings[0].object, "word_");
    EXPECT_EQ(findings[0].op, "load");
    EXPECT_EQ(findings[0].order, "relaxed");
    EXPECT_EQ(findings[0].line, 1u);
    EXPECT_NE(findings[0].message.find("WEAKENED"), std::string::npos)
        << findings[0].message;
}

TEST(MoLint, FlagsUndeclaredSitesAndStaleRows) {
    // An atomic call on an undeclared receiver, and neither declared word_
    // site present: 1 undeclared + 2 stale-row findings.
    const auto findings = lint_source(
        "packed_atomic.hpp", "other_.load(std::memory_order_seq_cst);\n");
    ASSERT_EQ(findings.size(), 3u) << format_findings(findings);
    EXPECT_EQ(findings[0].object, "other_");
    std::size_t stale = 0;
    for (const lint_finding& f : findings) {
        if (f.message.find("stale contract row") != std::string::npos) ++stale;
    }
    EXPECT_EQ(stale, 2u) << format_findings(findings);
}

TEST(MoLint, ImplicitOrderIsSeqCst) {
    EXPECT_TRUE(lint_source("packed_atomic.hpp",
                            "v = word_.load();\nword_.store(x);\n")
                    .empty());
    // ...but an implicit order where only relaxed is declared is flagged:
    // instrumented.hpp declares reads_ fetch_add at relaxed only.
    const auto findings =
        lint_source("instrumented.hpp",
                    "reads_.fetch_add(1);\n"
                    "writes_.fetch_add(1, std::memory_order_relaxed);\n"
                    "reads_.load(std::memory_order_relaxed);\n"
                    "writes_.load(std::memory_order_relaxed);\n"
                    "reads_.store(0, std::memory_order_relaxed);\n"
                    "writes_.store(0, std::memory_order_relaxed);\n");
    ASSERT_EQ(findings.size(), 1u) << format_findings(findings);
    EXPECT_EQ(findings[0].order, "seq_cst");
}

TEST(MoLint, PlainHeaderDeclaresNoAtomicCallSites) {
    EXPECT_TRUE(lint_source("plain.hpp", "value_ = v;\nreturn value_;\n")
                    .empty());
    const auto findings = lint_source("plain.hpp", "value_.load();\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("undeclared"), std::string::npos)
        << findings[0].message;
}

TEST(Contracts, RegistryClassesAndFileContractsResolve) {
    EXPECT_EQ(registry_sync_class("bloom/packed"), sync_class::sync);
    EXPECT_EQ(registry_sync_class("bloom/plain"), sync_class::plain);
    EXPECT_FALSE(registry_sync_class("no/such-register").has_value());
    EXPECT_NE(find_file_contract("seqlock.hpp"), nullptr);
    EXPECT_EQ(find_file_contract("nonexistent.hpp"), nullptr);
}

// ------------------------------------------------- instrumented registers --

TEST(ObserverFeed, InstrumentedRegisterStreamsIntoDetector) {
    instrumented_register<plain_register<value_t>> reg(0);
    race_detector det(2, 1);
    detector_feed feed(&det, sync_class::plain);
    reg.set_observer(&feed, /*location=*/0);
    reg.write(7, access_context{.processor = 0});
    EXPECT_EQ(reg.read(access_context{.processor = 1}), 7);
    EXPECT_EQ(det.accesses(), 2u);
    EXPECT_EQ(det.races(), 1u);  // declared plain, nothing synchronizes
}

// ------------------------------------------------------- harness pipeline --

harness::run_spec gamma_spec(const std::string& name) {
    harness::run_spec spec;
    spec.register_name = name;
    spec.load.writers = 2;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 60;
    spec.load.ops_per_reader = 60;
    spec.seed = 11;
    spec.collect = harness::collect_mode::gamma;
    return spec;
}

TEST(HarnessRace, RecordingRegisterIsRaceFree) {
    const harness::run_result res = harness::run(gamma_spec("bloom/recording"));
    ASSERT_TRUE(res.ok) << res.error;
    const harness::pipeline_result checks = harness::run_checkers(
        res.events, 0, {harness::checker_kind::race}, "bloom/recording");
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    const harness::check_verdict& v = checks.verdicts.at(0);
    ASSERT_TRUE(v.ran) << v.skip_reason;
    EXPECT_TRUE(v.pass) << v.diagnosis;
    EXPECT_EQ(v.races, 0u);
    EXPECT_GT(v.accesses_checked, 0u);
    EXPECT_EQ(v.contract, "sync");
}

TEST(HarnessRace, DeclaredPlainRegisterIsFlagged) {
    const harness::run_result res = harness::run(gamma_spec("bloom/plain"));
    ASSERT_TRUE(res.ok) << res.error;
    const harness::pipeline_result checks = harness::run_checkers(
        res.events, 0, {harness::checker_kind::race}, "bloom/plain");
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    const harness::check_verdict& v = checks.verdicts.at(0);
    ASSERT_TRUE(v.ran) << v.skip_reason;
    EXPECT_FALSE(v.pass);
    EXPECT_GT(v.races, 0u);
    EXPECT_EQ(v.contract, "plain");
    EXPECT_NE(v.diagnosis.find("data race"), std::string::npos) << v.diagnosis;
}

TEST(HarnessRace, SkipReasonsSayWhy) {
    const harness::run_result res = harness::run(gamma_spec("bloom/recording"));
    ASSERT_TRUE(res.ok) << res.error;

    // No register name: cannot pick a contract.
    harness::pipeline_result checks = harness::run_checkers(
        res.events, 0, {harness::checker_kind::race});
    ASSERT_TRUE(checks.parsed);
    EXPECT_FALSE(checks.verdicts.at(0).ran);
    EXPECT_NE(checks.verdicts.at(0).skip_reason.find("contract"),
              std::string::npos);

    // A name with no declared contract row.
    checks = harness::run_checkers(res.events, 0,
                                   {harness::checker_kind::race}, "no/contract");
    EXPECT_FALSE(checks.verdicts.at(0).ran);
    EXPECT_NE(checks.verdicts.at(0).skip_reason.find("no/contract"),
              std::string::npos);

    // A history without real accesses (bloom/packed records no gamma log;
    // per-thread collection yields simulated events only).
    harness::run_spec spec = gamma_spec("bloom/packed");
    spec.collect = harness::collect_mode::per_thread;
    const harness::run_result packed = harness::run(spec);
    ASSERT_TRUE(packed.ok) << packed.error;
    checks = harness::run_checkers(packed.events, 0,
                                   {harness::checker_kind::race},
                                   "bloom/packed");
    EXPECT_FALSE(checks.verdicts.at(0).ran);
    EXPECT_NE(checks.verdicts.at(0).skip_reason.find("real-register"),
              std::string::npos);
}

TEST(HarnessRace, RegistryEntriesCarryTheirContracts) {
    const harness::registry_entry* plain = harness::find_register("bloom/plain");
    ASSERT_NE(plain, nullptr);
    EXPECT_EQ(plain->info.access_contract, "plain");
    EXPECT_FALSE(plain->info.expected_atomic);
    EXPECT_TRUE(plain->info.records_real_accesses);
    EXPECT_TRUE(plain->info.requires_log);
    const harness::registry_entry* packed =
        harness::find_register("bloom/packed");
    ASSERT_NE(packed, nullptr);
    EXPECT_EQ(packed->info.access_contract, "sync");
}

// ------------------------------------------------------------ model check --

mc::mc_register race_reg(mc::mc_value domain, sync_class cls) {
    mc::mc_register r;
    r.level = mc::reg_level::atomic;
    r.domain = domain;
    r.sync = cls;
    return r;
}

mc::explore_result explore_bloom_race(sync_class cls) {
    mc::sim_state s;
    s.registers = {race_reg(6, cls), race_reg(6, cls)};
    s.procs.push_back(mc::make_bloom_writer(0, {1}));
    s.procs.push_back(mc::make_bloom_writer(1, {2}));
    s.procs.push_back(mc::make_bloom_reader(2, 1));
    s.enable_race_detection();
    return mc::explore(s, {});
}

TEST(ModelCheckRace, SyncBloomCertifiedRaceFreeOnEverySchedule) {
    const mc::explore_result res = explore_bloom_race(sync_class::sync);
    EXPECT_TRUE(res.property_holds);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_FALSE(res.truncated);
}

TEST(ModelCheckRace, PlainBloomYieldsAConcreteRacySchedule) {
    const mc::explore_result res = explore_bloom_race(sync_class::plain);
    EXPECT_FALSE(res.property_holds);
    ASSERT_TRUE(res.first_violation.has_value());
    EXPECT_NE(res.first_violation->diagnosis.find("data race"),
              std::string::npos)
        << res.first_violation->diagnosis;
}

mc::explore_result explore_seqlock_race(sync_class payload_cls) {
    mc::sim_state s;
    s.registers = {race_reg(3, sync_class::sync), race_reg(2, payload_cls)};
    s.procs.push_back(mc::make_seqlock_writer(0, {1}));
    s.procs.push_back(mc::make_seqlock_reader(0, 1, 1));
    s.enable_race_detection();
    return mc::explore(s, {});
}

TEST(ModelCheckRace, SeqlockWithAtomicPayloadHolds) {
    const mc::explore_result res = explore_seqlock_race(sync_class::relaxed);
    EXPECT_TRUE(res.property_holds) << (res.first_violation.has_value()
                                            ? res.first_violation->diagnosis
                                            : "");
}

TEST(ModelCheckRace, SeqlockWithPlainPayloadRaces) {
    const mc::explore_result res = explore_seqlock_race(sync_class::plain);
    EXPECT_FALSE(res.property_holds);
    ASSERT_TRUE(res.first_violation.has_value());
    EXPECT_NE(res.first_violation->diagnosis.find("data race"),
              std::string::npos);
}

TEST(ModelCheckRace, FourslotPlainSlotsOrderedByControlBits) {
    // The strongest certification in the suite: the data slots are PLAIN,
    // yet Simpson's control-bit handshake orders every slot access -- on
    // every schedule within the bound.
    mc::sim_state s;
    for (int i = 0; i < 4; ++i) {
        s.registers.push_back(race_reg(2, sync_class::plain));
    }
    for (int i = 0; i < 4; ++i) {
        s.registers.push_back(race_reg(2, sync_class::sync));
    }
    s.procs.push_back(mc::make_fourslot_writer(0, {1}));
    s.procs.push_back(mc::make_fourslot_reader(0, 1, 1));
    s.enable_race_detection();
    const mc::explore_result res = mc::explore(s, {});
    EXPECT_TRUE(res.property_holds) << (res.first_violation.has_value()
                                            ? res.first_violation->diagnosis
                                            : "");
    EXPECT_FALSE(res.truncated);
}

TEST(ModelCheckRace, DetectorOffByDefaultKeepsPinnedStateCounts) {
    // Without enable_race_detection the detector must not perturb
    // fingerprints: the canonical 1-1-1 bloom exploration keeps the state
    // count the modelcheck tests pin.
    mc::sim_state s;
    s.registers = {race_reg(6, sync_class::sync), race_reg(6, sync_class::sync)};
    s.procs.push_back(mc::make_bloom_writer(0, {1}));
    s.procs.push_back(mc::make_bloom_writer(1, {2}));
    s.procs.push_back(mc::make_bloom_reader(2, 1));
    const mc::explore_result plainres = mc::explore(s, {});
    EXPECT_TRUE(plainres.property_holds);
}

}  // namespace
}  // namespace bloom87
