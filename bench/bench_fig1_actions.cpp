// [FIG1] Regenerates Figure 1 of the paper: the actions of a register
// automaton -- then demonstrates them live by running the I/O-automaton
// system and counting each action kind in the schedule.
//
//   bench_fig1_actions [--json BENCH_fig1.json]
#include <fstream>
#include <iostream>
#include <map>

#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "ioa/executor.hpp"
#include "ioa/protocol_automata.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace bloom87;
    using namespace bloom87::ioa;

    harness::flag_parser parser("bench_fig1_actions",
                                "actions of a register automaton, counted live");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    print_banner(std::cout, "FIG1", "Actions of a register automaton");

    table t({"Action", "Class", "Meaning"});
    t.row({"R_start", "input", "Command to read."});
    t.row({"R*(v)", "internal", "Event marking the instant a read of v occurs."});
    t.row({"R_finish(v)", "output",
           "Read acknowledgment; communicates the value v to the reader."});
    t.row({"W_start(v)", "input", "Command to write value v."});
    t.row({"W*(v)", "internal", "Event marking the instant a write of v occurs."});
    t.row({"W_finish", "output", "Acknowledgment of a write."});
    t.print(std::cout);

    // A live run of the Figure 2 system: count the actions by kind, split
    // into external ports vs real-register channels, and confirm the
    // bookkeeping identities (one star per matched request/ack pair).
    std::vector<env_port> ports;
    ports.push_back({"ext:wr0", std::vector<env_op>(8, env_op{true, 0})});
    ports.push_back({"ext:wr1", std::vector<env_op>(8, env_op{true, 0})});
    ports.push_back({"ext:rd1", std::vector<env_op>(12, env_op{false, 0})});
    ports.push_back({"ext:rd2", std::vector<env_op>(12, env_op{false, 0})});
    for (std::size_t i = 0; i < ports.size(); ++i) {
        for (std::size_t k = 0; k < ports[i].script.size(); ++k) {
            ports[i].script[k].value =
                static_cast<value_t>(100 * (i + 1) + k);
        }
    }
    simulated_register_system sys = make_simulated_register(0, 2, std::move(ports));
    const schedule sched = run_fair(*sys.system, /*seed=*/1987);

    std::map<std::string, std::map<act, std::size_t>> counts;
    for (const scheduled_action& sa : sched) {
        const bool ext = sa.act_taken.channel.starts_with("ext:");
        counts[ext ? "external port" : "register channel"][sa.act_taken.kind]++;
    }

    std::cout << "\nLive schedule of the simulated register "
              << "(8+8 writes, 12+12 reads):\n\n";
    table c({"Where", "R_start", "R*", "R_finish", "W_start", "W*", "W_finish"});
    for (const auto& [where, m] : counts) {
        auto g = [&](act a) {
            auto it = m.find(a);
            return std::to_string(it == m.end() ? 0 : it->second);
        };
        c.row({where, g(act::read_request), g(act::star_read), g(act::read_ack),
               g(act::write_request), g(act::star_write), g(act::write_ack)});
    }
    c.print(std::cout);

    std::cout << "\nIdentities: every request has exactly one star action and\n"
              << "one acknowledgment; a simulated read costs 3 real reads and\n"
              << "a simulated write costs 1 real read + 1 real write, so the\n"
              << "register channels carry 3*24+16 = 88 R_start and 16 W_start.\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fig1_actions");
        rep.add_table("action_kinds", t);
        rep.add_table("schedule_counts", c);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
