// bloom87: the two decision rules of Bloom's protocol, as pure functions.
//
// Paper, Section 5. Writer i reads the other register's tag t' and writes
// tag t = i (+) t' with its value, trying to make the mod-2 sum of the tag
// bits equal its own index. A reader reads both tags and re-reads register
// r = t0 (+) t1. These two lines are the entire algorithm; everything else
// in this repository is substrate, harness, or proof.
//
// Shared by the threaded implementation (two_writer.hpp), the model-checker
// step machines, and the I/O-automaton processes, so the protocol logic
// exists in exactly one place.
#pragma once

namespace bloom87 {

/// Tag bit writer `writer_index` must write after reading `other_tag` from
/// the other register: t := i (+) t'.
[[nodiscard]] constexpr bool writer_tag_choice(int writer_index,
                                               bool other_tag) noexcept {
    return (writer_index == 1) != other_tag;
}

/// Register a reader must re-read after seeing tags (t0, t1): r := t0 (+) t1.
[[nodiscard]] constexpr int reader_pick(bool t0, bool t1) noexcept {
    return (t0 != t1) ? 1 : 0;
}

/// A write by writer i is POTENT when the mod-2 sum of the tag bits
/// immediately after its real write equals i (paper, Section 7).
[[nodiscard]] constexpr bool write_is_potent(int writer_index, bool tag0,
                                             bool tag1) noexcept {
    return ((tag0 != tag1) ? 1 : 0) == writer_index;
}

// The initial state has both tag bits 0, so their sum is 0: an initial read
// with no writes picks register 0, whose initial value is v0. (This is why
// the paper notes Reg1's initial VALUE is irrelevant but its tag is not.)
static_assert(reader_pick(false, false) == 0);

// A solo write by writer i lands potent: it reads the other tag t' and
// writes i(+)t', making the sum i(+)t'(+)t' = i.
static_assert(write_is_potent(0, writer_tag_choice(0, false), false));
static_assert(write_is_potent(0, writer_tag_choice(0, true), true));
static_assert(write_is_potent(1, writer_tag_choice(1, false), false));
static_assert(write_is_potent(1, writer_tag_choice(1, true), true));

}  // namespace bloom87
