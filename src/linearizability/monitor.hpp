// bloom87: runtime atomicity monitoring for any register implementation.
//
// A thin, thread-safe facade over the event log + checkers: application
// code reports each operation's boundaries through a per-processor port,
// and verify() renders a verdict over everything recorded so far. Use it
// to put ANY register implementation (including ones outside this
// repository) under the same verification regime as the built-in ones:
//
//   atomicity_monitor mon(0);
//   auto port = mon.make_port(2);
//   port.begin_read();
//   value_t v = my_register.read();
//   port.end_read(v);
//   ...
//   auto verdict = mon.verify();   // after the run
//
// Monitoring only observes invocation/response order (it cannot see the
// register's internals), so it checks exactly what linearizability is
// defined over: the external history.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "histories/event_log.hpp"
#include "histories/events.hpp"

namespace bloom87 {

struct monitor_verdict {
    bool atomic{false};
    std::size_t operations{0};
    std::string diagnosis;  ///< empty when atomic; else what broke
};

class atomicity_monitor {
public:
    /// `capacity` bounds the number of recorded events (2 per operation).
    explicit atomicity_monitor(value_t initial, std::size_t capacity = 1 << 20);

    atomicity_monitor(const atomicity_monitor&) = delete;
    atomicity_monitor& operator=(const atomicity_monitor&) = delete;

    /// One port per processor; each port must be driven by one thread at a
    /// time (operations on a port are sequential, as the model requires).
    class port {
    public:
        void begin_write(value_t v);
        void end_write();
        void begin_read();
        void end_read(value_t result);

        /// Report a crashed operation: begin_* was called but the op never
        /// finished. (Optional -- an un-ended op is treated as pending
        /// anyway; this just lets the port be reused afterwards.)
        void abandon();

    private:
        friend class atomicity_monitor;
        port(atomicity_monitor& owner, processor_id processor)
            : owner_(&owner), processor_(processor) {}

        atomicity_monitor* owner_;
        processor_id processor_;
        op_index next_op_{0};
        bool open_{false};
        op_index open_op_{0};
        bool open_is_write_{false};
    };

    [[nodiscard]] port make_port(processor_id processor) {
        return port{*this, processor};
    }

    /// Checks everything recorded so far. Call after the threads driving
    /// ports are quiescent (typically joined); in-flight operations are
    /// treated as pending (crashed).
    [[nodiscard]] monitor_verdict verify() const;

    /// True if the monitor ran out of capacity (verify() also reports it).
    [[nodiscard]] bool overflowed() const noexcept { return log_.overflowed(); }

private:
    value_t initial_;
    event_log log_;
};

/// Concurrent atomicity detection over an EXTERNAL event log while the run
/// that fills it is still going. Poll from a watcher thread:
///
///   online_verifier ver(log, initial);
///   while (!run_done) { if (ver.poll()) break; sleep_briefly(); }
///   ver.finish();                       // catch late violations
///   if (ver.violation_found()) auto culprit = ver.locate_culprit();
///
/// Correctness: linearizability is prefix-closed, so a violating prefix can
/// never be "repaired" by later events -- polling a prefix of a live log
/// yields no false positives, and the first violating poll is a genuine
/// detection. A checker DEFECT on a parsed prefix (a read of a value no
/// write produced, a duplicate write) is reported as a violation too: under
/// substrate fault injection that is exactly how torn values surface.
class online_verifier {
public:
    /// Polls are skipped until at least `stride` events arrived since the
    /// last checked prefix (checking is O(prefix), so the stride bounds the
    /// total polling cost to O(n^2 / stride)).
    online_verifier(const event_log& log, value_t initial,
                    std::size_t stride = 64)
        : log_(&log), initial_(initial), stride_(stride == 0 ? 1 : stride) {}

    /// Checks the currently published prefix. Returns true once a violation
    /// has been found (sticky; later calls stop re-checking).
    bool poll();

    /// Final full-log check after the run; returns violation_found().
    bool finish();

    [[nodiscard]] bool violation_found() const noexcept { return violation_; }
    /// Events in the first prefix that exhibited the violation.
    [[nodiscard]] std::size_t detection_prefix() const noexcept {
        return detection_prefix_;
    }
    /// Prefix length of the last completed check (violating or not).
    [[nodiscard]] std::size_t checked_events() const noexcept {
        return checked_;
    }
    [[nodiscard]] const std::string& diagnosis() const noexcept {
        return diagnosis_;
    }

    /// Shrinks the detection to the MINIMAL violating prefix (binary search
    /// over the prefix length -- valid because the violation predicate is
    /// monotone under prefix extension) and returns the operation whose
    /// event closes that prefix: the op the violation first became visible
    /// on. Updates detection_prefix()/diagnosis() to the minimal prefix.
    /// nullopt when no violation was found.
    [[nodiscard]] std::optional<op_id> locate_culprit();

private:
    /// Checks events[0..n); fills diagnosis_ and returns true on violation.
    [[nodiscard]] bool check_prefix(const std::vector<event>& events,
                                    std::size_t n, std::string* diagnosis) const;

    const event_log* log_;
    value_t initial_;
    std::size_t stride_;
    std::size_t checked_{0};
    bool violation_{false};
    std::size_t detection_prefix_{0};
    std::string diagnosis_;
};

}  // namespace bloom87
