// bloom87: I/O automata and their composition (paper, Section 2).
//
// An automaton has Input, Output, and Internal sub-alphabets; it must be
// input-enabled (able to accept any input action in any state -- possibly by
// ignoring it). Automata compose by synchronizing one component's output
// with the equally-named inputs of others; internal actions never
// synchronize. A schedule is the sequence of actions taken; the external
// schedule omits internal actions.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "ioa/action.hpp"

namespace bloom87::ioa {

class automaton {
public:
    virtual ~automaton() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Signature predicates. The three sub-alphabets must be disjoint.
    [[nodiscard]] virtual bool in_input(const action& a) const = 0;
    [[nodiscard]] virtual bool in_output(const action& a) const = 0;
    [[nodiscard]] virtual bool in_internal(const action& a) const = 0;

    /// Locally controlled (output + internal) actions enabled now.
    [[nodiscard]] virtual std::vector<action> enabled() const = 0;

    /// Takes a step labeled `a`. For inputs this must succeed in every state
    /// (input-enabledness); for locally controlled actions `a` must be one
    /// of enabled().
    virtual void apply(const action& a) = 0;
};

/// A closed system of automata. Output actions synchronize with all
/// components that name them as inputs.
class composition {
public:
    /// Components keep their identity; the composition borrows them.
    explicit composition(std::vector<automaton*> parts);

    /// All locally-controlled actions currently enabled, with the index of
    /// the controlling component.
    [[nodiscard]] std::vector<std::pair<std::size_t, action>> enabled() const;

    /// Performs `a` (controlled by component `owner`): the owner steps, and
    /// every component with `a` in its input alphabet steps too.
    void apply(std::size_t owner, const action& a);

    [[nodiscard]] const std::vector<automaton*>& parts() const noexcept {
        return parts_;
    }

    /// Channel matrix: for each component, which actions of the others it
    /// consumes. Used by the Figure 2 architecture report.
    [[nodiscard]] std::string describe() const;

private:
    std::vector<automaton*> parts_;
};

}  // namespace bloom87::ioa
