// bloom87: 1-writer n-reader atomic register from 1-writer 1-READER atomic
// registers.
//
// The paper's footnote 3 says its real registers "may be simulated using
// more primitive regular and safe one-reader, one-writer registers, using
// protocols from Lamport and others." This file supplies the missing rung
// of that ladder: the classic multi-reader construction (in the style of
// Attiya & Welch, ch. 10; the bounded originals are Israeli-Li / Singh-
// Anderson-Gouda; [BP] in the paper's references treats the non-atomic
// base case). Combined with Simpson's four-slot register (fourslot.hpp)
// the repository builds Bloom's substrate from nothing stronger than safe
// slots and SWSR control bits.
//
// Construction, for n readers:
//   * Value[i]     : SWSR register, writer -> reader i         (n registers)
//   * Report[j][i] : SWSR register, reader j -> reader i   (n*(n-1) registers)
//
//   Writer(v):  seq++; for every i: Value[i] := (v, seq)
//   Reader i:   collect (v,s) from Value[i] and from Report[j][i] (j != i);
//               pick the pair with the largest s;
//               for every j != i: Report[i][j] := that pair;
//               return its v.
//
// The report round is what prevents new-old inversions between readers: a
// reader hands the freshest value it returned to every other reader before
// responding, so no later-starting read can return something older.
// Sequence numbers are unbounded (64-bit -- practically unbounded); the
// bounded-timestamp variants exist but are far subtler.
//
// Costs: write = n SWSR writes; read = n SWSR reads + (n-1) SWSR writes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "registers/concepts.hpp"
#include "registers/fourslot.hpp"
#include "registers/tagged.hpp"

namespace bloom87 {

/// SWMR atomic register over tagged<T> built from SWSR atomic registers
/// produced by the SwsrTmpl template (default: Simpson's four-slot).
/// Fixed reader count; each reader thread uses its own reader_port.
template <typename T, template <typename> class SwsrTmpl = four_slot_register>
class swmr_from_swsr {
    /// What actually travels through the SWSR registers.
    struct stamped {
        tagged<T> payload{};
        std::uint64_t seq{0};  // 0 = the initial value
    };
    // The SWSR register types in this repository transport tagged<V>; the
    // outer tag bit is unused here (the construction has its own seq).
    using cell = SwsrTmpl<stamped>;

public:
    class reader_port;

    /// `readers` is the fixed number of read ports (n). The register
    /// consumes n + n*(n-1) SWSR registers.
    swmr_from_swsr(tagged<T> initial, std::size_t readers)
        : readers_(readers) {
        const tagged<stamped> init{stamped{initial, 0}, false};
        value_.reserve(readers_);
        for (std::size_t i = 0; i < readers_; ++i) {
            value_.push_back(std::make_unique<cell>(init));
        }
        report_.reserve(readers_ * readers_);
        for (std::size_t i = 0; i < readers_ * readers_; ++i) {
            report_.push_back(std::make_unique<cell>(init));
        }
    }

    /// Wait-free write; owning writer only: n SWSR writes.
    void write(tagged<T> v, access_context = {}) {
        const tagged<stamped> s{stamped{v, ++seq_}, false};
        for (auto& c : value_) c->write(s);
    }

    /// Creates the read port for reader index i in [0, readers).
    [[nodiscard]] reader_port make_reader_port(std::size_t i) {
        return reader_port{*this, i};
    }

    /// One reader's port. Wait-free read: n SWSR reads + (n-1) SWSR writes.
    class reader_port {
    public:
        [[nodiscard]] tagged<T> read(access_context = {}) {
            // Freshest of: the writer's value for me, and what every other
            // reader last reported to me.
            stamped best = owner_->value_[index_]->read().value;
            for (std::size_t j = 0; j < owner_->readers_; ++j) {
                if (j == index_) continue;
                const stamped s = owner_->report_cell(j, index_).read().value;
                if (s.seq > best.seq) best = s;
            }
            // Tell everyone else before returning (the linearization glue).
            for (std::size_t j = 0; j < owner_->readers_; ++j) {
                if (j == index_) continue;
                owner_->report_cell(index_, j).write(tagged<stamped>{best, false});
            }
            return best.payload;
        }

        [[nodiscard]] std::size_t index() const noexcept { return index_; }

    private:
        friend class swmr_from_swsr;
        reader_port(swmr_from_swsr& owner, std::size_t index)
            : owner_(&owner), index_(index) {}

        swmr_from_swsr* owner_;
        std::size_t index_;
    };

    [[nodiscard]] std::size_t readers() const noexcept { return readers_; }

    /// Number of SWSR registers consumed (for reports/benches).
    [[nodiscard]] std::size_t swsr_register_count() const noexcept {
        return value_.size() + readers_ * (readers_ - 1);
    }

private:
    [[nodiscard]] cell& report_cell(std::size_t from, std::size_t to) {
        return *report_[from * readers_ + to];
    }

    std::size_t readers_;
    std::uint64_t seq_{0};
    // Cells are held by unique_ptr because the SWSR registers contain
    // atomics (immovable); the indirection is irrelevant next to the
    // register's own cost.
    std::vector<std::unique_ptr<cell>> value_;
    std::vector<std::unique_ptr<cell>> report_;
};

/// Adapts swmr_from_swsr to the two_writer_register substrate interface.
///
/// Bloom's construction gives each processor its own channel to each real
/// register; swmr_from_swsr likewise needs a distinct port per reading
/// processor. This adapter maps the repository's processor-id convention
/// onto ports: the OTHER writer gets port 0, simulated reader k (processor
/// 2+k) gets port k+1. Pass it to two_writer_register through the factory
/// constructor:
///
///   using stack = two_writer_register<int, ported_substrate<int>>;
///   stack reg(0, [n](tagged<int> init, int reg_index) {
///       return ported_substrate<int>(init, n, reg_index);
///   });
template <typename T, template <typename> class SwsrTmpl = four_slot_register>
class ported_substrate {
public:
    /// `sim_readers` = number of simulated-register readers n; the real
    /// register gets n+2 read ports -- the other writer (the protocol's
    /// (n+1)-th reader), the OWN writer (whose simulated reads also touch
    /// its own register), and the n readers. `reg_index` is which real
    /// register this is (0 or 1), identifying the writers' processor ids.
    ported_substrate(tagged<T> initial, std::size_t sim_readers, int reg_index)
        : inner_(initial, sim_readers + 2), reg_index_(reg_index) {
        ports_.reserve(sim_readers + 2);
        for (std::size_t i = 0; i < sim_readers + 2; ++i) {
            ports_.push_back(inner_.make_reader_port(i));
        }
    }

    [[nodiscard]] tagged<T> read(access_context ctx) {
        return ports_[port_of(ctx.processor)].read();
    }

    void write(tagged<T> v, access_context = {}) { inner_.write(v); }

    [[nodiscard]] std::size_t swsr_register_count() const noexcept {
        return inner_.swsr_register_count();
    }

private:
    [[nodiscard]] std::size_t port_of(processor_id proc) const {
        if (proc == static_cast<processor_id>(1 - reg_index_)) return 0;
        if (proc == static_cast<processor_id>(reg_index_)) return 1;
        return 2 + static_cast<std::size_t>(proc - 2);
    }

    swmr_from_swsr<T, SwsrTmpl> inner_;
    int reg_index_;
    std::vector<typename swmr_from_swsr<T, SwsrTmpl>::reader_port> ports_;
};

}  // namespace bloom87
