// sensor_pair: redundant dual-writer telemetry with crash tolerance.
//
// Two redundant sensors (primary + backup) publish fused readings into one
// two-writer atomic register; consumer threads read it wait-free. Midway,
// the primary sensor CRASHES in the middle of a write -- the paper's
// Section 5 guarantee ("if the writer crashes at some point in the
// protocol, the write either occurs or does not occur; it does not leave
// the register in an inconsistent state") keeps every consumer running and
// every observed reading internally consistent.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "registers/seqlock.hpp"
#include "util/sync.hpp"

namespace {

struct reading {
    double celsius{20.0};
    double checksum{-20.0};  // writer maintains checksum == -celsius
    std::int64_t sequence{0};
    std::int32_t source{-1};  // 0 = primary, 1 = backup
};

reading make_reading(int source, std::int64_t seq) {
    reading r;
    r.celsius = 20.0 + static_cast<double>((seq * 7) % 100) / 10.0;
    r.checksum = -r.celsius;
    r.sequence = seq;
    r.source = source;
    return r;
}

}  // namespace

int main() {
    using sensor_register =
        bloom87::two_writer_register<reading, bloom87::seqlock_register<reading>>;
    sensor_register fused(reading{});

    bloom87::start_gate gate;
    bloom87::stop_flag stop;
    std::atomic<bool> primary_crashed{false};

    std::thread primary([&] {
        gate.wait();
        for (std::int64_t seq = 1; seq <= 400; ++seq) {
            if (seq == 400) {
                // The primary dies in the middle of its write protocol,
                // after its real read but before its real write.
                fused.writer0().write_crashed(make_reading(0, seq),
                                              bloom87::crash_point::after_read);
                primary_crashed.store(true, std::memory_order_release);
                std::printf("[primary] CRASHED mid-write at seq %lld\n",
                            static_cast<long long>(seq));
                return;
            }
            fused.writer0().write(make_reading(0, seq));
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });

    std::thread backup([&] {
        gate.wait();
        std::int64_t seq = 1;
        while (!stop.stop_requested()) {
            fused.writer1().write(make_reading(1, seq++));
            std::this_thread::sleep_for(std::chrono::microseconds(80));
        }
        std::printf("[backup ] published %lld readings, incl. after the crash\n",
                    static_cast<long long>(seq - 1));
    });

    std::vector<std::thread> consumers;
    std::atomic<long> inconsistent{0};
    std::atomic<long> reads_after_crash{0};
    for (int c = 0; c < 4; ++c) {
        consumers.emplace_back([&, c] {
            auto port = fused.make_reader(static_cast<bloom87::processor_id>(2 + c));
            gate.wait();
            long count = 0;
            while (!stop.stop_requested()) {
                const reading r = port.read();
                // Atomicity means a reading is never torn: checksum always
                // matches, even across the crash.
                if (r.celsius + r.checksum != 0.0) inconsistent.fetch_add(1);
                if (primary_crashed.load(std::memory_order_acquire)) {
                    reads_after_crash.fetch_add(1);
                }
                ++count;
            }
            std::printf("[cons %d ] %ld wait-free reads, 0 blocked\n", c, count);
        });
    }

    gate.open();
    primary.join();
    // Let the system run on the backup alone for a while after the crash.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.request_stop();
    backup.join();
    for (auto& t : consumers) t.join();

    auto port = fused.make_reader(9);
    const reading last = port.read();
    std::printf(
        "final reading: %.1f C (seq %lld from %s sensor)\n", last.celsius,
        static_cast<long long>(last.sequence),
        last.source == 0 ? "primary" : "backup");
    std::printf("inconsistent (torn) readings observed: %ld\n",
                inconsistent.load());
    std::printf("reads served after the primary crashed: %ld\n",
                reads_after_crash.load());
    return inconsistent.load() == 0 ? 0 : 1;
}
