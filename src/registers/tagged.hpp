// bloom87: the tagged value stored in each real register.
//
// Paper, Section 5: "we use registers Reg0 and Reg1 with enough space to
// hold one value in Val and a single tag bit." This is that pair. The whole
// protocol correctness rests on the (value, tag) pair being written by ONE
// atomic real write, so substrates must store a tagged<T> indivisibly.
#pragma once

#include <compare>

namespace bloom87 {

template <typename T>
struct tagged {
    T value{};
    bool tag{false};

    friend constexpr bool operator==(const tagged&, const tagged&) = default;
};

}  // namespace bloom87
