#include "modelcheck/processes.hpp"

#include <array>
#include <cassert>

#include "core/protocol.hpp"

namespace bloom87::mc {
namespace {

/// Immutable operation script, refcounted across process clones. The
/// explorer clones every process at every branch point; the script never
/// changes after construction, so sharing it turns a heap allocation plus
/// copy per clone into one atomic refcount bump (safe across the parallel
/// explorer's workers -- the payload is read-only).
class shared_script {
public:
    shared_script(std::vector<mc_value> values)
        : values_(std::make_shared<const std::vector<mc_value>>(
              std::move(values))) {}

    [[nodiscard]] std::size_t size() const noexcept { return values_->size(); }
    [[nodiscard]] mc_value operator[](std::size_t i) const {
        return (*values_)[i];
    }

private:
    std::shared_ptr<const std::vector<mc_value>> values_;
};

/// Shared boilerplate: a process driven by a script of operations.
class script_process : public process {
public:
    script_process(processor_id proc, std::vector<mc_value> script)
        : proc_(proc), script_(std::move(script)) {}

protected:
    void base_fingerprint(std::vector<std::uint64_t>& out,
                          std::uint64_t type_id) const {
        out.push_back(type_id);
        out.push_back((static_cast<std::uint64_t>(
                           static_cast<std::uint16_t>(proc_))
                       << 32) |
                      (static_cast<std::uint64_t>(pos_) << 8) |
                      static_cast<std::uint64_t>(static_cast<std::uint8_t>(pc_)));
        for (mc_value l : locals_) {
            out.push_back(static_cast<std::uint64_t>(static_cast<std::uint16_t>(l)));
        }
    }

    void advance_script() {
        ++opno_;
        ++pos_;
        pc_ = 0;
    }

    processor_id proc_;
    shared_script script_;
    std::size_t pos_{0};
    int pc_{0};
    op_index opno_{0};
    std::size_t open_op_{0};
    std::array<mc_value, 4> locals_{};
};

// ---------------------------------------------------------------------------
// Bloom two-writer protocol over atomic base registers 0 and 1.
// ---------------------------------------------------------------------------

class bloom_writer_proc final : public script_process {
public:
    bloom_writer_proc(int writer_index, std::vector<mc_value> values,
                      bool wrong_tag_rule = false)
        : script_process(static_cast<processor_id>(writer_index),
                         std::move(values)),
          writer_(writer_index), wrong_tag_rule_(wrong_tag_rule) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<bloom_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1: {
                const mc_value other =
                    s.read_atomic(static_cast<std::size_t>(1 - writer_));
                // The deliberately broken variant applies the OTHER
                // writer's tag rule (used to prove the explorer can catch
                // tag-protocol bugs).
                const bool t = writer_tag_choice(
                    wrong_tag_rule_ ? 1 - writer_ : writer_, decode_tag(other));
                locals_[0] = encode_tagged(script_[pos_], t);
                pc_ = 2;
                break;
            }
            case 2:
                s.write_atomic(static_cast<std::size_t>(writer_), locals_[0]);
                pc_ = 3;
                break;
            case 3:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, wrong_tag_rule_ ? 0x1011 : 0x1001);
    }

private:
    int writer_;
    bool wrong_tag_rule_;
};

/// Bloom writer that crashes mid-script (see header).
class bloom_writer_crashing_proc final : public script_process {
public:
    bloom_writer_crashing_proc(int writer_index, std::vector<mc_value> values,
                               std::size_t crash_op, int crash_stage)
        : script_process(static_cast<processor_id>(writer_index),
                         std::move(values)),
          writer_(writer_index), crash_op_(crash_op), crash_stage_(crash_stage) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<bloom_writer_crashing_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return crashed_ || pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        const bool crash_here = pos_ == crash_op_;
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                if (crash_here && crash_stage_ == 0) {
                    crashed_ = true;
                    return;
                }
                pc_ = 1;
                break;
            case 1: {
                const mc_value other =
                    s.read_atomic(static_cast<std::size_t>(1 - writer_));
                const bool t = writer_tag_choice(writer_, decode_tag(other));
                locals_[0] = encode_tagged(script_[pos_], t);
                if (crash_here && crash_stage_ == 1) {
                    crashed_ = true;
                    return;
                }
                pc_ = 2;
                break;
            }
            case 2:
                s.write_atomic(static_cast<std::size_t>(writer_), locals_[0]);
                if (crash_here && crash_stage_ == 2) {
                    crashed_ = true;
                    return;
                }
                pc_ = 3;
                break;
            case 3:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x101c);
        out.push_back((crash_op_ << 8) |
                      static_cast<std::uint64_t>(crash_stage_ * 2 +
                                                 (crashed_ ? 1 : 0)));
    }

private:
    int writer_;
    std::size_t crash_op_;
    int crash_stage_;
    bool crashed_{false};
};

// Shared by Bloom and tournament configurations (identical read protocol).
// Variants explore the protocol-design space: `reversed` samples the tags
// in the opposite order (the paper's footnote 5 says the proof tolerates
// reordering/parallelizing the first two reads); `no_reread` skips the
// third real read and returns the value captured with the chosen tag.
class tag_reader_proc final : public script_process {
public:
    enum class variant : std::uint8_t { standard, reversed, no_reread };

    tag_reader_proc(processor_id proc, int num_reads,
                    variant v = variant::standard)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          variant_(v) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<tag_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        const bool rev = variant_ == variant::reversed;
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                locals_[rev ? 1 : 0] = s.read_atomic(rev ? 1 : 0);
                pc_ = 2;
                break;
            case 2:
                locals_[rev ? 0 : 1] = s.read_atomic(rev ? 0 : 1);
                pc_ = 3;
                break;
            case 3: {
                const int pick =
                    reader_pick(decode_tag(locals_[0]), decode_tag(locals_[1]));
                if (variant_ == variant::no_reread) {
                    locals_[2] = locals_[pick];
                    pc_ = 4;
                    // Fall through to respond on the next step: the skipped
                    // read keeps the step count uniform without touching
                    // shared state.
                } else {
                    locals_[2] = s.read_atomic(static_cast<std::size_t>(pick));
                    pc_ = 4;
                }
                break;
            }
            case 4:
                s.end_op(open_op_,
                         static_cast<value_t>(decode_value(locals_[2])));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1002 + (static_cast<std::uint64_t>(variant_) << 8));
    }

private:
    variant variant_{variant::standard};
};

// ---------------------------------------------------------------------------
// Four-writer tournament over two atomic MRMW base registers.
// ---------------------------------------------------------------------------

class tournament_writer_proc final : public script_process {
public:
    tournament_writer_proc(int writer_id, std::vector<mc_value> values)
        : script_process(static_cast<processor_id>(writer_id),
                         std::move(values)),
          pair_(writer_id >> 1) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<tournament_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1: {
                const mc_value other =
                    s.read_atomic(static_cast<std::size_t>(1 - pair_));
                const bool t = writer_tag_choice(pair_, decode_tag(other));
                locals_[0] = encode_tagged(script_[pos_], t);
                pc_ = 2;
                break;
            }
            case 2:
                s.write_atomic(static_cast<std::size_t>(pair_), locals_[0]);
                pc_ = 3;
                break;
            case 3:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1003);
    }

private:
    int pair_;
};

// ---------------------------------------------------------------------------
// Simpson's four-slot register over safe/regular/atomic base registers.
//
// Both processes are written against an abstract access list and adapt to
// the level of each base register: an ATOMIC access is one indivisible
// step; SAFE/REGULAR accesses split into begin and end steps (the end step
// of a read is where the explorer branches over candidate values).
// ---------------------------------------------------------------------------

/// Helper mixin: executes one abstract access, splitting it when the target
/// register is weak. `mid` (stored by the caller) tracks a begun access.
struct level_aware_access {
    /// Performs (one step of) a read of `reg` for processor `proc`.
    /// Returns true when the read completed; `out` then holds the value.
    static bool read_step(sim_state& s, std::size_t reg, std::int16_t proc,
                          int choice, bool& mid, mc_value& out) {
        if (s.registers[reg].level == reg_level::atomic) {
            out = s.read_atomic(reg);
            return true;
        }
        if (!mid) {
            s.begin_read(reg, proc);
            mid = true;
            return false;
        }
        out = s.end_read(reg, proc, choice);
        mid = false;
        return true;
    }

    /// Performs (one step of) a write. Returns true when it completed.
    static bool write_step(sim_state& s, std::size_t reg, mc_value v,
                           bool& mid) {
        if (s.registers[reg].level == reg_level::atomic) {
            s.write_atomic(reg, v);
            return true;
        }
        if (!mid) {
            s.begin_write(reg, v);
            mid = true;
            return false;
        }
        s.end_write(reg);
        mid = false;
        return true;
    }

    /// Fanout of the NEXT step of a read of `reg`.
    static int read_fanout(const sim_state& s, std::size_t reg,
                           std::int16_t proc, bool mid) {
        if (!mid) return 1;  // begin steps and atomic reads are deterministic
        return s.read_candidates(reg, proc);
    }
};

class fourslot_writer_proc final : public script_process {
public:
    fourslot_writer_proc(std::size_t base, std::vector<mc_value> values)
        : script_process(/*proc=*/0, std::move(values)), base_(base) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<fourslot_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        if (pc_ == 1 || pc_ == 2) {
            return level_aware_access::read_fanout(s, read_target(), proc_, mid_);
        }
        return 1;
    }

    // Abstract steps: 0 inv; 1 read reading->wp; 2 read slot[wp]->wi;
    // 3 write data[wp][wi]; 4 write slot[wp]; 5 write latest; 6 resp.
    void step(sim_state& s, int choice) override {
        mc_value v{};
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1:
                if (level_aware_access::read_step(s, base_ + 7, proc_, choice,
                                                  mid_, v)) {
                    locals_[0] = static_cast<mc_value>(1 - v);  // wp
                    pc_ = 2;
                }
                break;
            case 2:
                if (level_aware_access::read_step(s, read_target(), proc_,
                                                  choice, mid_, v)) {
                    locals_[1] = static_cast<mc_value>(1 - v);  // wi
                    pc_ = 3;
                }
                break;
            case 3:
                if (level_aware_access::write_step(s, data_reg(), script_[pos_],
                                                   mid_)) {
                    pc_ = 4;
                }
                break;
            case 4:
                if (level_aware_access::write_step(
                        s, base_ + 4 + static_cast<std::size_t>(locals_[0]),
                        locals_[1], mid_)) {
                    pc_ = 5;
                }
                break;
            case 5:
                if (level_aware_access::write_step(s, base_ + 6, locals_[0],
                                                   mid_)) {
                    pc_ = 6;
                }
                break;
            case 6:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1004);
        out.push_back(base_ * 2 + (mid_ ? 1 : 0));
    }

private:
    [[nodiscard]] std::size_t read_target() const {
        return pc_ == 1 ? base_ + 7
                        : base_ + 4 + static_cast<std::size_t>(locals_[0]);
    }
    [[nodiscard]] std::size_t data_reg() const {
        return base_ + static_cast<std::size_t>(locals_[0]) * 2 +
               static_cast<std::size_t>(locals_[1]);
    }

    std::size_t base_;
    bool mid_{false};
};

class fourslot_reader_proc final : public script_process {
public:
    fourslot_reader_proc(std::size_t base, processor_id proc, int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          base_(base) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<fourslot_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        if (pc_ == 1 || pc_ == 3 || pc_ == 4) {
            return level_aware_access::read_fanout(s, read_target(), proc_, mid_);
        }
        return 1;
    }

    // Abstract steps: 0 inv; 1 read latest->rp; 2 write reading=rp;
    // 3 read slot[rp]->ri; 4 read data[rp][ri]->val; 5 resp.
    void step(sim_state& s, int choice) override {
        mc_value v{};
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                if (level_aware_access::read_step(s, base_ + 6, proc_, choice,
                                                  mid_, v)) {
                    locals_[0] = v;  // rp
                    pc_ = 2;
                }
                break;
            case 2:
                if (level_aware_access::write_step(s, base_ + 7, locals_[0],
                                                   mid_)) {
                    pc_ = 3;
                }
                break;
            case 3:
                if (level_aware_access::read_step(s, read_target(), proc_,
                                                  choice, mid_, v)) {
                    locals_[1] = v;  // ri
                    pc_ = 4;
                }
                break;
            case 4:
                if (level_aware_access::read_step(s, read_target(), proc_,
                                                  choice, mid_, v)) {
                    locals_[2] = v;  // the value
                    pc_ = 5;
                }
                break;
            case 5:
                s.end_op(open_op_, static_cast<value_t>(locals_[2]));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1005);
        out.push_back(base_ * 2 + (mid_ ? 1 : 0));
    }

private:
    [[nodiscard]] std::size_t read_target() const {
        if (pc_ == 1) return base_ + 6;
        if (pc_ == 3) return base_ + 4 + static_cast<std::size_t>(locals_[0]);
        return base_ + static_cast<std::size_t>(locals_[0]) * 2 +
               static_cast<std::size_t>(locals_[1]);
    }

    std::size_t base_;
    bool mid_{false};
};

// ---------------------------------------------------------------------------
// Seqlock SWMR register over two atomic cells (race-certification model).
// Register base+0 = sequence number, base+1 = the payload word; both are
// single-step ATOMIC -- the race modes distinguish them by sync class
// (seq sync, payload relaxed or plain), not by consistency level.
// ---------------------------------------------------------------------------

class seqlock_writer_proc final : public script_process {
public:
    seqlock_writer_proc(std::size_t base, std::vector<mc_value> values)
        : script_process(/*proc=*/0, std::move(values)), base_(base) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<seqlock_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // Abstract steps: 0 inv; 1 read seq -> s; 2 write seq = s+1 (odd);
    // 3 write payload; 4 write seq = s+2 (even); 5 resp.
    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1:
                locals_[0] = s.read_atomic(base_);
                pc_ = 2;
                break;
            case 2:
                s.write_atomic(base_, static_cast<mc_value>(locals_[0] + 1));
                pc_ = 3;
                break;
            case 3:
                s.write_atomic(base_ + 1, script_[pos_]);
                pc_ = 4;
                break;
            case 4:
                s.write_atomic(base_, static_cast<mc_value>(locals_[0] + 2));
                pc_ = 5;
                break;
            case 5:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x101d);
        out.push_back(base_);
    }

private:
    std::size_t base_;
};

class seqlock_reader_proc final : public script_process {
public:
    seqlock_reader_proc(std::size_t base, processor_id proc, int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          base_(base) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<seqlock_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // Abstract steps: 0 inv; 1 read seq -> before (stays at 1 while odd);
    // 2 read payload -> v; 3 re-read seq (back to 1 on a change); 4 resp.
    // Retry states reconverge structurally, so the explorer's visited set
    // bounds the loop; retries never tick the history clock.
    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                locals_[0] = s.read_atomic(base_);
                if ((locals_[0] & 1) == 0) pc_ = 2;
                break;
            case 2:
                locals_[1] = s.read_atomic(base_ + 1);
                pc_ = 3;
                break;
            case 3:
                pc_ = s.read_atomic(base_) == locals_[0] ? 4 : 1;
                break;
            case 4:
                s.end_op(open_op_, static_cast<value_t>(locals_[1]));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x101e);
        out.push_back(base_);
    }

private:
    std::size_t base_;
};

// ---------------------------------------------------------------------------
// Lamport's unary k-valued regular register from regular bits.
// ---------------------------------------------------------------------------

class unary_writer_proc final : public script_process {
public:
    unary_writer_proc(std::size_t base, int k, std::vector<mc_value> values)
        : script_process(/*proc=*/0, std::move(values)), base_(base), k_(k) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<unary_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        const mc_value v = pos_ < script_.size() ? script_[pos_] : 0;
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(v));
                pc_ = 1;
                break;
            case 1:  // set bit v
                s.begin_write(base_ + static_cast<std::size_t>(v), 1);
                pc_ = 2;
                break;
            case 2:
                s.end_write(base_ + static_cast<std::size_t>(v));
                locals_[0] = static_cast<mc_value>(v - 1);  // next bit to clear
                pc_ = locals_[0] < 0 ? 5 : 3;
                break;
            case 3:  // clear bit j
                s.begin_write(base_ + static_cast<std::size_t>(locals_[0]), 0);
                pc_ = 4;
                break;
            case 4:
                s.end_write(base_ + static_cast<std::size_t>(locals_[0]));
                --locals_[0];
                pc_ = locals_[0] < 0 ? 5 : 3;
                break;
            case 5:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1006);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int k_;
};

class unary_reader_proc final : public script_process {
public:
    unary_reader_proc(std::size_t base, int k, processor_id proc, int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          base_(base), k_(k) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<unary_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        return pc_ == 2
                   ? s.read_candidates(base_ + static_cast<std::size_t>(locals_[0]),
                                       proc_)
                   : 1;
    }

    void step(sim_state& s, int choice) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                locals_[0] = 0;  // scan index
                pc_ = 1;
                break;
            case 1:
                s.begin_read(base_ + static_cast<std::size_t>(locals_[0]), proc_);
                pc_ = 2;
                break;
            case 2: {
                const mc_value bit = s.end_read(
                    base_ + static_cast<std::size_t>(locals_[0]), proc_, choice);
                if (bit == 1) {
                    locals_[1] = locals_[0];  // found the value
                    pc_ = 3;
                } else if (locals_[0] + 1 >= k_) {
                    locals_[1] = -1;  // scan fell off the end: protocol failure
                    pc_ = 3;
                } else {
                    ++locals_[0];
                    pc_ = 1;
                }
                break;
            }
            case 3:
                s.end_op(open_op_, static_cast<value_t>(locals_[1]));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1007);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int k_;
};

// ---------------------------------------------------------------------------
// Split-write Bloom mutant: value and tag in separate registers.
// ---------------------------------------------------------------------------

class split_bloom_writer_proc final : public script_process {
public:
    split_bloom_writer_proc(int writer_index, std::vector<mc_value> values)
        : script_process(static_cast<processor_id>(writer_index),
                         std::move(values)),
          writer_(writer_index) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<split_bloom_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // Layout: value_i at 2*i, tag_i at 2*i+1.
    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1: {  // read the other tag
                const mc_value t =
                    s.read_atomic(static_cast<std::size_t>(2 * (1 - writer_) + 1));
                locals_[0] = writer_tag_choice(writer_, t != 0) ? 1 : 0;
                pc_ = 2;
                break;
            }
            case 2:  // write the value cell (first half of the split write)
                s.write_atomic(static_cast<std::size_t>(2 * writer_),
                               script_[pos_]);
                pc_ = 3;
                break;
            case 3:  // write the tag cell (second half)
                s.write_atomic(static_cast<std::size_t>(2 * writer_ + 1),
                               locals_[0]);
                pc_ = 4;
                break;
            case 4:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1012);
    }

private:
    int writer_;
};

class split_bloom_reader_proc final : public script_process {
public:
    split_bloom_reader_proc(processor_id proc, int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<split_bloom_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                locals_[0] = s.read_atomic(1);  // tag0
                pc_ = 2;
                break;
            case 2:
                locals_[1] = s.read_atomic(3);  // tag1
                pc_ = 3;
                break;
            case 3: {
                const int pick = reader_pick(locals_[0] != 0, locals_[1] != 0);
                locals_[2] = s.read_atomic(static_cast<std::size_t>(2 * pick));
                pc_ = 4;
                break;
            }
            case 4:
                s.end_op(open_op_, static_cast<value_t>(locals_[2]));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1013);
    }
};

// ---------------------------------------------------------------------------
// VA-style multi-writer register over atomic stamp cells.
// ---------------------------------------------------------------------------

class va_writer_proc final : public script_process {
public:
    va_writer_proc(std::size_t base, int n, int writer_id,
                   std::vector<mc_value> values, mc_value vdom)
        : script_process(static_cast<processor_id>(writer_id),
                         std::move(values)),
          base_(base), n_(n), writer_(writer_id), vdom_(vdom) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<va_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // pc 0: inv; pc 1..n: scan cell pc-1 tracking max ts; pc n+1: write own
    // cell with ts = max+1; pc n+2: resp.
    void step(sim_state& s, int) override {
        if (pc_ == 0) {
            open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                  static_cast<value_t>(script_[pos_]));
            locals_[0] = 0;  // max ts seen
            pc_ = 1;
        } else if (pc_ <= n_) {
            const mc_value stamp =
                s.read_atomic(base_ + static_cast<std::size_t>(pc_ - 1));
            const mc_value ts = static_cast<mc_value>(stamp / (vdom_ * n_));
            if (ts > locals_[0]) locals_[0] = ts;
            ++pc_;
        } else if (pc_ == n_ + 1) {
            s.write_atomic(base_ + static_cast<std::size_t>(writer_),
                           encode_stamp(locals_[0] + 1, writer_, script_[pos_],
                                        n_, vdom_));
            ++pc_;
        } else {
            s.end_op(open_op_, 0);
            advance_script();
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1014);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int n_;
    int writer_;
    mc_value vdom_;
};

class va_reader_proc final : public script_process {
public:
    va_reader_proc(std::size_t base, int n, processor_id proc, int num_reads,
                   mc_value vdom)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          base_(base), n_(n), vdom_(vdom) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<va_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        if (pc_ == 0) {
            open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
            locals_[0] = 0;  // best stamp (lexicographic (ts, writer) order
                             // IS numeric order of the encoding given writer
                             // < n and value stripped; compare by stamp/vdom)
            pc_ = 1;
        } else if (pc_ <= n_) {
            const mc_value stamp =
                s.read_atomic(base_ + static_cast<std::size_t>(pc_ - 1));
            if (stamp / vdom_ > locals_[0] / vdom_) locals_[0] = stamp;
            ++pc_;
        } else {
            s.end_op(open_op_, static_cast<value_t>(locals_[0] % vdom_));
            advance_script();
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1015);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int n_;
    mc_value vdom_;
};

// ---------------------------------------------------------------------------
// SWMR-from-SWSR multi-reader construction over atomic seq cells.
// ---------------------------------------------------------------------------

class mr_writer_proc final : public script_process {
public:
    mr_writer_proc(std::size_t base, int n, std::vector<mc_value> values)
        : script_process(/*proc=*/0, std::move(values)), base_(base), n_(n) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<mr_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // pc 0: inv; pc 1..n: write Value[pc-1] := seq; pc n+1: resp.
    void step(sim_state& s, int) override {
        if (pc_ == 0) {
            open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                  static_cast<value_t>(script_[pos_]));
            pc_ = 1;
        } else if (pc_ <= n_) {
            const auto seq = static_cast<mc_value>(pos_ + 1);
            s.write_atomic(base_ + static_cast<std::size_t>(pc_ - 1), seq);
            ++pc_;
        } else {
            s.end_op(open_op_, 0);
            advance_script();
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x100a);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int n_;
};

class mr_reader_proc final : public script_process {
public:
    mr_reader_proc(std::size_t base, int n, int index, processor_id proc,
                   int num_reads, std::vector<mc_value> writer_values,
                   bool report)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          base_(base), n_(n), index_(index),
          writer_values_(std::move(writer_values)), report_(report) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<mr_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // pc 0: inv; pc 1: read Value[index]; pc 2..n: read Report[j][index]
    // for the j != index in ascending order; then (if reporting)
    // pc n+1..2n-1: write Report[index][j]; last pc: resp.
    void step(sim_state& s, int) override {
        const int read_stages = n_;            // 1 value read + (n-1) reports
        const int write_stages = report_ ? n_ - 1 : 0;
        if (pc_ == 0) {
            open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
            locals_[0] = 0;  // best seq so far
            pc_ = 1;
        } else if (pc_ == 1) {
            locals_[0] = s.read_atomic(base_ + static_cast<std::size_t>(index_));
            pc_ = 2;
        } else if (pc_ <= read_stages) {
            const int j = nth_other(pc_ - 2);
            const mc_value seq = s.read_atomic(report_cell(j, index_));
            if (seq > locals_[0]) locals_[0] = seq;
            ++pc_;
        } else if (pc_ <= read_stages + write_stages) {
            const int j = nth_other(pc_ - read_stages - 1);
            s.write_atomic(report_cell(index_, j), locals_[0]);
            ++pc_;
        } else {
            const mc_value seq = locals_[0];
            const value_t v =
                seq == 0 ? 0
                         : static_cast<value_t>(
                               writer_values_[static_cast<std::size_t>(seq - 1)]);
            s.end_op(open_op_, v);
            advance_script();
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, report_ ? 0x100b : 0x100c);
        out.push_back(base_ + static_cast<std::size_t>(index_) * 131);
    }

private:
    [[nodiscard]] int nth_other(int k) const {
        // The k-th reader index != index_, ascending.
        return k < index_ ? k : k + 1;
    }
    [[nodiscard]] std::size_t report_cell(int from, int to) const {
        return base_ + static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(from) * static_cast<std::size_t>(n_) +
               static_cast<std::size_t>(to);
    }

    std::size_t base_;
    int n_;
    int index_;
    shared_script writer_values_;
    bool report_;
};

// ---------------------------------------------------------------------------
// Lamport's binary-encoded SAFE register from safe bits.
// ---------------------------------------------------------------------------

class binary_writer_proc final : public script_process {
public:
    binary_writer_proc(std::size_t base, int bits, std::vector<mc_value> values)
        : script_process(/*proc=*/0, std::move(values)), base_(base),
          bits_(bits) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<binary_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    // pc 0: inv; then per bit b: begin_write, end_write; finally resp.
    void step(sim_state& s, int) override {
        if (pc_ == 0) {
            open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                  static_cast<value_t>(script_[pos_]));
            pc_ = 1;
            return;
        }
        const int access = pc_ - 1;          // 0 .. 2*bits-1
        if (access < 2 * bits_) {
            const int bit = access / 2;
            const std::size_t reg = base_ + static_cast<std::size_t>(bit);
            if (access % 2 == 0) {
                s.begin_write(reg, (script_[pos_] >> bit) & 1);
            } else {
                s.end_write(reg);
            }
            ++pc_;
            return;
        }
        s.end_op(open_op_, 0);
        advance_script();
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x101a);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int bits_;
};

class binary_reader_proc final : public script_process {
public:
    binary_reader_proc(std::size_t base, int bits, processor_id proc,
                       int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          base_(base), bits_(bits) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<binary_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        const int access = pc_ - 1;
        if (pc_ >= 1 && access < 2 * bits_ && access % 2 == 1) {
            const int bit = access / 2;
            return s.read_candidates(base_ + static_cast<std::size_t>(bit),
                                     proc_);
        }
        return 1;
    }

    void step(sim_state& s, int choice) override {
        if (pc_ == 0) {
            open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
            locals_[0] = 0;  // assembled value
            pc_ = 1;
            return;
        }
        const int access = pc_ - 1;
        if (access < 2 * bits_) {
            const int bit = access / 2;
            const std::size_t reg = base_ + static_cast<std::size_t>(bit);
            if (access % 2 == 0) {
                s.begin_read(reg, proc_);
            } else {
                const mc_value b = s.end_read(reg, proc_, choice);
                locals_[0] = static_cast<mc_value>(locals_[0] | (b << bit));
            }
            ++pc_;
            return;
        }
        s.end_op(open_op_, static_cast<value_t>(locals_[0]));
        advance_script();
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x101b);
        out.push_back(base_);
    }

private:
    std::size_t base_;
    int bits_;
};

// ---------------------------------------------------------------------------
// Primitive cell processes: one base register used as the whole register.
// ---------------------------------------------------------------------------

class cell_writer_proc final : public script_process {
public:
    cell_writer_proc(std::size_t reg, std::vector<mc_value> values)
        : script_process(/*proc=*/0, std::move(values)), reg_(reg) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<cell_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1:
                if (level_aware_access::write_step(s, reg_, script_[pos_],
                                                   mid_)) {
                    pc_ = 2;
                }
                break;
            case 2:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1016);
        out.push_back(reg_ * 2 + (mid_ ? 1 : 0));
    }

private:
    std::size_t reg_;
    bool mid_{false};
};

class cell_reader_proc final : public script_process {
public:
    cell_reader_proc(std::size_t reg, processor_id proc, int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          reg_(reg) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<cell_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        return pc_ == 1 ? level_aware_access::read_fanout(s, reg_, proc_, mid_)
                        : 1;
    }

    void step(sim_state& s, int choice) override {
        mc_value v{};
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                if (level_aware_access::read_step(s, reg_, proc_, choice, mid_,
                                                  v)) {
                    locals_[0] = v;
                    pc_ = 2;
                }
                break;
            case 2:
                s.end_op(open_op_, static_cast<value_t>(locals_[0]));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1017);
        out.push_back(reg_ * 2 + (mid_ ? 1 : 0));
    }

private:
    std::size_t reg_;
    bool mid_{false};
};

class stamped_cell_writer_proc final : public script_process {
public:
    stamped_cell_writer_proc(std::size_t reg, std::vector<mc_value> values,
                             mc_value vdom)
        : script_process(/*proc=*/0, std::move(values)), reg_(reg), vdom_(vdom) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<stamped_cell_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1: {
                const auto seq = static_cast<mc_value>(pos_ + 1);
                const auto stamp =
                    static_cast<mc_value>(seq * vdom_ + script_[pos_]);
                if (level_aware_access::write_step(s, reg_, stamp, mid_)) {
                    pc_ = 2;
                }
                break;
            }
            case 2:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1018);
        out.push_back(reg_ * 2 + (mid_ ? 1 : 0));
    }

private:
    std::size_t reg_;
    mc_value vdom_;
    bool mid_{false};
};

class stamped_cell_reader_proc final : public script_process {
public:
    stamped_cell_reader_proc(std::size_t reg, processor_id proc, int num_reads,
                             mc_value vdom)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          reg_(reg), vdom_(vdom) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<stamped_cell_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        return pc_ == 1 ? level_aware_access::read_fanout(s, reg_, proc_, mid_)
                        : 1;
    }

    void step(sim_state& s, int choice) override {
        mc_value v{};
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                if (level_aware_access::read_step(s, reg_, proc_, choice, mid_,
                                                  v)) {
                    // Monotone filter: keep the freshest stamp ever seen
                    // (locals_[1] survives across operations).
                    if (v > locals_[1]) locals_[1] = v;
                    pc_ = 2;
                }
                break;
            case 2:
                s.end_op(open_op_, static_cast<value_t>(locals_[1] % vdom_));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1019);
        out.push_back(reg_ * 2 + (mid_ ? 1 : 0));
    }

private:
    std::size_t reg_;
    mc_value vdom_;
    bool mid_{false};
};

// ---------------------------------------------------------------------------
// Safe bit with / without the write-only-changes discipline.
// ---------------------------------------------------------------------------

class bit_writer_proc final : public script_process {
public:
    bit_writer_proc(std::size_t reg, std::vector<mc_value> values,
                    bool only_write_changes)
        : script_process(/*proc=*/0, std::move(values)), reg_(reg),
          disciplined_(only_write_changes) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<bit_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override { return 1; }

    void step(sim_state& s, int) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = disciplined_ && script_[pos_] == last_ ? 3 : 1;
                break;
            case 1:
                s.begin_write(reg_, script_[pos_]);
                pc_ = 2;
                break;
            case 2:
                s.end_write(reg_);
                last_ = script_[pos_];
                pc_ = 3;
                break;
            case 3:
                s.end_op(open_op_, 0);
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1008);
        out.push_back(static_cast<std::uint64_t>(static_cast<std::uint16_t>(last_)));
    }

private:
    std::size_t reg_;
    bool disciplined_;
    mc_value last_{0};  // matches the register's initial value
};

class bit_reader_proc final : public script_process {
public:
    bit_reader_proc(std::size_t reg, processor_id proc, int num_reads)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          reg_(reg) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<bit_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state& s) const override {
        return pc_ == 2 ? s.read_candidates(reg_, proc_) : 1;
    }

    void step(sim_state& s, int choice) override {
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                s.begin_read(reg_, proc_);
                pc_ = 2;
                break;
            case 2:
                locals_[0] = s.end_read(reg_, proc_, choice);
                pc_ = 3;
                break;
            case 3:
                s.end_op(open_op_, static_cast<value_t>(locals_[0]));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out, 0x1009);
    }

private:
    std::size_t reg_;
};

// ---------------------------------------------------------------------------
// Faulty-substrate Bloom processes (the model-checked twin of
// registers/faulty.hpp): the protocol machines above, but each eligible
// real access may nondeterministically misbehave the way one fault class
// prescribes. The explorer branches over "fault fires here" vs "access is
// clean" at every eligible step, bounded by a per-process fault budget --
// so a reported violation comes with a concrete schedule, and an
// exhaustive pass covers EVERY placement of up to `max_faults` faults.
//
// Fault semantics mirror the thread-level adapter:
//   stale_read          a real read returns the register's previously
//                       committed value (registers need track_previous);
//   lost_write          a real write is silently dropped;
//   torn_value          the write commits the OLD value bits under the
//                       NEW tag bit (the adapter's bit-mix, minimized);
//   delayed_visibility  the real write lands only AFTER the op responded,
//                       as a separate later step other processes can
//                       interleave with;
//   port_crash          the process halts mid-op; the op stays pending.
// ---------------------------------------------------------------------------

class faulty_bloom_writer_proc final : public script_process {
public:
    faulty_bloom_writer_proc(int writer_index, std::vector<mc_value> values,
                             fault_class cls, int max_faults)
        : script_process(static_cast<processor_id>(writer_index),
                         std::move(values)),
          writer_(writer_index), cls_(cls), faults_left_(max_faults) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<faulty_bloom_writer_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return crashed_ || pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override {
        return fault_choice_here() ? 2 : 1;
    }

    void step(sim_state& s, int choice) override {
        const bool fire = choice == 1 && fault_choice_here();
        const auto reg = static_cast<std::size_t>(writer_);
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::write,
                                      static_cast<value_t>(script_[pos_]));
                pc_ = 1;
                break;
            case 1: {  // read the other writer's register
                if (fire && cls_ == fault_class::port_crash) {
                    crash();
                    return;
                }
                mc_value other;
                if (fire) {  // stale_read
                    other = s.registers[1 - reg].previous;
                    --faults_left_;
                } else {
                    other = s.read_atomic(1 - reg);
                }
                const bool t = writer_tag_choice(writer_, decode_tag(other));
                locals_[0] = encode_tagged(script_[pos_], t);
                pc_ = 2;
                break;
            }
            case 2:  // write own register
                if (fire) {
                    switch (cls_) {
                        case fault_class::port_crash: crash(); return;
                        case fault_class::lost_write: --faults_left_; break;
                        case fault_class::torn_value: {
                            // Old value bits under the new tag bit: the
                            // smallest torn mix the encoding can express,
                            // and always within the register's domain.
                            const auto torn = static_cast<mc_value>(
                                (s.registers[reg].committed &
                                 ~static_cast<mc_value>(1)) |
                                (locals_[0] & 1));
                            if (torn != locals_[0]) --faults_left_;
                            s.write_atomic(reg, torn);
                            break;
                        }
                        case fault_class::delayed_visibility:
                            pending_ = locals_[0];
                            has_pending_ = true;
                            --faults_left_;
                            break;
                        default: s.write_atomic(reg, locals_[0]); break;
                    }
                } else {
                    s.write_atomic(reg, locals_[0]);
                }
                pc_ = 3;
                break;
            case 3:  // respond
                if (fire) {  // port_crash: halt without responding
                    crash();
                    return;
                }
                s.end_op(open_op_, 0);
                if (has_pending_) {
                    pc_ = 4;  // the delayed write lands as a later step
                } else {
                    advance_script();
                }
                break;
            case 4:  // delayed write becomes visible after the response
                s.write_atomic(reg, pending_);
                has_pending_ = false;
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out,
                         0x1020 | (static_cast<std::uint64_t>(cls_) << 8));
        out.push_back((static_cast<std::uint64_t>(
                           static_cast<std::uint16_t>(faults_left_))
                       << 32) |
                      (static_cast<std::uint64_t>(
                           static_cast<std::uint16_t>(pending_))
                       << 8) |
                      (has_pending_ ? 2ULL : 0ULL) | (crashed_ ? 1ULL : 0ULL));
    }

private:
    [[nodiscard]] bool fault_choice_here() const {
        if (crashed_ || faults_left_ <= 0) return false;
        switch (cls_) {
            case fault_class::port_crash:
                return pc_ == 1 || pc_ == 2 || pc_ == 3;
            case fault_class::stale_read: return pc_ == 1;
            case fault_class::lost_write:
            case fault_class::torn_value:
            case fault_class::delayed_visibility: return pc_ == 2;
            default: return false;
        }
    }

    void crash() {
        crashed_ = true;
        --faults_left_;
    }

    int writer_;
    fault_class cls_;
    int faults_left_;
    bool crashed_{false};
    bool has_pending_{false};
    mc_value pending_{0};
};

/// The standard tag reader with faulty substrate reads. Only read-side
/// classes apply (stale_read, port_crash); for write-side classes the
/// reader behaves exactly like tag_reader_proc.
class faulty_tag_reader_proc final : public script_process {
public:
    faulty_tag_reader_proc(processor_id proc, int num_reads, fault_class cls,
                           int max_faults)
        : script_process(proc, std::vector<mc_value>(
                                   static_cast<std::size_t>(num_reads), 0)),
          cls_(cls), faults_left_(max_faults) {}

    [[nodiscard]] std::unique_ptr<process> clone() const override {
        return std::make_unique<faulty_tag_reader_proc>(*this);
    }
    [[nodiscard]] bool done(const sim_state&) const override {
        return crashed_ || pos_ == script_.size();
    }
    [[nodiscard]] int fanout(const sim_state&) const override {
        return fault_choice_here() ? 2 : 1;
    }

    void step(sim_state& s, int choice) override {
        const bool fire = choice == 1 && fault_choice_here();
        if (fire && cls_ == fault_class::port_crash) {
            crash();
            return;
        }
        switch (pc_) {
            case 0:
                open_op_ = s.begin_op(proc_, opno_, op_kind::read, 0);
                pc_ = 1;
                break;
            case 1:
                locals_[0] = faulty_read(s, 0, fire);
                pc_ = 2;
                break;
            case 2:
                locals_[1] = faulty_read(s, 1, fire);
                pc_ = 3;
                break;
            case 3: {
                const int pick =
                    reader_pick(decode_tag(locals_[0]), decode_tag(locals_[1]));
                locals_[2] =
                    faulty_read(s, static_cast<std::size_t>(pick), fire);
                pc_ = 4;
                break;
            }
            case 4:
                s.end_op(open_op_,
                         static_cast<value_t>(decode_value(locals_[2])));
                advance_script();
                break;
        }
    }

    void fingerprint(std::vector<std::uint64_t>& out) const override {
        base_fingerprint(out,
                         0x1021 | (static_cast<std::uint64_t>(cls_) << 8));
        out.push_back((static_cast<std::uint64_t>(
                           static_cast<std::uint16_t>(faults_left_))
                       << 8) |
                      (crashed_ ? 1ULL : 0ULL));
    }

private:
    [[nodiscard]] bool fault_choice_here() const {
        if (crashed_ || faults_left_ <= 0) return false;
        switch (cls_) {
            case fault_class::port_crash:
                return pc_ >= 1 && pc_ <= 4;
            case fault_class::stale_read: return pc_ >= 1 && pc_ <= 3;
            default: return false;
        }
    }

    [[nodiscard]] mc_value faulty_read(sim_state& s, std::size_t reg,
                                       bool fire) {
        if (fire) {  // stale_read
            --faults_left_;
            return s.registers[reg].previous;
        }
        return s.read_atomic(reg);
    }

    void crash() {
        crashed_ = true;
        --faults_left_;
    }

    fault_class cls_;
    int faults_left_;
    bool crashed_{false};
};

}  // namespace

std::unique_ptr<process> make_bloom_writer(int writer_index,
                                           std::vector<mc_value> values) {
    return std::make_unique<bloom_writer_proc>(writer_index, std::move(values));
}
std::unique_ptr<process> make_bloom_writer_crashing(
    int writer_index, std::vector<mc_value> values, std::size_t crash_op,
    int crash_stage) {
    return std::make_unique<bloom_writer_crashing_proc>(
        writer_index, std::move(values), crash_op, crash_stage);
}
std::unique_ptr<process> make_bloom_writer_wrong_tag(
    int writer_index, std::vector<mc_value> values) {
    return std::make_unique<bloom_writer_proc>(writer_index, std::move(values),
                                               true);
}
std::unique_ptr<process> make_bloom_reader(processor_id proc, int num_reads) {
    return std::make_unique<tag_reader_proc>(proc, num_reads);
}
std::unique_ptr<process> make_bloom_reader_reversed(processor_id proc,
                                                    int num_reads) {
    return std::make_unique<tag_reader_proc>(proc, num_reads,
                                             tag_reader_proc::variant::reversed);
}
std::unique_ptr<process> make_bloom_reader_no_reread(processor_id proc,
                                                     int num_reads) {
    return std::make_unique<tag_reader_proc>(
        proc, num_reads, tag_reader_proc::variant::no_reread);
}
std::unique_ptr<process> make_faulty_bloom_writer(int writer_index,
                                                  std::vector<mc_value> values,
                                                  fault_class cls,
                                                  int max_faults) {
    return std::make_unique<faulty_bloom_writer_proc>(
        writer_index, std::move(values), cls, max_faults);
}
std::unique_ptr<process> make_faulty_bloom_reader(processor_id proc,
                                                  int num_reads, fault_class cls,
                                                  int max_faults) {
    return std::make_unique<faulty_tag_reader_proc>(proc, num_reads, cls,
                                                    max_faults);
}
std::unique_ptr<process> make_tournament_writer(int writer_id,
                                                std::vector<mc_value> values) {
    return std::make_unique<tournament_writer_proc>(writer_id, std::move(values));
}
std::unique_ptr<process> make_tournament_reader(processor_id proc,
                                                int num_reads) {
    return std::make_unique<tag_reader_proc>(proc, num_reads);
}
std::unique_ptr<process> make_fourslot_writer(std::size_t base,
                                              std::vector<mc_value> values) {
    return std::make_unique<fourslot_writer_proc>(base, std::move(values));
}
std::unique_ptr<process> make_fourslot_reader(std::size_t base,
                                              processor_id proc, int num_reads) {
    return std::make_unique<fourslot_reader_proc>(base, proc, num_reads);
}
std::unique_ptr<process> make_seqlock_writer(std::size_t base,
                                             std::vector<mc_value> values) {
    return std::make_unique<seqlock_writer_proc>(base, std::move(values));
}
std::unique_ptr<process> make_seqlock_reader(std::size_t base,
                                             processor_id proc, int num_reads) {
    return std::make_unique<seqlock_reader_proc>(base, proc, num_reads);
}
std::unique_ptr<process> make_unary_writer(std::size_t base, int k,
                                           std::vector<mc_value> values) {
    return std::make_unique<unary_writer_proc>(base, k, std::move(values));
}
std::unique_ptr<process> make_unary_reader(std::size_t base, int k,
                                           processor_id proc, int num_reads) {
    return std::make_unique<unary_reader_proc>(base, k, proc, num_reads);
}
std::unique_ptr<process> make_split_bloom_writer(int writer_index,
                                                 std::vector<mc_value> values) {
    return std::make_unique<split_bloom_writer_proc>(writer_index,
                                                     std::move(values));
}
std::unique_ptr<process> make_split_bloom_reader(processor_id proc,
                                                 int num_reads) {
    return std::make_unique<split_bloom_reader_proc>(proc, num_reads);
}
std::unique_ptr<process> make_va_writer(std::size_t base, int n_writers,
                                        int writer_id,
                                        std::vector<mc_value> values,
                                        mc_value value_domain) {
    return std::make_unique<va_writer_proc>(base, n_writers, writer_id,
                                            std::move(values), value_domain);
}
std::unique_ptr<process> make_va_reader(std::size_t base, int n_writers,
                                        processor_id proc, int num_reads,
                                        mc_value value_domain) {
    return std::make_unique<va_reader_proc>(base, n_writers, proc, num_reads,
                                            value_domain);
}

std::unique_ptr<process> make_mr_writer(std::size_t base, int n,
                                        std::vector<mc_value> values) {
    return std::make_unique<mr_writer_proc>(base, n, std::move(values));
}
std::unique_ptr<process> make_mr_reader(std::size_t base, int n,
                                        int reader_index, processor_id proc,
                                        int num_reads,
                                        std::vector<mc_value> writer_values) {
    return std::make_unique<mr_reader_proc>(base, n, reader_index, proc,
                                            num_reads, std::move(writer_values),
                                            true);
}
std::unique_ptr<process> make_mr_reader_no_report(
    std::size_t base, int n, int reader_index, processor_id proc, int num_reads,
    std::vector<mc_value> writer_values) {
    return std::make_unique<mr_reader_proc>(base, n, reader_index, proc,
                                            num_reads, std::move(writer_values),
                                            false);
}

std::unique_ptr<process> make_binary_writer(std::size_t base, int bits,
                                            std::vector<mc_value> values) {
    return std::make_unique<binary_writer_proc>(base, bits, std::move(values));
}
std::unique_ptr<process> make_binary_reader(std::size_t base, int bits,
                                            processor_id proc, int num_reads) {
    return std::make_unique<binary_reader_proc>(base, bits, proc, num_reads);
}

std::unique_ptr<process> make_cell_writer(std::size_t reg,
                                          std::vector<mc_value> values) {
    return std::make_unique<cell_writer_proc>(reg, std::move(values));
}
std::unique_ptr<process> make_cell_reader(std::size_t reg, processor_id proc,
                                          int num_reads) {
    return std::make_unique<cell_reader_proc>(reg, proc, num_reads);
}
std::unique_ptr<process> make_stamped_cell_writer(std::size_t reg,
                                                  std::vector<mc_value> values,
                                                  mc_value value_domain) {
    return std::make_unique<stamped_cell_writer_proc>(reg, std::move(values),
                                                      value_domain);
}
std::unique_ptr<process> make_stamped_cell_reader(std::size_t reg,
                                                  processor_id proc,
                                                  int num_reads,
                                                  mc_value value_domain) {
    return std::make_unique<stamped_cell_reader_proc>(reg, proc, num_reads,
                                                      value_domain);
}

std::unique_ptr<process> make_bit_writer(std::size_t reg,
                                         std::vector<mc_value> values,
                                         bool only_write_changes) {
    return std::make_unique<bit_writer_proc>(reg, std::move(values),
                                             only_write_changes);
}
std::unique_ptr<process> make_bit_reader(std::size_t reg, processor_id proc,
                                         int num_reads) {
    return std::make_unique<bit_reader_proc>(reg, proc, num_reads);
}

}  // namespace bloom87::mc
