// The substrate fault-injection layer (registers/faulty.hpp) end to end:
// the plan's trigger discipline, the adapter's per-class semantics, the
// driver's faulty/ compositions, seeded reproducibility, online detection
// of every value-corrupting class, port_crash staying atomic -- and the
// Section 4 wait-freedom claim under a stalled writer (measure_stall).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/checkers.hpp"
#include "harness/driver.hpp"
#include "histories/serialize.hpp"
#include "registers/faulty.hpp"
#include "registers/seqlock.hpp"

namespace bloom87 {
namespace {

using namespace bloom87::harness;

TEST(FaultPlan, ClassNamesRoundTrip) {
    for (fault_class c :
         {fault_class::none, fault_class::stale_read, fault_class::lost_write,
          fault_class::torn_value, fault_class::delayed_visibility,
          fault_class::port_crash}) {
        const auto parsed = parse_fault_class(fault_class_name(c));
        ASSERT_TRUE(parsed.has_value()) << fault_class_name(c);
        EXPECT_EQ(*parsed, c);
    }
    EXPECT_FALSE(parse_fault_class("bit_rot").has_value());
    EXPECT_FALSE(parse_fault_class("").has_value());
}

TEST(FaultPlan, ExactTriggerFiresExactlyOnce) {
    fault_spec spec;
    spec.cls = fault_class::lost_write;
    spec.at = 5;
    fault_plan plan(spec);
    for (std::uint64_t n = 1; n <= 12; ++n) {
        fault_plan::scoped_lock guard(plan);
        EXPECT_EQ(plan.trigger(), n == 5) << "access " << n;
    }
}

TEST(FaultPlan, InactiveSpecNeverTriggers) {
    fault_plan plan(fault_spec{});
    for (int n = 0; n < 100; ++n) {
        fault_plan::scoped_lock guard(plan);
        EXPECT_FALSE(plan.trigger());
    }
    EXPECT_EQ(plan.counts().total(), 0u);
}

// Direct adapter semantics over a real substrate, no harness: the third
// substrate access is a faulted read that must serve the PREVIOUS pair.
TEST(FaultyRegister, StaleReadServesThePreviousPair) {
    fault_spec spec;
    spec.cls = fault_class::stale_read;
    spec.at = 3;
    fault_plan plan(spec);
    faulty_register<seqlock_register<value_t>> reg(tagged<value_t>{7, false},
                                                   &plan);
    access_context ctx{};
    reg.write(tagged<value_t>{10, true}, ctx);   // access 1
    reg.write(tagged<value_t>{20, false}, ctx);  // access 2
    const tagged<value_t> stale = reg.read(ctx);  // access 3: faulted
    EXPECT_EQ(stale.value, 10);
    EXPECT_TRUE(stale.tag);
    const tagged<value_t> fresh = reg.read(ctx);  // access 4: clean again
    EXPECT_EQ(fresh.value, 20);
    EXPECT_FALSE(fresh.tag);
    EXPECT_EQ(plan.counts().stale_reads, 1u);
    EXPECT_EQ(plan.counts().total(), 1u);
}

TEST(FaultyRegister, LostWriteNeverLands) {
    fault_spec spec;
    spec.cls = fault_class::lost_write;
    spec.at = 2;
    fault_plan plan(spec);
    faulty_register<seqlock_register<value_t>> reg(tagged<value_t>{0, false},
                                                   &plan);
    access_context ctx{};
    reg.write(tagged<value_t>{10, true}, ctx);  // access 1: lands
    reg.write(tagged<value_t>{20, true}, ctx);  // access 2: lost
    EXPECT_EQ(reg.read(ctx).value, 10);
    EXPECT_EQ(plan.counts().lost_writes, 1u);
}

TEST(FaultyRegister, DelayedWriteLandsAfterKAccesses) {
    fault_spec spec;
    spec.cls = fault_class::delayed_visibility;
    spec.at = 2;
    spec.delay_accesses = 2;
    fault_plan plan(spec);
    faulty_register<seqlock_register<value_t>> reg(tagged<value_t>{0, false},
                                                   &plan);
    access_context ctx{};
    reg.write(tagged<value_t>{10, false}, ctx);  // access 1: lands
    reg.write(tagged<value_t>{20, false}, ctx);  // access 2: deferred
    EXPECT_EQ(reg.read(ctx).value, 10);  // ages the countdown (1 left)
    EXPECT_EQ(reg.read(ctx).value, 10);  // ages the countdown (0 left)
    EXPECT_EQ(reg.read(ctx).value, 20);  // pending write landed first
    EXPECT_EQ(plan.counts().delayed_writes, 1u);
}

TEST(FaultyRegister, CrashedPortDropsEverything) {
    fault_spec spec;
    spec.cls = fault_class::port_crash;
    spec.at = 2;
    fault_plan plan(spec);
    faulty_register<seqlock_register<value_t>> reg(tagged<value_t>{0, false},
                                                   &plan);
    access_context crasher{};
    crasher.processor = 1;
    reg.write(tagged<value_t>{10, false}, crasher);  // access 1: lands
    reg.write(tagged<value_t>{20, false}, crasher);  // access 2: crashes
    EXPECT_TRUE(plan.crashed(1));
    EXPECT_FALSE(plan.crashed(0));
    reg.write(tagged<value_t>{30, false}, crasher);  // dead port: dropped
    access_context alive{};
    EXPECT_EQ(reg.read(alive).value, 10);
    EXPECT_EQ(plan.counts().port_crashes, 1u);
}

[[nodiscard]] run_spec faulty_spec(const std::string& reg, fault_class cls,
                                   std::uint64_t seed) {
    run_spec spec;
    spec.register_name = reg;
    spec.load.writers = 2;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 160;
    spec.load.ops_per_reader = 160;
    spec.seed = seed;
    spec.collect = collect_mode::gamma;
    spec.schedule = schedule_mode::seeded;
    spec.fault.cls = cls;
    spec.fault.rate_num = 1;
    spec.fault.rate_den = 32;
    spec.fault.seed = seed;
    spec.online_monitor = true;
    spec.monitor_stride = 32;
    return spec;
}

[[nodiscard]] std::string gamma_text(const run_result& res) {
    std::ostringstream os;
    write_gamma(os, res.events, 0);
    return os.str();
}

// Same workload seed + same fault seed => the same faulted history, byte
// for byte. This is what makes a fault report's seed a reproducer.
TEST(FaultyDriver, SeededFaultRunsAreDeterministic) {
    const run_spec spec =
        faulty_spec("faulty/seqlock", fault_class::torn_value, 11);
    const run_result a = run(spec);
    const run_result b = run(spec);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_GT(a.faults_injected.total(), 0u);
    EXPECT_EQ(a.faults_injected.total(), b.faults_injected.total());
    EXPECT_EQ(a.faults_injected.first_injection,
              b.faults_injected.first_injection);
    EXPECT_EQ(gamma_text(a), gamma_text(b));
}

// Every value-corrupting class must (a) be injected, (b) be flagged by the
// online verifier with a finite first-violation latency, and (c) fail the
// offline pipeline on the same history -- across all three compositions.
TEST(FaultyDriver, CorruptingClassesAreDetectedOnline) {
    for (const std::string reg :
         {"faulty/seqlock", "faulty/fourslot", "faulty/recording"}) {
        for (fault_class cls :
             {fault_class::stale_read, fault_class::lost_write,
              fault_class::torn_value, fault_class::delayed_visibility}) {
            const run_spec spec = faulty_spec(reg, cls, 3);
            const run_result res = run(spec);
            ASSERT_TRUE(res.ok) << reg << ": " << res.error;
            EXPECT_GT(res.faults_injected.total(), 0u)
                << reg << " " << fault_class_name(cls);
            ASSERT_TRUE(res.online.ran);
            EXPECT_TRUE(res.online.violation)
                << reg << " " << fault_class_name(cls)
                << ": corruption went unnoticed";
            EXPECT_NE(res.online.injection_pos, no_event);
            EXPECT_GT(res.online.detection_prefix, 0u);
            const pipeline_result checks = run_checkers(
                res.events, spec.initial,
                {checker_kind::fast, checker_kind::monitor});
            ASSERT_TRUE(checks.parsed) << checks.parse_error;
            EXPECT_FALSE(checks.all_pass())
                << reg << " " << fault_class_name(cls)
                << ": offline pipeline disagrees with the online verdict";
        }
    }
}

// The per-class counters attribute injections to the right class.
TEST(FaultyDriver, CountersMatchTheInjectedClass) {
    const run_result res =
        run(faulty_spec("faulty/seqlock", fault_class::delayed_visibility, 7));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GT(res.faults_injected.delayed_writes, 0u);
    EXPECT_EQ(res.faults_injected.stale_reads, 0u);
    EXPECT_EQ(res.faults_injected.lost_writes, 0u);
    EXPECT_EQ(res.faults_injected.torn_values, 0u);
    EXPECT_EQ(res.faults_injected.port_crashes, 0u);
}

// port_crash stays inside the paper's fault model (Section 7 treats pending
// operations first-class): ports die, their last op stays pending, and the
// surviving history still checks atomic.
TEST(FaultyDriver, PortCrashPreservesAtomicity) {
    for (const std::string reg :
         {"faulty/seqlock", "faulty/fourslot", "faulty/recording"}) {
        run_spec spec = faulty_spec(reg, fault_class::port_crash, 5);
        spec.fault.rate_den = 16;  // crash early and often
        const run_result res = run(spec);
        ASSERT_TRUE(res.ok) << reg << ": " << res.error;
        EXPECT_GT(res.faults_injected.port_crashes, 0u) << reg;
        EXPECT_FALSE(res.online.violation) << reg << ": " << res.online.diagnosis;
        const pipeline_result checks =
            run_checkers(res.events, spec.initial,
                         {checker_kind::fast, checker_kind::monitor});
        ASSERT_TRUE(checks.parsed) << reg << ": " << checks.parse_error;
        EXPECT_TRUE(checks.all_pass()) << reg;
    }
}

TEST(FaultyDriver, ActiveFaultNeedsAFaultyRegister) {
    run_spec spec = faulty_spec("bloom/packed", fault_class::stale_read, 1);
    const run_result res = run(spec);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("fault"), std::string::npos) << res.error;
}

TEST(FaultyDriver, OnlineMonitorNeedsGammaCollection) {
    run_spec spec = faulty_spec("faulty/seqlock", fault_class::stale_read, 1);
    spec.collect = collect_mode::per_thread;
    const run_result res = run(spec);
    EXPECT_FALSE(res.ok);
}

// The Section 4 wait-freedom claim, as a pinned assertion rather than a
// bench table: a writer stalled for 60 ms must not push the reader's worst
// observed latency past half the stall on a wait-free composition, while
// the mutex baseline's reader inevitably eats (nearly) the whole stall.
// Thresholds are deliberately coarse -- half the stall either way -- so a
// loaded single-core CI box cannot flake them.
TEST(FaultyDriver, StalledWriterBoundsWaitFreeReadersOnly) {
    constexpr unsigned stall_ms = 60;
    constexpr double threshold_us = (stall_ms / 2) * 1000.0;

    stall_spec wait_free;
    wait_free.register_name = "bloom/packed";
    wait_free.stalled_role = port_role::writer;
    wait_free.stall_ms = stall_ms;
    wait_free.run_ms = 3 * stall_ms;
    const stall_result wf = measure_stall(wait_free);
    ASSERT_TRUE(wf.ok) << wf.error;
    EXPECT_GT(wf.reads, 0u);
    EXPECT_LT(wf.max_us, threshold_us)
        << "wait-free reader stalled behind a stalled writer";

    stall_spec blocking = wait_free;
    blocking.register_name = "baseline/mutex";
    const stall_result mx = measure_stall(blocking);
    ASSERT_TRUE(mx.ok) << mx.error;
    EXPECT_GE(mx.max_us, threshold_us)
        << "mutex reader was expected to block for the stall";
}

}  // namespace
}  // namespace bloom87
