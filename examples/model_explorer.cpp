// model_explorer: command-line front end to the bounded model checker.
//
// Explore every schedule of a register protocol at a chosen bound and print
// the verdict -- or the first violating history. Usage:
//
//   model_explorer [--threads N] bloom      [writes_per_writer] [readers] [reads_each]
//   model_explorer [--threads N] tournament [reads]
//   model_explorer [--threads N] fourslot   safe|regular|atomic [writes] [reads]
//   model_explorer [--threads N] unary      [k] [reads]
//   model_explorer [--threads N] faulty     <fault_class> [writes] [reads] [max_faults]
//   model_explorer [--threads N] race       packed|plain|seqlock|seqlock-weak|fourslot [args]
//
// --threads selects the worker count of the parallel explorer (default:
// hardware_concurrency; 1 = the deterministic sequential order). Defaults
// explore a small, seconds-scale bound. Examples:
//   ./model_explorer bloom 2 1 1        # Bloom, 2 writes each, 1 reader
//   ./model_explorer fourslot regular   # shows why regular bits fail
//   ./model_explorer --threads 8 bloom 2 2 1
//   ./model_explorer faulty stale_read  # concrete violating schedule
//   ./model_explorer faulty port_crash  # exhaustive pass: crashes tolerated
//   ./model_explorer race packed 1 1 1  # certify race-free within the bound
//   ./model_explorer race plain 1 1 1   # minimal racy schedule (exit 2)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"

using namespace bloom87;
using namespace bloom87::mc;

namespace {

mc_register make_reg(reg_level level, mc_value domain, mc_value committed) {
    mc_register r;
    r.level = level;
    r.domain = domain;
    r.committed = committed;
    return r;
}

int report(const explore_result& res) {
    std::printf("states explored    : %llu\n",
                static_cast<unsigned long long>(res.states_explored));
    std::printf("memoization hits   : %llu\n",
                static_cast<unsigned long long>(res.memo_hits));
    std::printf("complete schedules : %llu\n",
                static_cast<unsigned long long>(res.leaves));
    std::printf("distinct histories : %llu\n",
                static_cast<unsigned long long>(res.distinct_histories));
    if (res.truncated) std::printf("TRUNCATED at the state budget!\n");
    if (res.property_holds) {
        std::printf("verdict            : PROPERTY HOLDS on every schedule\n");
        return 0;
    }
    std::printf("verdict            : VIOLATION FOUND\n");
    if (res.first_violation) {
        std::printf("diagnosis          : %s\n",
                    res.first_violation->diagnosis.c_str());
        std::printf("history:\n%s",
                    format_operations(res.first_violation->hist).c_str());
    }
    return 2;
}

int arg_or(int argc, char** argv, int index, int fallback) {
    return argc > index ? std::atoi(argv[index]) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
    explore_config cfg;
    // Peel off --threads N (anywhere); the rest stays positional.
    std::vector<char*> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
            cfg.threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            args.push_back(argv[i]);
        }
    }
    argc = static_cast<int>(args.size());
    argv = args.data();
    const std::string mode = argc > 1 ? argv[1] : "bloom";

    if (mode == "bloom") {
        const int writes = arg_or(argc, argv, 2, 2);
        const int readers = arg_or(argc, argv, 3, 1);
        const int reads = arg_or(argc, argv, 4, 1);
        std::printf("Bloom two-writer register: %d writes/writer, %d reader(s) x %d read(s)\n\n",
                    writes, readers, reads);
        sim_state s;
        const auto domain = static_cast<mc_value>((2 * writes + 1) * 2);
        s.registers = {make_reg(reg_level::atomic, domain, 0),
                       make_reg(reg_level::atomic, domain, 0)};
        std::vector<mc_value> s0, s1;
        for (int i = 1; i <= writes; ++i) s0.push_back(static_cast<mc_value>(i));
        for (int i = 1; i <= writes; ++i) {
            s1.push_back(static_cast<mc_value>(writes + i));
        }
        s.procs.push_back(make_bloom_writer(0, s0));
        s.procs.push_back(make_bloom_writer(1, s1));
        for (int r = 0; r < readers; ++r) {
            s.procs.push_back(
                make_bloom_reader(static_cast<processor_id>(2 + r), reads));
        }
        return report(explore(s, cfg));
    }

    if (mode == "faulty") {
        // Bloom's protocol over a FAULTY substrate (registers/faulty.hpp
        // semantics, modeled): value-corrupting classes are expected to
        // exhibit a violating schedule (exit 2, history printed);
        // port_crash is expected to pass exhaustively (exit 0).
        const std::string cls_name = argc > 2 ? argv[2] : "stale_read";
        const auto cls = parse_fault_class(cls_name);
        if (!cls || *cls == fault_class::none) {
            std::fprintf(stderr,
                         "unknown fault class '%s' (want stale_read, "
                         "lost_write, torn_value, delayed_visibility, or "
                         "port_crash)\n",
                         cls_name.c_str());
            return 64;
        }
        const int writes = arg_or(argc, argv, 3, 1);
        const int reads = arg_or(argc, argv, 4, 1);
        const int max_faults = arg_or(argc, argv, 5, 1);
        std::printf("Bloom two-writer over a FAULTY substrate: class %s, "
                    "%d write(s)/writer, 1 reader x %d read(s), <= %d "
                    "fault(s)/process\n",
                    fault_class_name(*cls), writes, reads, max_faults);
        std::printf("expected: %s\n\n",
                    corrupts_values(*cls)
                        ? "VIOLATION FOUND (value corruption breaks atomicity)"
                        : "PROPERTY HOLDS (crashes leave the register atomic)");
        sim_state s;
        const auto domain = static_cast<mc_value>((2 * writes + 1) * 2);
        for (int i = 0; i < 2; ++i) {
            mc_register r = make_reg(reg_level::atomic, domain, 0);
            r.track_previous = true;  // stale reads serve from r.previous
            s.registers.push_back(r);
        }
        std::vector<mc_value> s0, s1;
        for (int i = 1; i <= writes; ++i) s0.push_back(static_cast<mc_value>(i));
        for (int i = 1; i <= writes; ++i) {
            s1.push_back(static_cast<mc_value>(writes + i));
        }
        s.procs.push_back(make_faulty_bloom_writer(0, s0, *cls, max_faults));
        s.procs.push_back(make_faulty_bloom_writer(1, s1, *cls, max_faults));
        s.procs.push_back(make_faulty_bloom_reader(2, reads, *cls, max_faults));
        return report(explore(s, cfg));
    }

    if (mode == "tournament") {
        const int reads = arg_or(argc, argv, 2, 2);
        std::printf("Four-writer tournament (Section 8): 3 writers x 1 write, "
                    "1 reader x %d reads\n\n", reads);
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 10, encode_tagged(1, false)),
                       make_reg(reg_level::atomic, 10, encode_tagged(1, false))};
        s.procs.push_back(make_tournament_writer(0, {2}));
        s.procs.push_back(make_tournament_writer(1, {3}));
        s.procs.push_back(make_tournament_writer(3, {4}));
        s.procs.push_back(make_tournament_reader(4, reads));
        cfg.initial = 1;
        return report(explore(s, cfg));
    }

    if (mode == "fourslot") {
        const std::string level_name = argc > 2 ? argv[2] : "atomic";
        const reg_level control = level_name == "safe"      ? reg_level::safe
                                  : level_name == "regular" ? reg_level::regular
                                                            : reg_level::atomic;
        const int writes = arg_or(argc, argv, 3, 2);
        const int reads = arg_or(argc, argv, 4, 2);
        std::printf("Simpson four-slot: safe data slots, %s control bits, "
                    "%d writes, %d reads\n\n", level_name.c_str(), writes, reads);
        sim_state s;
        for (int i = 0; i < 4; ++i) {
            s.registers.push_back(
                make_reg(reg_level::safe, static_cast<mc_value>(writes + 1), 0));
        }
        for (int i = 0; i < 4; ++i) {
            s.registers.push_back(make_reg(control, 2, 0));
        }
        std::vector<mc_value> script;
        for (int i = 1; i <= writes; ++i) script.push_back(static_cast<mc_value>(i));
        s.procs.push_back(make_fourslot_writer(0, script));
        s.procs.push_back(make_fourslot_reader(0, 1, reads));
        return report(explore(s, cfg));
    }

    if (mode == "unary") {
        const int k = arg_or(argc, argv, 2, 3);
        const int reads = arg_or(argc, argv, 3, 2);
        std::printf("Lamport unary register: %d regular bits, writes {%d, 1}, "
                    "%d reads -- checking REGULARITY then ATOMICITY\n\n",
                    k, k - 1, reads);
        sim_state s;
        for (int i = 0; i < k; ++i) {
            s.registers.push_back(
                make_reg(reg_level::regular, 2, i == 0 ? 1 : 0));
        }
        s.procs.push_back(make_unary_writer(
            0, k, {static_cast<mc_value>(k - 1), 1}));
        s.procs.push_back(make_unary_reader(0, k, 1, reads));
        cfg.prop = property::regular_swmr;
        std::printf("--- regularity ---\n");
        const int rc1 = report(explore(s, cfg));
        cfg.prop = property::atomic;
        std::printf("\n--- atomicity ---\n");
        report(explore(s, cfg));  // expected to fail; informative only
        return rc1;
    }

    if (mode == "race") {
        // Happens-before race certification (docs/ANALYSIS.md): the detector
        // rides inside the explorer, so EVERY schedule within the bound is
        // certified race-free (exit 0) or the first racy schedule is printed
        // (exit 2). Sync classes follow each substrate's declared contract
        // (src/analysis/contracts.cpp).
        const std::string sub = argc > 2 ? argv[2] : "packed";
        sim_state s;
        if (sub == "packed" || sub == "plain") {
            const int writes = arg_or(argc, argv, 3, 1);
            const int readers = arg_or(argc, argv, 4, 1);
            const int reads = arg_or(argc, argv, 5, 1);
            const auto cls = sub == "packed" ? analysis::sync_class::sync
                                             : analysis::sync_class::plain;
            std::printf("Race check: Bloom two-writer over %s base registers, "
                        "%d write(s)/writer, %d reader(s) x %d read(s)\n",
                        sub == "packed" ? "seq_cst (packed-word)" : "PLAIN",
                        writes, readers, reads);
            std::printf("expected: %s\n\n",
                        sub == "packed"
                            ? "PROPERTY HOLDS (every access synchronized)"
                            : "VIOLATION FOUND (unsynchronized accesses race)");
            const auto domain = static_cast<mc_value>((2 * writes + 1) * 2);
            for (int i = 0; i < 2; ++i) {
                mc_register r = make_reg(reg_level::atomic, domain, 0);
                r.sync = cls;
                s.registers.push_back(r);
            }
            std::vector<mc_value> s0, s1;
            for (int i = 1; i <= writes; ++i) {
                s0.push_back(static_cast<mc_value>(i));
                s1.push_back(static_cast<mc_value>(writes + i));
            }
            s.procs.push_back(make_bloom_writer(0, s0));
            s.procs.push_back(make_bloom_writer(1, s1));
            for (int r = 0; r < readers; ++r) {
                s.procs.push_back(
                    make_bloom_reader(static_cast<processor_id>(2 + r), reads));
            }
        } else if (sub == "seqlock" || sub == "seqlock-weak") {
            const int writes = arg_or(argc, argv, 3, 1);
            const int reads = arg_or(argc, argv, 4, 1);
            const bool weak = sub == "seqlock-weak";
            std::printf("Race check: seqlock SWMR register, %s payload, "
                        "%d write(s), 1 reader x %d read(s)\n",
                        weak ? "PLAIN (torn-window experiment)"
                             : "relaxed-atomic (as shipped)",
                        writes, reads);
            std::printf("expected: %s\n\n",
                        weak ? "VIOLATION FOUND (reader's speculative payload "
                               "read races the writer)"
                             : "PROPERTY HOLDS (payload words are atomic)");
            mc_register seq = make_reg(
                reg_level::atomic, static_cast<mc_value>(2 * writes + 1), 0);
            seq.sync = analysis::sync_class::sync;
            mc_register payload = make_reg(
                reg_level::atomic, static_cast<mc_value>(writes + 1), 0);
            payload.sync = weak ? analysis::sync_class::plain
                                : analysis::sync_class::relaxed;
            s.registers = {seq, payload};
            std::vector<mc_value> script;
            for (int i = 1; i <= writes; ++i) {
                script.push_back(static_cast<mc_value>(i));
            }
            s.procs.push_back(make_seqlock_writer(0, script));
            s.procs.push_back(make_seqlock_reader(0, 1, reads));
        } else if (sub == "fourslot") {
            const int writes = arg_or(argc, argv, 3, 1);
            const int reads = arg_or(argc, argv, 4, 1);
            std::printf("Race check: Simpson four-slot, PLAIN data slots, "
                        "seq_cst control bits, %d write(s), %d read(s)\n",
                        writes, reads);
            std::printf("expected: PROPERTY HOLDS (the control-bit handshake "
                        "orders every slot access)\n\n");
            for (int i = 0; i < 4; ++i) {
                mc_register r = make_reg(reg_level::atomic,
                                         static_cast<mc_value>(writes + 1), 0);
                r.sync = analysis::sync_class::plain;
                s.registers.push_back(r);
            }
            for (int i = 0; i < 4; ++i) {
                mc_register r = make_reg(reg_level::atomic, 2, 0);
                r.sync = analysis::sync_class::sync;
                s.registers.push_back(r);
            }
            std::vector<mc_value> script;
            for (int i = 1; i <= writes; ++i) {
                script.push_back(static_cast<mc_value>(i));
            }
            s.procs.push_back(make_fourslot_writer(0, script));
            s.procs.push_back(make_fourslot_reader(0, 1, reads));
        } else {
            std::fprintf(stderr,
                         "unknown race substrate '%s' (want packed, plain, "
                         "seqlock, seqlock-weak, or fourslot)\n",
                         sub.c_str());
            return 64;
        }
        s.enable_race_detection();
        return report(explore(s, cfg));
    }

    std::fprintf(stderr,
                 "usage: %s bloom|faulty|tournament|fourslot|unary|race [args...]\n",
                 argv[0]);
    return 64;
}
