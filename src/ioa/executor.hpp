// bloom87: fair execution of composed I/O automata.
//
// Paper, Section 2: a fair execution lets every component that wants to
// take a step eventually take one. The executor picks uniformly at random
// among all enabled locally-controlled actions -- fair with probability 1
// on the terminating runs used here -- and records the schedule. Helpers
// extract the external schedule and convert it into an operation history
// for the linearizability checkers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "histories/history.hpp"
#include "ioa/automaton.hpp"

namespace bloom87::ioa {

struct scheduled_action {
    std::size_t owner;  ///< controlling component index
    action act_taken;
};

using schedule = std::vector<scheduled_action>;

/// Runs the composition until no locally-controlled action is enabled (for
/// the register systems here that means: environment script exhausted and
/// all protocols quiescent). `max_steps` is a runaway guard.
[[nodiscard]] schedule run_fair(composition& system, std::uint64_t seed,
                                std::size_t max_steps = 1'000'000);

/// The external schedule: actions on "ext:*" channels only.
[[nodiscard]] std::vector<action> external_schedule(const schedule& s);

/// Converts an external schedule into an operation history. Processor ids
/// follow the repository convention: ext:wr0 -> 0, ext:wr1 -> 1,
/// ext:rd<j> -> 1+j.
[[nodiscard]] std::vector<operation> external_history(const schedule& s);

/// Converts a full schedule of the Figure 2 system into a gamma event
/// sequence: external requests/acks become simulated-operation events, and
/// the register automata's internal star actions become real_read /
/// real_write events (with observed_write reconstructed from star order).
/// The result feeds the constructive linearizer -- i.e. the paper's proof
/// can be run on I/O-automaton executions, not just threaded ones.
[[nodiscard]] std::vector<event> to_gamma(const schedule& s);

}  // namespace bloom87::ioa
