#include "modelcheck/explorer.hpp"

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <utility>

#include "linearizability/exhaustive.hpp"
#include "linearizability/regularity.hpp"
#include "util/sync.hpp"

namespace bloom87::mc {
namespace {

std::uint64_t hash_words(const std::vector<std::uint64_t>& words) {
    // FNV-1a over 64-bit words, then a finalizer. One collision in the
    // visited set only costs a false prune; verdict memoization uses the
    // same hash but stores full verdicts keyed by it (collision odds at the
    // scale of these explorations are negligible).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : words) {
        h ^= w;
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

/// Fingerprint set sharded into cache-line-padded stripes. The stripe is
/// chosen by the hash's TOP bits (unordered_set consumes the low ones), so
/// concurrent inserts from different workers mostly land on different
/// mutexes. Sequential explorations skip the locks entirely.
class sharded_fingerprint_set {
public:
    static constexpr std::size_t stripe_bits = 6;
    static constexpr std::size_t num_stripes = std::size_t{1} << stripe_bits;

    explicit sharded_fingerprint_set(bool locked) : locked_(locked) {}

    /// True when `h` was not present (the caller owns exploring it).
    bool insert(std::uint64_t h) {
        stripe& s = stripes_[h >> (64 - stripe_bits)];
        if (!locked_) return s.set.insert(h).second;
        std::lock_guard<std::mutex> guard(s.mutex);
        return s.set.insert(h).second;
    }

private:
    struct alignas(cacheline_size) stripe {
        std::mutex mutex;
        std::unordered_set<std::uint64_t> set;
    };
    const bool locked_;
    std::array<stripe, num_stripes> stripes_;
};

/// A state whose expansion is in progress: already counted and memoized,
/// with the not-yet-taken (process, choice) moves. Workers take moves from
/// the front; frontier splitting donates moves from the back (the part a
/// sequential DFS would reach last).
struct branch_node {
    sim_state state;
    std::vector<std::uint32_t> moves;  ///< (proc << 16) | choice, DFS order
    std::size_t next{0};

    branch_node(sim_state&& s, std::vector<std::uint32_t>&& m)
        : state(std::move(s)), moves(std::move(m)) {}
};

class explore_engine {
public:
    explore_engine(const explore_config& cfg, unsigned threads)
        : cfg_(cfg),
          nthreads_(threads),
          visited_(threads > 1),
          checked_histories_(threads > 1) {}

    explore_result run(const sim_state& initial) {
        {
            // Seed the queue with the root's branch node (the root itself
            // may resolve to a leaf or a forced chain; then there is no
            // branching work and the workers terminate immediately).
            std::vector<std::uint64_t> fp;
            sim_state root(initial);
            if (auto node = visit(std::move(root), fp)) {
                queue_.push_back(std::move(*node));
            }
        }
        if (nthreads_ == 1) {
            worker_main();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(nthreads_);
            for (unsigned t = 0; t < nthreads_; ++t) {
                pool.emplace_back([this] { worker_main(); });
            }
            for (std::thread& th : pool) th.join();
        }

        explore_result out;
        out.states_explored = states_explored_.load(std::memory_order_relaxed);
        out.memo_hits = memo_hits_.load(std::memory_order_relaxed);
        out.leaves = leaves_.load(std::memory_order_relaxed);
        out.distinct_histories =
            distinct_histories_.load(std::memory_order_relaxed);
        out.violations = violations_.load(std::memory_order_relaxed);
        out.property_holds = property_holds_.load(std::memory_order_relaxed);
        out.truncated = truncated_.load(std::memory_order_relaxed);
        out.first_violation = std::move(first_violation_);
        return out;
    }

private:
    /// Counts a freshly generated state against the budget. True = the
    /// exploration is over (budget blown or another worker stopped it).
    bool over_budget() {
        if (stop_.load(std::memory_order_relaxed)) return true;
        if (states_explored_.fetch_add(1, std::memory_order_relaxed) + 1 >
            cfg_.max_states) {
            truncated_.store(true, std::memory_order_relaxed);
            request_stop();
            return true;
        }
        return false;
    }

    void request_stop() {
        stop_.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> guard(queue_mutex_);
        queue_cv_.notify_all();
    }

    /// Takes ownership of a freshly stepped state: counts it, claims it in
    /// the visited set, runs forced (fanout == 1) stretches in place on the
    /// SAME copy, and judges leaves. Returns a branch node when the state
    /// branches (>= 2 moves), nothing otherwise.
    std::optional<branch_node> visit(sim_state&& s,
                                     std::vector<std::uint64_t>& fp) {
        std::size_t single_proc = 0;
        int total_moves = 0;
        for (;;) {
            if (over_budget()) return std::nullopt;
            // Race-mode pruning: a state whose detector latched a race is a
            // counterexample -- record the schedule that got here and do not
            // expand it (every extension stays racy).
            if (const analysis::race_report* r = s.race()) {
                violations_.fetch_add(1, std::memory_order_relaxed);
                property_holds_.store(false, std::memory_order_relaxed);
                {
                    std::lock_guard<std::mutex> guard(violation_mutex_);
                    if (!first_violation_.has_value()) {
                        first_violation_ =
                            violation{s.hist, r->describe("base register")};
                    }
                }
                if (cfg_.stop_at_first_violation) request_stop();
                return std::nullopt;
            }
            fp.clear();
            s.fingerprint(fp);
            if (!visited_.insert(hash_words(fp))) {
                memo_hits_.fetch_add(1, std::memory_order_relaxed);
                return std::nullopt;
            }
            total_moves = 0;
            for (std::size_t p = 0; p < s.procs.size(); ++p) {
                if (s.procs[p]->done(s)) continue;
                total_moves += s.procs[p]->fanout(s);
                single_proc = p;
            }
            if (total_moves == 0) {
                leaf(s, fp);
                return std::nullopt;
            }
            if (total_moves > 1) break;
            // Deterministic stretch: step the one enabled move in place --
            // no copy at all (long forced stretches dominate real
            // explorations).
            s.set_acting(static_cast<std::int16_t>(single_proc));
            s.procs[single_proc]->step(s, 0);
        }
        std::vector<std::uint32_t> moves;
        moves.reserve(static_cast<std::size_t>(total_moves));
        for (std::size_t p = 0; p < s.procs.size(); ++p) {
            if (s.procs[p]->done(s)) continue;
            const int fanout = s.procs[p]->fanout(s);
            for (int choice = 0; choice < fanout; ++choice) {
                moves.push_back(static_cast<std::uint32_t>((p << 16) | choice));
            }
        }
        return branch_node(std::move(s), std::move(moves));
    }

    void leaf(const sim_state& s, std::vector<std::uint64_t>& fp) {
        leaves_.fetch_add(1, std::memory_order_relaxed);
        fp.clear();
        // History-only fingerprint for verdict memoization.
        fp.reserve(s.hist.size() * 4);
        for (const operation& o : s.hist) {
            fp.push_back((static_cast<std::uint64_t>(
                              static_cast<std::uint16_t>(o.id.processor))
                          << 40) |
                         (static_cast<std::uint64_t>(o.id.op) << 8) |
                         static_cast<std::uint64_t>(o.kind));
            fp.push_back(static_cast<std::uint64_t>(o.value));
            fp.push_back(o.invoked);
            fp.push_back(o.responded);
        }
        if (!checked_histories_.insert(hash_words(fp))) return;
        distinct_histories_.fetch_add(1, std::memory_order_relaxed);

        std::string diagnosis;
        bool ok = true;
        if (cfg_.prop == property::atomic) {
            const exhaustive_result res = check_exhaustive(s.hist, cfg_.initial);
            if (!res.ok()) {
                ok = false;
                diagnosis = "checker defect: " + *res.defect;
            } else if (!res.linearizable) {
                ok = false;
                diagnosis = "history is not linearizable";
            }
        } else if (cfg_.prop == property::regular_swmr) {
            const regularity_result res = check_regular_swmr(s.hist, cfg_.initial);
            if (!res.regular) {
                ok = false;
                diagnosis = res.diagnosis;
            }
        } else {
            const regularity_result res = check_safe_swmr(s.hist, cfg_.initial);
            if (!res.regular) {
                ok = false;
                diagnosis = res.diagnosis;
            }
        }
        if (!ok) {
            violations_.fetch_add(1, std::memory_order_relaxed);
            property_holds_.store(false, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> guard(violation_mutex_);
                if (!first_violation_.has_value()) {
                    first_violation_ = violation{s.hist, std::move(diagnosis)};
                }
            }
            if (cfg_.stop_at_first_violation) request_stop();
        }
    }

    /// Blocks until work is available; empty when the exploration is over
    /// (stop requested, or every worker idle with an empty queue).
    std::optional<branch_node> acquire() {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        for (;;) {
            if (stop_.load(std::memory_order_relaxed) || done_) {
                return std::nullopt;
            }
            if (!queue_.empty()) {
                branch_node node = std::move(queue_.front());
                queue_.pop_front();
                return node;
            }
            idle_workers_.fetch_add(1, std::memory_order_relaxed);
            if (idle_workers_.load(std::memory_order_relaxed) == nthreads_) {
                done_ = true;
                queue_cv_.notify_all();
                return std::nullopt;
            }
            queue_cv_.wait(lock, [this] {
                return stop_.load(std::memory_order_relaxed) || done_ ||
                       !queue_.empty();
            });
            idle_workers_.fetch_sub(1, std::memory_order_relaxed);
        }
    }

    /// Frontier splitting: when another worker is starving, give it the
    /// back half of the pending moves of the SHALLOWEST unexhausted branch
    /// node -- the biggest subtrees this worker still owes.
    void maybe_donate(std::vector<branch_node>& stack) {
        if (idle_workers_.load(std::memory_order_relaxed) == 0) return;
        for (branch_node& node : stack) {
            const std::size_t remaining = node.moves.size() - node.next;
            if (remaining == 0) continue;
            const std::size_t take = (remaining + 1) / 2;
            std::vector<std::uint32_t> taken(node.moves.end() -
                                                 static_cast<std::ptrdiff_t>(take),
                                             node.moves.end());
            node.moves.resize(node.moves.size() - take);
            // Taking every remaining move exhausts the node; its state can
            // move instead of copy (the husk is popped unused).
            sim_state state =
                take == remaining ? std::move(node.state) : sim_state(node.state);
            std::lock_guard<std::mutex> guard(queue_mutex_);
            queue_.push_back(branch_node(std::move(state), std::move(taken)));
            queue_cv_.notify_one();
            return;
        }
    }

    void worker_main() {
        std::vector<branch_node> stack;
        std::vector<std::uint64_t> fp;
        fp.reserve(256);
        for (;;) {
            std::optional<branch_node> root = acquire();
            if (!root.has_value()) return;
            stack.clear();
            stack.push_back(std::move(*root));
            while (!stack.empty()) {
                if (stop_.load(std::memory_order_relaxed)) return;
                branch_node& top = stack.back();
                if (top.next >= top.moves.size()) {  // drained (or donated away)
                    stack.pop_back();
                    continue;
                }
                const std::uint32_t move = top.moves[top.next++];
                const auto proc = static_cast<std::size_t>(move >> 16);
                const int choice = static_cast<int>(move & 0xffff);
                sim_state child = [&] {
                    if (top.next == top.moves.size()) {
                        // Last branch: consume the parent state by move.
                        sim_state s = std::move(top.state);
                        stack.pop_back();
                        return s;
                    }
                    return sim_state(top.state);
                }();
                child.set_acting(static_cast<std::int16_t>(proc));
                child.procs[proc]->step(child, choice);
                if (std::optional<branch_node> node = visit(std::move(child), fp)) {
                    stack.push_back(std::move(*node));
                }
                if (nthreads_ > 1) maybe_donate(stack);
            }
        }
    }

    const explore_config& cfg_;
    const unsigned nthreads_;

    sharded_fingerprint_set visited_;
    sharded_fingerprint_set checked_histories_;

    std::atomic<std::uint64_t> states_explored_{0};
    std::atomic<std::uint64_t> memo_hits_{0};
    std::atomic<std::uint64_t> leaves_{0};
    std::atomic<std::uint64_t> distinct_histories_{0};
    std::atomic<std::uint64_t> violations_{0};
    std::atomic<bool> property_holds_{true};
    std::atomic<bool> truncated_{false};
    std::atomic<bool> stop_{false};

    std::mutex violation_mutex_;
    std::optional<violation> first_violation_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<branch_node> queue_;
    std::atomic<unsigned> idle_workers_{0};
    bool done_{false};  // guarded by queue_mutex_
};

}  // namespace

explore_result explore(const sim_state& initial_state, const explore_config& cfg) {
    unsigned threads = cfg.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    explore_engine engine(cfg, threads);
    return engine.run(initial_state);
}

std::string format_operations(const std::vector<operation>& ops) {
    std::ostringstream oss;
    for (const operation& op : ops) {
        oss << "proc " << op.id.processor << " "
            << (op.kind == op_kind::write ? "write(" : "read(") << op.value
            << ") [" << op.invoked << ", ";
        if (op.complete()) {
            oss << op.responded;
        } else {
            oss << "pending";
        }
        oss << ")\n";
    }
    return oss.str();
}

}  // namespace bloom87::mc
