// bloom87: FastTrack-style vector-clock happens-before race detector.
//
// Consumes a stream of shared-memory accesses -- (thread, location,
// read/write, sync_class) -- and reports the first pair of CONFLICTING,
// HB-UNORDERED, PLAIN accesses: a data race in the C++ memory-model sense.
// The rules (Flanagan & Freund's FastTrack, specialized to registers):
//
//  * every thread t carries a vector clock C_t, initialized to C_t[t] = 1;
//  * a SYNC write to location x publishes: L_x := C_t, then C_t[t]++
//    (release store; later stores overwrite L_x, modeling that an acquire
//    load synchronizes only with the store it reads from -- and both the
//    harness gamma log and the model checker's registers always serve the
//    LAST committed store);
//  * a SYNC read of x joins: C_t := C_t JOIN L_x (acquire load);
//  * a RELAXED access is atomic but creates no edge: nothing happens;
//  * a PLAIN write to x first checks that every recorded read and write of
//    x by another thread u is ordered before it (clock entry <= C_t[u]),
//    then records W_x[t] := C_t[t]; a PLAIN read checks prior writes only
//    and records R_x[t] := C_t[t]. An unordered conflicting pair latches a
//    race_report carrying both access positions.
//
// Two drivers feed it: the harness checker pipeline (checker_kind::race)
// replays a recorded gamma log's real accesses, and the model-check
// explorer calls it at every simulated access so EVERY interleaving within
// the bound is certified race-free (the detector state rides inside
// sim_state and joins its fingerprint, keeping memoization sound).
// The whole state is a handful of small flat vectors, so copying it at
// each model-check branch point is cheap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/contracts.hpp"
#include "analysis/observer.hpp"

namespace bloom87::analysis {

/// The first detected race: a conflicting, happens-before-unordered pair
/// of plain accesses to one location. Positions are 1-based access indices
/// in the order the detector was fed.
struct race_report {
    std::uint32_t location{0};
    std::int16_t first_thread{0};
    std::int16_t second_thread{0};
    bool first_is_write{false};
    bool second_is_write{false};
    std::uint64_t first_pos{0};
    std::uint64_t second_pos{0};

    /// Human-readable one-liner; `location_label` names the location kind
    /// ("base register" for the model checker, "register" for gamma logs).
    [[nodiscard]] std::string describe(
        std::string_view location_label = "location") const;
};

class race_detector {
public:
    race_detector() = default;
    race_detector(std::size_t threads, std::size_t locations) {
        reset(threads, locations);
    }

    void reset(std::size_t threads, std::size_t locations);

    /// Feeds one access. Races beyond the first still count in races()
    /// but only the first is latched for diagnosis.
    void on_access(std::size_t thread, std::size_t location, bool is_write,
                   sync_class cls);

    [[nodiscard]] const std::optional<race_report>& first_race()
        const noexcept {
        return first_;
    }
    [[nodiscard]] std::uint64_t races() const noexcept { return races_; }
    [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

    /// Appends the detector's CLOCK state (not access counters or
    /// positions) -- two detector states with equal clocks behave
    /// identically on every future access, so this is exactly what model-
    /// check memoization may key on; counters would make retry loops that
    /// reconverge on the same clocks look like fresh states forever.
    void fingerprint(std::vector<std::uint64_t>& out) const;

private:
    [[nodiscard]] std::uint32_t& vc(std::size_t t, std::size_t u) {
        return vc_[t * threads_ + u];
    }
    void flag(std::size_t loc, std::size_t prior_thread, bool prior_is_write,
              std::uint64_t prior_pos, std::size_t thread, bool is_write);

    std::size_t threads_{0};
    std::size_t locations_{0};
    std::vector<std::uint32_t> vc_;    ///< threads x threads thread clocks
    std::vector<std::uint32_t> rel_;   ///< locations x threads published L_x
    std::vector<std::uint32_t> wclk_;  ///< locations x threads plain-write clocks
    std::vector<std::uint32_t> rclk_;  ///< locations x threads plain-read clocks
    std::vector<std::uint64_t> wpos_;  ///< last plain-write access position
    std::vector<std::uint64_t> rpos_;  ///< last plain-read access position
    std::uint64_t accesses_{0};
    std::uint64_t races_{0};
    std::optional<race_report> first_;
};

/// Bridges an instrumented register (access_observer) into the detector:
/// classifies every observed access with one fixed sync_class (the
/// register's declared contract) and forwards it.
class detector_feed final : public access_observer {
public:
    detector_feed(race_detector* det, sync_class cls) noexcept
        : det_(det), cls_(cls) {}

    void on_real_access(std::int16_t thread, std::uint32_t location,
                        bool is_write) override {
        det_->on_access(static_cast<std::size_t>(thread), location, is_write,
                        cls_);
    }

private:
    race_detector* det_;
    sync_class cls_;
};

}  // namespace bloom87::analysis
