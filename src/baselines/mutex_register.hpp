// bloom87: mutual-exclusion MRMW register baseline.
//
// The paper's Section 4 explicitly rejects this design: "a protocol could be
// cobbled together from a fair mutual exclusion protocol. This would require
// processes to wait for each other... one processor could crash while
// reading the register and block all further access." We implement it
// anyway, as the baseline the benches contrast against: bench_stall_tolerance
// shows reads blocking behind a stalled lock holder, while Bloom's register
// keeps serving.
#pragma once

#include <map>
#include <mutex>

#include "histories/event_log.hpp"
#include "histories/events.hpp"

namespace bloom87 {

/// Multi-reader multi-writer atomic register via a mutex. All operations
/// are blocking; none are wait-free.
template <typename T>
class mutex_register {
public:
    explicit mutex_register(T initial, event_log* log = nullptr)
        : value_(initial), log_(log) {}

    [[nodiscard]] T read(processor_id proc = 0) {
        const op_index op = next_op(proc);
        log_event(event_kind::sim_invoke_read, proc, op, 0);
        T out;
        {
            std::scoped_lock lock(mutex_);
            out = value_;
        }
        log_event(event_kind::sim_respond_read, proc, op,
                  static_cast<value_t>(out));
        return out;
    }

    void write(T v, processor_id proc = 0) {
        const op_index op = next_op(proc);
        log_event(event_kind::sim_invoke_write, proc, op, static_cast<value_t>(v));
        {
            std::scoped_lock lock(mutex_);
            value_ = v;
        }
        log_event(event_kind::sim_respond_write, proc, op, 0);
    }

    /// Hands the caller the lock, simulating a processor stalled (or
    /// crashed) inside its critical section. Used by bench_stall_tolerance.
    [[nodiscard]] std::unique_lock<std::mutex> stall() {
        return std::unique_lock<std::mutex>(mutex_);
    }

private:
    op_index next_op(processor_id proc) {
        std::scoped_lock lock(op_mutex_);
        return op_counters_[proc]++;
    }

    void log_event(event_kind kind, processor_id proc, op_index op, value_t v) {
        if (log_ == nullptr) return;
        event e;
        e.kind = kind;
        e.processor = proc;
        e.op = op;
        e.value = v;
        log_->append(e);
    }

    std::mutex mutex_;
    T value_;
    event_log* log_;
    std::mutex op_mutex_;
    std::map<processor_id, op_index> op_counters_;
};

}  // namespace bloom87
