// [TAB-F] The fault-tolerance matrix: {composition} x {fault class} x {rate}.
//
// Drives every faulty/ composition through the harness under each substrate
// fault class of registers/faulty.hpp, plus the two protocol-level
// adversaries the harness already knew (a writer crashing mid-protocol, a
// stalled/paced writer), with the online verifier watching the gamma log as
// it grows. One verdict per cell:
//
//   tolerated  every checker passed and the monitor stayed silent. Expected
//              for crash/stall classes: Bloom's construction is proven
//              wait-free (paper, Section 4) and its Section 7 proof treats
//              pending operations first-class, so crashes and stalls stay
//              inside the fault model.
//   detected   the online verifier flagged an atomicity violation, with the
//              first-violation latency in completed operations. Expected
//              for the value-corrupting classes (stale_read, lost_write,
//              torn_value, delayed_visibility): those break the substrate-
//              atomicity assumption the proof rests on.
//   missed     faults were injected but nothing noticed, across every
//              attempted seed. A corrupting class slipping through is a
//              bench failure (exit 1).
//   broken     a crash/stall cell failed checking: a real protocol bug.
//
//   bench_fault_matrix [--ops N] [--rates a,b] [--json BENCH_faults.json]
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "registers/faulty.hpp"
#include "util/table.hpp"

using namespace bloom87;
namespace harness = bloom87::harness;

namespace {

/// One row of the sweep: either a substrate fault class or a protocol-level
/// adversary expressed through the driver's pacing knobs.
struct scenario {
    std::string label;
    fault_class cls{fault_class::none};
    bool writer_crash{false};  ///< pacing: write_crashed at 1/den of writes
    bool writer_stall{false};  ///< pacing: paced (very slow) writes at 1/den

    [[nodiscard]] bool expects_detection() const noexcept {
        return corrupts_values(cls);
    }
};

struct cell_outcome {
    harness::run_spec spec;
    harness::run_result result;
    harness::pipeline_result checks;
    std::string verdict;
    std::uint64_t seeds_tried{1};
    bool acceptable{false};
};

cell_outcome run_cell(const std::string& reg, const scenario& sc,
                      std::uint64_t rate_den, std::size_t ops,
                      std::uint64_t base_seed, std::uint64_t attempts) {
    cell_outcome out;
    const std::vector<harness::checker_kind> kinds = {
        harness::checker_kind::fast, harness::checker_kind::monitor};
    for (std::uint64_t attempt = 0; attempt < attempts; ++attempt) {
        harness::run_spec spec;
        spec.register_name = reg;
        spec.load.writers = 2;
        spec.load.readers = 2;
        spec.load.ops_per_writer = ops;
        spec.load.ops_per_reader = ops;
        spec.seed = base_seed + attempt;
        spec.collect = harness::collect_mode::gamma;
        // Stalls only exist under real concurrency; everything else runs on
        // the deterministic seeded scheduler so a cell reproduces exactly.
        spec.schedule = sc.writer_stall ? harness::schedule_mode::threads
                                        : harness::schedule_mode::seeded;
        if (sc.writer_crash) {
            spec.pace.crash_num = 1;
            spec.pace.crash_den = rate_den;
        }
        if (sc.writer_stall) {
            spec.pace.writer_pace_num = 1;
            spec.pace.writer_pace_den = rate_den;
            spec.pace.pause_yields = 128;
        }
        if (sc.cls != fault_class::none) {
            spec.fault.cls = sc.cls;
            spec.fault.rate_num = 1;
            spec.fault.rate_den = rate_den;
            spec.fault.seed = base_seed + attempt;
        }
        spec.online_monitor = true;
        spec.monitor_stride = 32;

        out.spec = spec;
        out.seeds_tried = attempt + 1;
        out.result = harness::run(spec);
        if (!out.result.ok) {
            out.verdict = "error: " + out.result.error;
            return out;
        }
        out.checks = harness::run_checkers(out.result.events, spec.initial,
                                           kinds, spec.register_name);
        const bool clean =
            out.checks.all_pass() && !out.result.online.violation;
        if (!sc.expects_detection()) {
            // Crash/stall classes must be absorbed on the FIRST schedule:
            // any violation here is a protocol bug, not bad luck.
            out.verdict = clean ? "tolerated" : "broken";
            out.acceptable = clean;
            return out;
        }
        if (out.result.online.violation) {
            out.verdict = "detected";
            out.acceptable = true;
            return out;
        }
        // Injected but unnoticed (or the rate never fired): try another
        // seed -- corruption needs a reader looking at the right moment.
    }
    out.verdict = "missed";
    return out;
}

[[nodiscard]] std::string rate_label(const scenario& sc,
                                     std::uint64_t rate_den) {
    if (sc.cls == fault_class::none && !sc.writer_crash && !sc.writer_stall) {
        return "-";
    }
    return "1/" + std::to_string(rate_den);
}

/// One cell of the detection-latency scaling sweep: a seeded faulty/seqlock
/// run watched mid-stream by the streaming checker, retried across seeds
/// until the injected corruption is actually observed. Reports how many
/// completed operations the corruption hid behind (latency_ops) as a
/// function of fault rate and checker stride.
struct scaling_cell {
    harness::run_spec spec;
    harness::run_result result;
    std::uint64_t seeds_tried{1};
    bool detected{false};
};

scaling_cell run_scaling_cell(std::uint64_t rate_den, unsigned stride,
                              std::size_t ops, std::uint64_t base_seed,
                              std::uint64_t attempts) {
    scaling_cell out;
    for (std::uint64_t attempt = 0; attempt < attempts; ++attempt) {
        harness::run_spec spec;
        spec.register_name = "faulty/seqlock";
        spec.load.writers = 2;
        spec.load.readers = 2;
        spec.load.ops_per_writer = ops;
        spec.load.ops_per_reader = ops;
        spec.seed = base_seed + attempt;
        spec.collect = harness::collect_mode::gamma;
        spec.schedule = harness::schedule_mode::seeded;
        spec.fault.cls = fault_class::stale_read;
        spec.fault.rate_num = 1;
        spec.fault.rate_den = rate_den;
        spec.fault.seed = base_seed + attempt;
        spec.streaming_monitor = true;
        spec.stream_window = 4 * stride;
        spec.stream_stride = stride;

        out.spec = spec;
        out.seeds_tried = attempt + 1;
        out.result = harness::run(spec);
        if (!out.result.ok) return out;
        if (out.result.stream.violation) {
            out.detected = true;
            return out;
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    harness::common_flags flags;
    flags.ops = 160;
    std::uint64_t attempts = 6;
    harness::flag_parser parser(
        "bench_fault_matrix",
        "fault-tolerance matrix: composition x fault class x rate");
    flags.add_to(parser);
    parser.add_uint64("attempts",
                      "seeds to try per corrupting cell before calling it "
                      "missed",
                      &attempts);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        harness::print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-F",
                 "Fault tolerance of the two-writer compositions");

    const std::vector<std::string> compositions = {
        "faulty/seqlock", "faulty/fourslot", "faulty/recording"};
    const std::vector<scenario> scenarios = {
        {"clean", fault_class::none, false, false},
        {"writer_crash", fault_class::none, true, false},
        {"writer_stall", fault_class::none, false, true},
        {"port_crash", fault_class::port_crash, false, false},
        {"stale_read", fault_class::stale_read, false, false},
        {"lost_write", fault_class::lost_write, false, false},
        {"torn_value", fault_class::torn_value, false, false},
        {"delayed_visibility", fault_class::delayed_visibility, false, false},
    };
    const std::vector<std::uint64_t> rate_dens = {64, 16};

    table t({"composition", "fault", "rate", "injected", "verdict",
             "latency (ops)", "seeds"});
    std::vector<cell_outcome> cells;
    bool all_acceptable = true;

    for (const std::string& reg : compositions) {
        for (const scenario& sc : scenarios) {
            const bool rated =
                sc.cls != fault_class::none || sc.writer_crash ||
                sc.writer_stall;
            const std::vector<std::uint64_t> dens =
                rated ? rate_dens : std::vector<std::uint64_t>{64};
            for (std::uint64_t den : dens) {
                cell_outcome cell = run_cell(reg, sc, den, flags.ops,
                                             flags.seed, attempts);
                const auto& od = cell.result.online;
                const std::uint64_t injected =
                    cell.result.faults_injected.total() +
                    cell.result.crashes_injected;
                t.row({reg, sc.label, rate_label(sc, den),
                       std::to_string(injected), cell.verdict,
                       od.violation && od.injection_pos != no_event
                           ? std::to_string(od.latency_ops)
                           : "-",
                       std::to_string(cell.seeds_tried)});
                all_acceptable = all_acceptable && cell.acceptable;
                cells.push_back(std::move(cell));
                harness::trim_heap();
            }
        }
    }

    t.print(std::cout);
    std::cout << "\nReading the matrix: crash/stall rows stay `tolerated`\n"
              << "(the paper's fault model, Sections 4 and 7); every value-\n"
              << "corrupting row must read `detected`, with the latency\n"
              << "column showing how many operations the corruption hid\n"
              << "behind before the online verifier caught it.\n\n";

    // Detection-latency scaling: the streaming checker's first-violation
    // latency against fault rate and checking stride. Rarer faults take
    // longer to land in front of a reader; a coarser stride defers the
    // check that would notice. Both effects should be visible in the grid.
    const std::vector<std::uint64_t> scale_rates = {16, 64, 256};
    const std::vector<unsigned> scale_strides = {16, 64, 256};
    table scaling({"rate", "stride", "injected", "latency (ops)", "seeds"});
    std::vector<scaling_cell> scaling_cells;
    for (const std::uint64_t den : scale_rates) {
        for (const unsigned stride : scale_strides) {
            scaling_cell cell = run_scaling_cell(den, stride, flags.ops,
                                                 flags.seed, attempts);
            if (!cell.result.ok) {
                std::cerr << "scaling cell failed: " << cell.result.error
                          << "\n";
                return 1;
            }
            scaling.row({"1/" + std::to_string(den), std::to_string(stride),
                         std::to_string(cell.result.faults_injected.total()),
                         cell.detected
                             ? std::to_string(cell.result.stream.latency_ops)
                             : "missed",
                         std::to_string(cell.seeds_tried)});
            all_acceptable = all_acceptable && cell.detected;
            scaling_cells.push_back(std::move(cell));
            harness::trim_heap();
        }
    }
    std::cout << "Detection-latency scaling (streaming checker, "
              << "faulty/seqlock stale_read):\n";
    scaling.print(std::cout);

    if (!all_acceptable) {
        std::cout << "\nUNEXPECTED verdicts present -- see the matrix.\n";
    }

    if (!flags.json_path.empty()) {
        std::ofstream os(flags.json_path);
        if (!os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fault_matrix");
        for (const cell_outcome& cell : cells) {
            rep.add_run(cell.spec, cell.result, &cell.checks,
                        [&cell](json_writer& w) {
                            w.field("verdict", cell.verdict);
                            w.field("seeds_tried", cell.seeds_tried);
                        });
        }
        for (const scaling_cell& cell : scaling_cells) {
            rep.add_run(cell.spec, cell.result, nullptr,
                        [&cell](json_writer& w) {
                            w.field("verdict",
                                    cell.detected ? "detected" : "missed");
                            w.field("seeds_tried", cell.seeds_tried);
                        });
        }
        rep.add_table("fault_matrix", t);
        rep.add_table("detection_latency_scaling", scaling);
        rep.finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return all_acceptable ? 0 : 1;
}
