// Randomized configuration sweeps for the model checker: many random small
// protocol configurations, every one explored exhaustively. Broadens the
// bound coverage beyond the hand-picked configurations in modelcheck_test.
#include <gtest/gtest.h>

#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "util/rng.hpp"

namespace bloom87::mc {
namespace {

mc_register atomic_reg(mc_value domain, mc_value committed = 0) {
    mc_register r;
    r.level = reg_level::atomic;
    r.domain = domain;
    r.committed = committed;
    return r;
}

class BloomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BloomSweep, RandomScriptsAllAtomic) {
    rng gen(GetParam() * 131 + 17);
    // Random split of a small op budget between the writers and readers.
    const int w0_writes = 1 + static_cast<int>(gen.below(2));
    const int w1_writes = 1 + static_cast<int>(gen.below(2));
    const int readers = 1 + static_cast<int>(gen.below(2));
    const int reads_each = 1 + static_cast<int>(gen.below(2));
    // Keep the largest configurations out (state budget; the hand-picked
    // configurations in modelcheck_test already cover the big bounds).
    const int budget = w0_writes + w1_writes + readers * reads_each;
    if (budget > 4) {
        GTEST_SKIP() << "config too large for the sweep budget";
    }

    sim_state s;
    const auto domain =
        static_cast<mc_value>((w0_writes + w1_writes + 1) * 2);
    s.registers.push_back(atomic_reg(domain));
    s.registers.push_back(atomic_reg(domain));
    std::vector<mc_value> s0, s1;
    mc_value v = 1;
    for (int i = 0; i < w0_writes; ++i) s0.push_back(v++);
    for (int i = 0; i < w1_writes; ++i) s1.push_back(v++);
    s.procs.push_back(make_bloom_writer(0, s0));
    s.procs.push_back(make_bloom_writer(1, s1));
    for (int r = 0; r < readers; ++r) {
        // Mix standard and reversed readers randomly -- both are correct.
        if (gen.chance(1, 2)) {
            s.procs.push_back(make_bloom_reader(
                static_cast<processor_id>(2 + r), reads_each));
        } else {
            s.procs.push_back(make_bloom_reader_reversed(
                static_cast<processor_id>(2 + r), reads_each));
        }
    }

    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << "w0=" << w0_writes << " w1=" << w1_writes << " readers=" << readers
        << "x" << reads_each << "\n"
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BloomSweep,
                         ::testing::Range<std::uint64_t>(0, 16));

class VaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VaSweep, RandomWriterCountsAllAtomic) {
    rng gen(GetParam() * 733 + 3);
    const int writers = 2 + static_cast<int>(gen.below(2));  // 2..3
    const int total_writes = writers;  // one write each
    constexpr mc_value vdom = 6;
    const auto domain =
        static_cast<mc_value>((total_writes + 1) * writers * vdom);

    sim_state s;
    for (int i = 0; i < writers; ++i) s.registers.push_back(atomic_reg(domain));
    for (int w = 0; w < writers; ++w) {
        s.procs.push_back(
            make_va_writer(0, writers, w, {static_cast<mc_value>(w + 1)}, vdom));
    }
    s.procs.push_back(make_va_reader(0, writers, 8,
                                     1 + static_cast<int>(gen.below(2)), vdom));

    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << writers << " writers\n"
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VaSweep, ::testing::Range<std::uint64_t>(0, 6));

class FourSlotSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FourSlotSweep, RandomScriptsAtomicWithAtomicControlBits) {
    rng gen(GetParam() * 31 + 9);
    const int writes = 1 + static_cast<int>(gen.below(2));
    const int reads = 1 + static_cast<int>(gen.below(2));

    sim_state s;
    for (int i = 0; i < 4; ++i) {
        mc_register r;
        r.level = reg_level::safe;
        r.domain = static_cast<mc_value>(writes + 1);
        s.registers.push_back(r);
    }
    for (int i = 0; i < 4; ++i) {
        mc_register r;
        r.level = reg_level::atomic;
        r.domain = 2;
        s.registers.push_back(r);
    }
    std::vector<mc_value> script;
    for (int i = 1; i <= writes; ++i) script.push_back(static_cast<mc_value>(i));
    s.procs.push_back(make_fourslot_writer(0, script));
    s.procs.push_back(make_fourslot_reader(0, 1, reads));

    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << writes << " writes, " << reads << " reads\n"
        << res.first_violation->diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourSlotSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace bloom87::mc
