// Edge-case and adversarial coverage for the linearizability module:
// degenerate histories, pending-operation corner cases, witness validity,
// diagnosis quality, and randomized cross-validation including crashes.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "linearizability/normalize.hpp"
#include "linearizability/regularity.hpp"
#include "linearizability/spec.hpp"
#include "util/rng.hpp"

namespace bloom87 {
namespace {

operation make_op(processor_id proc, op_index idx, op_kind kind, value_t v,
                  event_pos inv, event_pos resp) {
    operation op;
    op.id = op_id{proc, idx};
    op.kind = kind;
    op.value = v;
    op.invoked = inv;
    op.responded = resp;
    return op;
}

// ---------------------------------------------------------------------------
// Degenerate shapes.
// ---------------------------------------------------------------------------

TEST(FastEdge, EmptyHistory) {
    const auto res = check_fast({}, 0);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.linearizable);
    EXPECT_TRUE(res.witness.empty());
}

TEST(FastEdge, OnlyReadsOfInitial) {
    std::vector<operation> h{
        make_op(2, 0, op_kind::read, 7, 0, 1),
        make_op(3, 0, op_kind::read, 7, 0, 2),
        make_op(2, 1, op_kind::read, 7, 3, 4),
    };
    EXPECT_TRUE(check_fast(h, 7).linearizable);
}

TEST(FastEdge, OnlyWrites) {
    // Write-only histories are always linearizable (intervals form an
    // interval order; any linear extension works).
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, 10),
        make_op(1, 0, op_kind::write, 2, 2, 4),
        make_op(0, 1, op_kind::write, 3, 11, 12),
    };
    const auto res = check_fast(h, 0);
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.linearizable);
    EXPECT_EQ(res.witness.size(), 3u);
}

TEST(FastEdge, WitnessRespectsRealTimeOrder) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, 1),
        make_op(1, 0, op_kind::write, 2, 2, 3),
        make_op(2, 0, op_kind::read, 2, 4, 5),
    };
    const auto res = check_fast(h, 0);
    ASSERT_TRUE(res.linearizable);
    ASSERT_EQ(res.witness.size(), 3u);
    EXPECT_EQ(res.witness[0].value, 1);
    EXPECT_EQ(res.witness[1].value, 2);
    EXPECT_EQ(res.witness[2].kind, op_kind::read);
}

TEST(FastEdge, PendingWriteBeforeSequentialSuccessors) {
    // A crashed (pending) write whose value WAS read, followed by more ops
    // from the same writer: exercises the complete/pending split in the
    // per-processor binary searches.
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, no_event),  // crashed, observed
        make_op(2, 0, op_kind::read, 1, 1, 2),
        make_op(0, 1, op_kind::write, 3, 3, 4),
        make_op(2, 1, op_kind::read, 3, 5, 6),
    };
    const auto res = check_fast(h, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

TEST(FastEdge, PendingWriteCannotRescueStaleRead) {
    // read(0) at the very end is stale regardless of the pending write.
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, 1),
        make_op(1, 0, op_kind::write, 2, 2, no_event),  // pending
        make_op(2, 0, op_kind::read, 2, 3, 4),          // observed pending
        make_op(2, 1, op_kind::read, 0, 5, 6),          // initial?! stale
    };
    EXPECT_FALSE(check_fast(h, 0).linearizable);
    EXPECT_FALSE(check_exhaustive(h, 0).linearizable);
}

TEST(FastEdge, DiagnosisNamesTheProblem) {
    std::vector<operation> stale{
        make_op(0, 0, op_kind::write, 1, 0, 1),
        make_op(2, 0, op_kind::read, 0, 2, 3),
    };
    const auto res = check_fast(stale, 0);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res.linearizable);
    EXPECT_FALSE(res.diagnosis.empty());

    std::vector<operation> future{
        make_op(2, 0, op_kind::read, 1, 0, 1),
        make_op(0, 0, op_kind::write, 1, 2, 3),
    };
    const auto res2 = check_fast(future, 0);
    ASSERT_FALSE(res2.linearizable);
    EXPECT_NE(res2.diagnosis.find("after"), std::string::npos);
}

TEST(FastEdge, ManySequentialOpsScale) {
    // 2,000 strictly sequential ops; sanity that nothing is accidentally
    // quadratic in an obvious way and the verdict is right.
    std::vector<operation> h;
    event_pos t = 0;
    value_t current = 0;
    rng gen(3);
    for (op_index i = 0; i < 2000; ++i) {
        if (gen.chance(1, 2)) {
            const value_t v = 1000 + i;
            h.push_back(make_op(static_cast<processor_id>(gen.below(2)),
                                i, op_kind::write, v, t, t + 1));
            current = v;
        } else {
            h.push_back(make_op(static_cast<processor_id>(2 + gen.below(3)),
                                i, op_kind::read, current, t, t + 1));
        }
        t += 2;
    }
    EXPECT_TRUE(check_fast(h, 0).linearizable);
}

// ---------------------------------------------------------------------------
// Exhaustive checker internals.
// ---------------------------------------------------------------------------

TEST(ExhaustiveEdge, MemoizationPrunes) {
    // k concurrent reads of the same value explode combinatorially without
    // memoization; with it the state count stays tiny.
    std::vector<operation> h{make_op(0, 0, op_kind::write, 1, 0, 1)};
    for (int r = 0; r < 10; ++r) {
        h.push_back(make_op(static_cast<processor_id>(2 + r), 0, op_kind::read,
                            1, 2, 100));
    }
    const auto res = check_exhaustive(h, 0);
    ASSERT_TRUE(res.linearizable);
    EXPECT_LT(res.states_explored, 200u);  // 11! paths without memoization
}

TEST(ExhaustiveEdge, WitnessReplayIsValid) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, 5),
        make_op(1, 0, op_kind::write, 2, 1, 3),
        make_op(2, 0, op_kind::read, 2, 2, 6),
        make_op(2, 1, op_kind::read, 1, 7, 8),
    };
    const auto res = check_exhaustive(h, 0);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(res.linearizable);
    // Witness indices refer to the normalized ops (same as input here);
    // replay it against the spec.
    value_t cur = 0;
    for (const std::size_t idx : res.witness) {
        const operation& op = h[idx];
        if (op.kind == op_kind::write) {
            cur = op.value;
        } else {
            EXPECT_EQ(op.value, cur);
        }
    }
}

// ---------------------------------------------------------------------------
// Regularity edges.
// ---------------------------------------------------------------------------

TEST(RegularityEdge, PendingWriteCountsAsOverlapping) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, no_event),
        make_op(2, 0, op_kind::read, 1, 1, 2),
        make_op(2, 1, op_kind::read, 0, 3, 4),  // old value: regular-legal
    };
    EXPECT_TRUE(check_regular_swmr(h, 0).regular);
}

TEST(RegularityEdge, TwoWritersRejected) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 1, 0, 1),
        make_op(1, 0, op_kind::write, 2, 2, 3),
    };
    EXPECT_FALSE(check_regular_swmr(h, 0).regular);
}

TEST(RegularityEdge, EmptyIsRegular) {
    EXPECT_TRUE(check_regular_swmr({}, 0).regular);
}

TEST(SafetyEdge, NonOverlappingReadMustBeExact) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 0, 2, 3),  // stale, no overlap
    };
    EXPECT_FALSE(check_safe_swmr(h, 0).regular);
    h[1].value = 5;
    EXPECT_TRUE(check_safe_swmr(h, 0).regular);
}

TEST(SafetyEdge, OverlappingReadMayReturnGarbage) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 10),
        make_op(2, 0, op_kind::read, 98765, 1, 2),  // anything goes
    };
    EXPECT_TRUE(check_safe_swmr(h, 0).regular);
    // ... which regularity does NOT allow.
    EXPECT_FALSE(check_regular_swmr(h, 0).regular);
}

TEST(SafetyEdge, SafeIsWeakerThanRegular) {
    // Every regular history is safe: spot-check with an overlap case.
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 10),
        make_op(2, 0, op_kind::read, 0, 1, 2),   // old value under overlap
        make_op(2, 1, op_kind::read, 5, 11, 12), // settled value after
    };
    EXPECT_TRUE(check_regular_swmr(h, 0).regular);
    EXPECT_TRUE(check_safe_swmr(h, 0).regular);
}

TEST(SafetyEdge, TwoWritersRejected) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(1, 0, op_kind::write, 6, 2, 3),
    };
    EXPECT_FALSE(check_safe_swmr(h, 0).regular);
}

// ---------------------------------------------------------------------------
// Randomized cross-validation WITH pending operations.
// ---------------------------------------------------------------------------

class CrashCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<operation> random_history_with_crashes(rng& gen) {
    const int num_writes = static_cast<int>(gen.below(4)) + 1;
    const int num_reads = static_cast<int>(gen.below(4)) + 1;
    struct planned {
        processor_id proc;
        op_kind kind;
        value_t value;
    };
    std::vector<planned> plan;
    std::vector<value_t> values{0};
    for (int i = 0; i < num_writes; ++i) {
        values.push_back(100 + i);
        plan.push_back({static_cast<processor_id>(gen.below(2)), op_kind::write,
                        100 + i});
    }
    for (int i = 0; i < num_reads; ++i) {
        plan.push_back({static_cast<processor_id>(2 + gen.below(2)),
                        op_kind::read, values[gen.below(values.size())]});
    }
    gen.shuffle(plan);

    std::vector<operation> ops;
    std::map<processor_id, op_index> counters;
    std::vector<std::size_t> open;
    event_pos clock = 0;
    std::size_t next = 0;
    while (next < plan.size() || !open.empty()) {
        const bool do_open =
            next < plan.size() && (open.empty() || gen.chance(1, 2));
        if (do_open) {
            bool blocked = false;
            for (std::size_t idx : open) {
                if (ops[idx].id.processor == plan[next].proc &&
                    ops[idx].complete() == false &&
                    ops[idx].responded == no_event) {
                    // fine: crashed op does not block per crash semantics,
                    // but keep it simple -- only one open op per processor.
                    blocked = true;
                }
            }
            if (!blocked) {
                operation op;
                op.id = op_id{plan[next].proc, counters[plan[next].proc]++};
                op.kind = plan[next].kind;
                op.value = plan[next].value;
                op.invoked = clock++;
                open.push_back(ops.size());
                ops.push_back(op);
                ++next;
                continue;
            }
        }
        if (!open.empty()) {
            const std::size_t pick = gen.below(open.size());
            // 1-in-5 chance the op crashes instead of responding.
            if (!gen.chance(1, 5)) {
                ops[open[pick]].responded = clock++;
            }
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        }
    }
    return ops;
}

TEST_P(CrashCrossValidation, FastAgreesWithExhaustive) {
    rng gen(GetParam() * 977 + 5);
    for (int iter = 0; iter < 300; ++iter) {
        const auto h = random_history_with_crashes(gen);
        const auto slow = check_exhaustive(h, 0);
        const auto fast = check_fast(h, 0);
        ASSERT_TRUE(slow.ok());
        ASSERT_TRUE(fast.ok()) << *fast.defect;
        ASSERT_EQ(slow.linearizable, fast.linearizable)
            << "disagreement at seed " << GetParam() << " iter " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashCrossValidation,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace bloom87
