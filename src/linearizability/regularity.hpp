// bloom87: regularity checker for single-writer histories.
//
// A single-writer register is REGULAR (Lamport [L2]) when every read returns
// either the value of the last write that completed before the read began,
// or the value of some write overlapping the read. With one writer the
// writes are totally ordered by program order, so the check is direct --
// no search needed. Used by the model checker to verify the substrate
// constructions (Lamport's unary register is regular but not atomic; a safe
// bit becomes regular only under the write-only-changes discipline).
#pragma once

#include <string>
#include <vector>

#include "histories/history.hpp"

namespace bloom87 {

struct regularity_result {
    bool regular{true};
    std::string diagnosis;
};

/// Checks single-writer regularity. All writes must come from one processor;
/// pending operations are handled (pending write = overlaps everything after
/// its invocation; pending read = ignored).
[[nodiscard]] regularity_result check_regular_swmr(
    const std::vector<operation>& ops, value_t initial);

/// Checks single-writer SAFETY (Lamport's weakest level): a read that
/// overlaps NO write must return the latest completed write's value (or the
/// initial value); overlapping reads may return anything. Same input
/// conventions as check_regular_swmr.
[[nodiscard]] regularity_result check_safe_swmr(
    const std::vector<operation>& ops, value_t initial);

}  // namespace bloom87
