// bloom87: the one workload driver every bench/example/stress binary uses.
//
// The driver owns the run lifecycle that used to be copy-pasted across ~14
// binaries: build a register from the registry by name, script a workload
// (histories/workload.hpp), line threads up on a start gate, run warmup and
// a measured epoch, optionally inject crashes/stalls at the protocols'
// vulnerable points, collect per-thread latency samples and event logs
// without cross-thread contention, and hand the recorded history to the
// checker pipeline (checkers.hpp).
//
// Two schedules:
//   * threads -- real concurrency, one OS thread per processor;
//   * seeded  -- a single-thread seeded interleaving at operation
//     granularity (the model-check-style scheduler): same seed, same
//     workload, same history, byte for byte. Determinism is what the
//     harness tests pin.
//
// Two history collectors:
//   * gamma      -- the register (or its adapter) appends simulated
//     invocations/responses into one shared MPMC event_log; required for
//     the recording substrate, whose REAL accesses must interleave with
//     the simulated events in one total order;
//   * per_thread -- each worker records into its own fixed-capacity
//     lock-free ring (histories/thread_log.hpp), stamping every record
//     from one shared relaxed fetch_add counter -- the only shared write
//     on the record path. The driver merges the rings into gamma order by
//     ascending stamp; under the seeded schedule the merge is
//     byte-identical across runs.
//
// A run can additionally carry the bounded-memory STREAMING checker
// (linearizability/streaming.hpp) alongside either collector: it tails
// the shared log (gamma) or consumes the live ring merge (per_thread),
// verifying the run while it happens in O(window) memory. That is the
// only configuration in which a TIMED run may collect: per_thread +
// streaming_monitor checks and discards events instead of retaining them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/registry.hpp"
#include "histories/workload.hpp"

namespace bloom87::harness {

/// How the driver records the run's external schedule.
enum class collect_mode : std::uint8_t {
    none,        ///< throughput runs: nothing recorded
    gamma,       ///< one shared event_log (register/adapter self-logs)
    per_thread,  ///< lock-free per-thread rings, merged by sequence stamp
};

/// How operations are interleaved.
enum class schedule_mode : std::uint8_t {
    threads,  ///< one OS thread per processor (real concurrency)
    seeded,   ///< deterministic single-thread interleaving from the seed
};

/// Adversarial pacing and failure injection, applied to scripted ops.
struct pacing {
    /// Fraction (num/den) of writer ops run through write_paced with a
    /// yield-loop pause (opens the impotent-write window deliberately).
    std::uint64_t writer_pace_num{0};
    std::uint64_t writer_pace_den{1};
    /// Fraction of reader ops run through read_paced (the very slow reader).
    std::uint64_t reader_pace_num{0};
    std::uint64_t reader_pace_den{1};
    /// Number of scheduler yields a paused operation sleeps for.
    unsigned pause_yields{64};
    /// Fraction of writer writes that CRASH mid-protocol (write_crashed),
    /// cycling through the three crash points. Only meaningful on registers
    /// with crash machinery; others fall back to a plain write.
    std::uint64_t crash_num{0};
    std::uint64_t crash_den{1};
};

/// Everything one run needs.
struct run_spec {
    std::string register_name{"bloom/packed"};
    value_t initial{0};
    workload_config load{};
    std::uint64_t seed{1};

    /// 0 = scripted run (each processor runs its script once).
    /// > 0 = timed run: scripts are cycled until the clock expires
    /// (collect must be none -- histories of a timed run are unbounded).
    unsigned duration_ms{0};
    unsigned warmup_ms{0};

    collect_mode collect{collect_mode::none};
    schedule_mode schedule{schedule_mode::threads};
    pacing pace{};

    /// Writers serve scripted reads through the cached-read protocol
    /// (Section 5, 1-2 real reads) where the register supports it.
    bool cached_writer_reads{false};

    /// Sample every k-th operation's latency (0 = no sampling).
    unsigned latency_sample_every{0};

    /// Substrate fault injection (faulty/ registers only; the driver
    /// rejects an active spec on any other family).
    fault_spec fault{};

    /// Run the online verifier concurrently with the run (collect must be
    /// gamma) and fill run_result::online with what it caught.
    bool online_monitor{false};
    /// The verifier re-checks after every this-many new events.
    unsigned monitor_stride{64};

    /// Run the bounded-memory STREAMING checker concurrently with the run
    /// and fill run_result::stream. collect=gamma tails the shared log;
    /// collect=per_thread consumes the live ring merge. The only monitor
    /// that may watch a TIMED run (with collect=per_thread: events are
    /// checked and discarded, never retained).
    bool streaming_monitor{false};
    /// Streaming checker knobs: events of context kept behind the
    /// frontier, and events ingested between incremental checks.
    unsigned stream_window{4096};
    unsigned stream_stride{256};

    /// Timed threads-mode runs only: multiplex this many simulated
    /// open-loop clients over the worker threads (0 = classic closed
    /// loop). Each client issues one scripted op every client_pace_ns;
    /// latency is measured from the client's DUE time, so queueing delay
    /// at saturation is included (no coordinated omission).
    unsigned clients{0};
    std::uint64_t client_pace_ns{1000000};
};

/// Per-processor outcome.
struct thread_result {
    processor_id processor{0};
    port_role role{port_role::reader};
    std::uint64_t reads{0};
    std::uint64_t writes{0};
    double ops_per_sec{0};
    /// Latency percentiles over the sampled ops, in microseconds; zero
    /// when sampling was off. Quantiles come from a log-scale histogram
    /// (util/histogram.hpp, ~6% resolution); max_us is exact.
    double p50_us{0};
    double p99_us{0};
    double p999_us{0};
    double max_us{0};
    std::uint64_t samples{0};
};

/// Latency distribution merged across every worker thread.
struct latency_stats {
    double p50_us{0};
    double p99_us{0};
    double p999_us{0};
    double max_us{0};
    std::uint64_t samples{0};
};

/// What the streaming checker saw during a monitored run
/// (run_spec::streaming_monitor). `latency_ops` mirrors the online
/// verifier's robustness metric: completed operations between the first
/// injected fault and the stream position where the violation was
/// flagged.
struct stream_outcome {
    bool ran{false};
    std::uint64_t events{0};          ///< gamma events ingested
    std::uint64_t ops_completed{0};
    std::uint64_t ops_retired{0};
    std::uint64_t checkpoints{0};
    std::uint64_t retained_peak{0};   ///< bounded-memory witness
    std::uint64_t producer_stalls{0}; ///< ring backpressure events
    bool violation{false};
    std::uint64_t detection_pos{0};
    std::uint64_t latency_ops{0};
    std::string diagnosis;
};

/// What the online verifier saw during a monitored run (run_spec::
/// online_monitor). `latency_ops` is the robustness metric of
/// bench_fault_matrix: completed operations between the first injected
/// fault and the end of the minimal violating prefix -- how long a
/// corrupted execution can masquerade as atomic.
struct online_detection {
    bool ran{false};
    bool violation{false};
    std::string diagnosis;
    /// True when the watcher thread flagged the violation DURING the run
    /// (else the post-run final check caught it).
    bool caught_live{false};
    /// Gamma position at the first injection (no_event: nothing injected).
    event_pos injection_pos{no_event};
    /// Events in the minimal violating prefix (0 when no violation).
    std::uint64_t detection_prefix{0};
    /// Completed ops between injection and detection; meaningful only when
    /// a violation was found and an injection position is known.
    std::uint64_t latency_ops{0};
    /// The operation whose event closes the minimal violating prefix.
    bool culprit_known{false};
    op_id culprit{};
};

/// Whole-run outcome. When `ok` is false nothing else is meaningful except
/// `error`.
struct run_result {
    bool ok{false};
    std::string error;

    register_info info{};
    double measured_s{0};      ///< measured epoch wall time
    std::uint64_t total_reads{0};
    std::uint64_t total_writes{0};
    std::uint64_t crashes_injected{0};
    std::vector<thread_result> threads;

    /// Recorded external schedule (collect != none), in gamma order.
    std::vector<event> events;
    bool log_overflowed{false};

    /// Substrate fault injection counters (faulty/ registers; zero
    /// elsewhere) and the monitors' findings.
    fault_counts faults_injected{};
    online_detection online{};
    stream_outcome stream{};

    /// Merged latency distribution across all threads (empty when
    /// sampling was off and no clients were configured).
    latency_stats latency{};
};

/// Runs one spec. Validates the spec against the registry entry (writer
/// range, recording requirements, timed-run restrictions) and reports
/// violations through run_result::error instead of crashing.
[[nodiscard]] run_result run(const run_spec& spec);

/// Returns freed heap pages to the OS between configs so one config's
/// allocations are not billed to the next (glibc only; no-op elsewhere).
void trim_heap();

/// Single-thread operation-latency microbenchmark through the registry:
/// median-of-batches nanoseconds for a simulated write, a simulated read,
/// and (where supported) the writer's cached read.
struct latency_result {
    bool ok{false};
    std::string error;
    double write_ns{0};
    double read_ns{0};
    double cached_read_ns{-1};  ///< < 0: register has no cached-read path
};

[[nodiscard]] latency_result measure_latency(const std::string& register_name,
                                             std::size_t writers,
                                             std::size_t readers,
                                             std::uint64_t iters);

/// The Section 4 wait-freedom experiment: one participant stalls mid-
/// operation (a lock holder asleep in its critical section, a Bloom writer
/// asleep between its real read and real write, a reader crashed mid-read)
/// while a reader samples its own latency. Blocking designs transmit the
/// stall to the reader's max; wait-free designs do not.
struct stall_spec {
    std::string register_name{"bloom/packed"};
    std::size_t writers{2};
    /// Which side stalls: a writer port or a second reader port.
    port_role stalled_role{port_role::writer};
    unsigned stall_ms{20};
    unsigned run_ms{60};
};

struct stall_result {
    bool ok{false};
    std::string error;
    std::uint64_t reads{0};  ///< reader ops completed during the run
    double p50_us{0};
    double p99_us{0};
    double p999_us{0};
    double max_us{0};
};

[[nodiscard]] stall_result measure_stall(const stall_spec& spec);

}  // namespace bloom87::harness
