// bloom87: simulated shared memory for bounded model checking.
//
// The model checker runs protocol processes over *simulated* base registers
// whose consistency level is explicit -- SAFE, REGULAR, or ATOMIC in
// Lamport's hierarchy -- and explores every interleaving up to a bound.
// This is how the repository re-verifies, mechanically, the claims the paper
// makes by hand-proof:
//
//   * Bloom's protocol over atomic base registers is atomic on every
//     schedule (Sections 5-7);
//   * the tournament extension to four writers is NOT (Section 8);
//   * the substrate algorithms (Simpson's four-slot over safe/regular
//     slots, Lamport's constructions) provide exactly the level they claim.
//
// Register semantics: an ATOMIC access is a single indivisible step (for
// atomic registers this loses no generality: the access touches shared
// state at one instant, and the scheduler can place that instant anywhere
// relative to other processes). SAFE and REGULAR accesses are split into
// begin/end steps so that overlap is observable; a read's result is chosen
// nondeterministically at its end step from the candidate set its overlaps
// permit -- the explorer branches over every candidate:
//
//   REGULAR read: {last value committed before the read began} union
//                 {values of all writes overlapping the read}
//   SAFE read:    committed value if no write overlapped, else ANY value
//                 of the register's domain.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/race_detector.hpp"
#include "histories/events.hpp"
#include "histories/history.hpp"

namespace bloom87::mc {

enum class reg_level : std::uint8_t { safe, regular, atomic };

/// Values in the simulated memory are small integers; tagged pairs are
/// encoded as value*2+tag by the protocol processes.
using mc_value = std::int16_t;

/// One simulated base register.
struct mc_register {
    reg_level level{reg_level::atomic};
    mc_value domain{2};     ///< legal values are 0..domain-1 (safe flicker set)
    mc_value committed{0};
    mc_value active_write{-1};  ///< value being written, -1 when no write active

    /// Opt-in (fault modeling): remember the previously committed value so
    /// faulty processes can serve STALE reads from it. Off by default --
    /// when on, `previous` joins the fingerprint, so state counts of
    /// fault-free explorations stay exactly what the tests pin.
    bool track_previous{false};
    mc_value previous{0};

    /// Race-detection mode only: the declared synchronization class of this
    /// register's accesses (analysis/contracts.hpp). Ignored unless the
    /// sim_state's detector is armed.
    analysis::sync_class sync{analysis::sync_class::sync};

    /// Reads in progress: (processor, candidate bitmask). domain <= 64.
    std::vector<std::pair<std::int16_t, std::uint64_t>> active_reads;
};

class process;

/// The full model-checker state: registers, processes, and the external
/// history accumulated so far. Copyable (deep) for DFS.
class sim_state {
public:
    sim_state() = default;
    sim_state(const sim_state& other);
    sim_state& operator=(const sim_state&) = delete;
    sim_state(sim_state&&) = default;
    sim_state& operator=(sim_state&&) = default;

    std::vector<mc_register> registers;
    std::vector<std::unique_ptr<process>> procs;

    /// External history: completed and open simulated operations.
    std::vector<operation> hist;

    /// --- register access API used by processes ---

    /// Atomic single-step read/write (register must be level atomic).
    [[nodiscard]] mc_value read_atomic(std::size_t reg);
    void write_atomic(std::size_t reg, mc_value v);

    /// Split-phase access for safe/regular registers.
    void begin_read(std::size_t reg, std::int16_t proc);
    /// Number of values the pending read may return (the explorer's fanout).
    [[nodiscard]] int read_candidates(std::size_t reg, std::int16_t proc) const;
    /// Completes the read, returning the choice-th candidate (ascending).
    mc_value end_read(std::size_t reg, std::int16_t proc, int choice);
    void begin_write(std::size_t reg, mc_value v);
    void end_write(std::size_t reg);

    /// --- external-history hooks ---
    /// Opens a simulated operation; returns its index in hist.
    std::size_t begin_op(processor_id proc, op_index op, op_kind kind, value_t v);
    /// Closes it (reads pass their returned value).
    void end_op(std::size_t hist_index, value_t read_result);

    /// Deterministic structural fingerprint for memoization.
    void fingerprint(std::vector<std::uint64_t>& out) const;

    /// Monotone event counter giving inv/resp positions.
    [[nodiscard]] event_pos now() const noexcept { return clock_; }

    /// --- happens-before race detection (opt-in; off by default) ---

    /// Arms the FastTrack-style detector over procs.size() threads and
    /// registers.size() locations. Every subsequent register access feeds
    /// it using each register's declared `sync` class; the detector's
    /// clock digest joins fingerprint() (keeping memoization sound), and
    /// the first conflicting unordered pair of plain accesses latches
    /// race(). Call only after `registers` and `procs` are populated.
    void enable_race_detection();

    /// The first detected race, nullptr while race-free (or unarmed).
    [[nodiscard]] const analysis::race_report* race() const noexcept {
        return detector_.has_value() && detector_->first_race().has_value()
                   ? &*detector_->first_race()
                   : nullptr;
    }

    /// Explorer hook: the index (into procs) of the process about to step;
    /// its accesses are attributed to that thread id by the detector.
    void set_acting(std::int16_t proc) noexcept { acting_ = proc; }

private:
    event_pos clock_{0};
    std::optional<analysis::race_detector> detector_;
    std::int16_t acting_{0};
};

/// A protocol process: a small-step state machine over a sim_state.
class process {
public:
    virtual ~process() = default;
    [[nodiscard]] virtual std::unique_ptr<process> clone() const = 0;
    [[nodiscard]] virtual bool done(const sim_state&) const = 0;
    /// Number of nondeterministic outcomes of the next step (>= 1).
    [[nodiscard]] virtual int fanout(const sim_state&) const = 0;
    virtual void step(sim_state&, int choice) = 0;
    virtual void fingerprint(std::vector<std::uint64_t>&) const = 0;
};

}  // namespace bloom87::mc
