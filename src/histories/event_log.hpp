// bloom87: concurrent append-only event log.
//
// The log is the executable stand-in for the paper's sequence gamma: every
// recorded event's slot index IS its position in gamma. Appends reserve a
// slot with one fetch_add and then publish the payload with a release store,
// so concurrent recording perturbs the protocol under test as little as
// possible while still yielding a total order.
//
// Note on fidelity: the *order* in which real-register accesses draw their
// slots must be a legal serialization of those accesses. The recording
// substrate (src/registers/recording.hpp) guarantees this by holding a
// per-register spinlock across {apply access, draw slot}, which makes each
// real access atomic and time-stamped at a single instant -- i.e. the
// recording substrate is, by construction, an atomic register whose
// *-actions we know exactly.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "histories/events.hpp"

namespace bloom87 {

/// Fixed-capacity MPMC append-only log of gamma events.
class event_log {
public:
    /// Capacity must cover the whole run; appending past it is a programming
    /// error (assert). Sized generously by callers.
    explicit event_log(std::size_t capacity)
        : slots_(capacity), ready_(capacity) {
        for (auto& f : ready_) f.value.store(false, std::memory_order_relaxed);
    }

    event_log(const event_log&) = delete;
    event_log& operator=(const event_log&) = delete;

    /// Appends one event; returns its gamma position. Thread-safe.
    /// Appending past capacity drops the event and records `overflowed` --
    /// a supported condition callers check after the run (the monitor
    /// reports it as a verdict; harnesses assert on it).
    event_pos append(const event& e) noexcept {
        const auto pos = next_.fetch_add(1, std::memory_order_relaxed);
        if (pos >= slots_.size()) {
            overflowed_.store(true, std::memory_order_release);
            return pos;
        }
        slots_[pos] = e;
        ready_[pos].value.store(true, std::memory_order_release);
        return pos;
    }

    /// True if any append was dropped for lack of capacity.
    [[nodiscard]] bool overflowed() const noexcept {
        return overflowed_.load(std::memory_order_acquire);
    }

    /// Number of events appended so far (some may still be publishing).
    [[nodiscard]] std::size_t size() const noexcept {
        return std::min(next_.load(std::memory_order_acquire), slots_.size());
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

    /// Copies out the prefix of fully published events. Intended for use
    /// after worker threads are joined, when everything is published.
    [[nodiscard]] std::vector<event> snapshot() const {
        const std::size_t n = size();
        std::vector<event> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Wait (briefly) for any in-flight publish; after join this
            // never spins.
            while (!ready_[i].value.load(std::memory_order_acquire)) {}
            out.push_back(slots_[i]);
        }
        return out;
    }

    /// Copies out one published event by position (`pos` < size()),
    /// spinning briefly if its publish is still in flight. The streaming
    /// checker tails a live log one event at a time with this instead of
    /// re-copying ever-growing prefixes.
    [[nodiscard]] event read_at(event_pos pos) const noexcept {
        while (!ready_[pos].value.load(std::memory_order_acquire)) {}
        return slots_[pos];
    }

    /// Copies out the first `n` events (clamped to size()), spinning briefly
    /// on any slot still mid-publish. Safe to call WHILE writers append --
    /// the prefix is a legal gamma prefix because slot index is gamma
    /// position -- which is what lets the online verifier poll a live run.
    [[nodiscard]] std::vector<event> snapshot_prefix(std::size_t n) const {
        n = std::min(n, size());
        std::vector<event> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            while (!ready_[i].value.load(std::memory_order_acquire)) {}
            out.push_back(slots_[i]);
        }
        return out;
    }

    /// Resets the log for reuse between test iterations. Not thread-safe.
    void clear() noexcept {
        const std::size_t n = size();
        for (std::size_t i = 0; i < n; ++i) {
            ready_[i].value.store(false, std::memory_order_relaxed);
        }
        overflowed_.store(false, std::memory_order_relaxed);
        next_.store(0, std::memory_order_release);
    }

private:
    struct flag {
        std::atomic<bool> value{false};
    };

    std::vector<event> slots_;
    mutable std::vector<flag> ready_;
    std::atomic<event_pos> next_{0};
    std::atomic<bool> overflowed_{false};
};

}  // namespace bloom87
