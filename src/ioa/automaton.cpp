#include "ioa/automaton.hpp"

#include <sstream>

namespace bloom87::ioa {

std::string to_string(act a) {
    switch (a) {
        case act::read_request: return "R_start";
        case act::read_ack: return "R_finish";
        case act::write_request: return "W_start";
        case act::write_ack: return "W_finish";
        case act::star_read: return "R*";
        case act::star_write: return "W*";
    }
    return "?";
}

std::string to_string(const action& a) {
    std::ostringstream oss;
    oss << to_string(a.kind) << "@" << a.channel;
    if (a.kind == act::write_request || a.kind == act::read_ack || is_star(a.kind)) {
        oss << "(" << a.value << ")";
    }
    return oss.str();
}

composition::composition(std::vector<automaton*> parts)
    : parts_(std::move(parts)) {}

std::vector<std::pair<std::size_t, action>> composition::enabled() const {
    std::vector<std::pair<std::size_t, action>> out;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        for (action& a : parts_[i]->enabled()) {
            out.emplace_back(i, std::move(a));
        }
    }
    return out;
}

void composition::apply(std::size_t owner, const action& a) {
    parts_[owner]->apply(a);
    if (parts_[owner]->in_internal(a)) return;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        if (i == owner) continue;
        if (parts_[i]->in_input(a)) parts_[i]->apply(a);
    }
}

std::string composition::describe() const {
    std::ostringstream oss;
    for (const automaton* p : parts_) {
        oss << p->name() << "\n";
    }
    return oss.str();
}

}  // namespace bloom87::ioa
