#include "analysis/race_detector.hpp"

#include <algorithm>
#include <cassert>

namespace bloom87::analysis {

std::string race_report::describe(std::string_view location_label) const {
    auto access = [](bool w) { return w ? "write" : "read"; };
    std::string out = "data race on ";
    out += location_label;
    out += " ";
    out += std::to_string(location);
    out += ": plain ";
    out += access(first_is_write);
    out += " by thread ";
    out += std::to_string(first_thread);
    out += " (access #";
    out += std::to_string(first_pos);
    out += ") is unordered with plain ";
    out += access(second_is_write);
    out += " by thread ";
    out += std::to_string(second_thread);
    out += " (access #";
    out += std::to_string(second_pos);
    out += ")";
    return out;
}

void race_detector::reset(std::size_t threads, std::size_t locations) {
    threads_ = threads;
    locations_ = locations;
    vc_.assign(threads * threads, 0);
    // C_t[t] starts at 1 so "never accessed" (clock entry 0) is
    // distinguishable from "accessed before any synchronization".
    for (std::size_t t = 0; t < threads; ++t) vc(t, t) = 1;
    rel_.assign(locations * threads, 0);
    wclk_.assign(locations * threads, 0);
    rclk_.assign(locations * threads, 0);
    wpos_.assign(locations * threads, 0);
    rpos_.assign(locations * threads, 0);
    accesses_ = 0;
    races_ = 0;
    first_.reset();
}

void race_detector::flag(std::size_t loc, std::size_t prior_thread,
                         bool prior_is_write, std::uint64_t prior_pos,
                         std::size_t thread, bool is_write) {
    ++races_;
    if (first_.has_value()) return;
    race_report r;
    r.location = static_cast<std::uint32_t>(loc);
    r.first_thread = static_cast<std::int16_t>(prior_thread);
    r.second_thread = static_cast<std::int16_t>(thread);
    r.first_is_write = prior_is_write;
    r.second_is_write = is_write;
    r.first_pos = prior_pos;
    r.second_pos = accesses_;
    first_ = std::move(r);
}

void race_detector::on_access(std::size_t thread, std::size_t location,
                              bool is_write, sync_class cls) {
    assert(thread < threads_ && location < locations_);
    ++accesses_;
    const std::size_t base = location * threads_;
    switch (cls) {
        case sync_class::relaxed:
            // Atomic but non-synchronizing: never a data race, never an
            // ordering edge. Counted and done.
            return;
        case sync_class::sync: {
            if (is_write) {
                // Release store: publish this thread's clock as the
                // location's sync clock, then advance the local epoch so
                // later accesses are ordered after the store.
                for (std::size_t u = 0; u < threads_; ++u) {
                    rel_[base + u] = vc(thread, u);
                }
                ++vc(thread, thread);
            } else {
                // Acquire load: join the clock published by the (last)
                // store this load reads from.
                for (std::size_t u = 0; u < threads_; ++u) {
                    vc(thread, u) = std::max(vc(thread, u), rel_[base + u]);
                }
            }
            return;
        }
        case sync_class::plain:
            break;
    }

    // Plain access: conflicting accesses by other threads must already be
    // ordered before this one (their recorded clock entry covered by OUR
    // view of their clock).
    for (std::size_t u = 0; u < threads_; ++u) {
        if (u == thread) continue;
        if (wclk_[base + u] > vc(thread, u)) {
            flag(location, u, true, wpos_[base + u], thread, is_write);
            break;
        }
        if (is_write && rclk_[base + u] > vc(thread, u)) {
            flag(location, u, false, rpos_[base + u], thread, is_write);
            break;
        }
    }
    if (is_write) {
        wclk_[base + thread] = vc(thread, thread);
        wpos_[base + thread] = accesses_;
    } else {
        rclk_[base + thread] = vc(thread, thread);
        rpos_[base + thread] = accesses_;
    }
}

void race_detector::fingerprint(std::vector<std::uint64_t>& out) const {
    out.reserve(out.size() + 1 +
                (vc_.size() + rel_.size() + wclk_.size() + rclk_.size() + 1) /
                    2);
    // Tag word guards against a detector digest aliasing other state.
    out.push_back(0x4ace0000ULL | (races_ > 0 ? 1ULL : 0ULL));
    auto emit = [&out](const std::vector<std::uint32_t>& v) {
        std::uint64_t acc = 0;
        bool half = false;
        for (std::uint32_t w : v) {
            if (!half) {
                acc = w;
                half = true;
            } else {
                out.push_back(acc << 32 | w);
                half = false;
            }
        }
        if (half) out.push_back(acc << 32 | 0xffffffffULL);
    };
    emit(vc_);
    emit(rel_);
    emit(wclk_);
    emit(rclk_);
}

}  // namespace bloom87::analysis
