// check_history: offline atomicity checker for recorded executions.
//
// Usage:
//   check_history record [seed]      # record a live execution, print gamma
//   check_history check  [file]      # check a gamma file (default: stdin)
//
// `record` runs a short concurrent execution of the two-writer register
// over the recording substrate and prints it in the serialized gamma format
// (pipe to a file to archive). `check` parses a gamma file and runs all
// applicable checkers: history well-formedness, the paper's constructive
// linearizer (with per-lemma diagnostics), and the polynomial register
// checker. Exit status: 0 atomic, 2 not atomic, 1 malformed input.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/serialize.hpp"
#include "histories/stats.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

using namespace bloom87;

namespace {

int do_record(std::uint64_t seed) {
    event_log log(1 << 14);
    two_writer_register<value_t, recording_register> reg(0, &log);
    start_gate gate;
    auto writer_loop = [&](int index) {
        rng pace(seed * 2 + static_cast<std::uint64_t>(index));
        auto& wr = index == 0 ? reg.writer0() : reg.writer1();
        for (std::uint32_t i = 0; i < 40; ++i) {
            const bool stall = pace.chance(1, 6);
            wr.write_paced(unique_value(static_cast<processor_id>(index), i), [&] {
                if (stall) {
                    std::this_thread::sleep_for(std::chrono::microseconds(40));
                }
            });
        }
    };
    std::thread t0([&] { gate.wait(); writer_loop(0); });
    std::thread t1([&] { gate.wait(); writer_loop(1); });
    std::thread t2([&] {
        gate.wait();
        auto rd = reg.make_reader(2);
        rng pace(seed + 77);
        for (int i = 0; i < 60; ++i) {
            (void)rd.read_paced([&] {
                if (pace.chance(1, 4)) {
                    std::this_thread::sleep_for(std::chrono::microseconds(30));
                }
            });
            std::this_thread::sleep_for(std::chrono::microseconds(10));
        }
    });
    gate.open();
    t0.join();
    t1.join();
    t2.join();
    write_gamma(std::cout, log.snapshot(), 0);
    return 0;
}

int do_check(std::istream& in) {
    const gamma_parse_result parsed_text = read_gamma(in);
    if (!parsed_text.ok()) {
        std::cerr << "parse error: " << *parsed_text.error << "\n";
        return 1;
    }
    std::printf("parsed %zu gamma events (initial value %lld)\n",
                parsed_text.gamma.size(),
                static_cast<long long>(parsed_text.initial));

    const parse_result hist =
        parse_history(parsed_text.gamma, parsed_text.initial);
    if (!hist.ok()) {
        std::cerr << "history malformed at position " << hist.error->position
                  << ": " << hist.error->message << "\n";
        return 1;
    }
    std::printf("well-formed: %zu simulated operations\n", hist.hist.ops.size());
    std::fputs(format_stats(compute_stats(hist.hist)).c_str(), stdout);

    bool any_real = false;
    for (const operation& op : hist.hist.ops) {
        any_real |= !op.real_accesses.empty();
    }

    int verdict = 0;
    if (any_real) {
        const bloom_result res = bloom_linearize(hist.hist);
        if (!res.ok()) {
            std::printf("constructive linearizer: gamma not protocol-shaped (%s);"
                        " falling back to the generic checker\n",
                        res.defect->c_str());
        } else if (res.atomic) {
            std::printf(
                "constructive linearizer: ATOMIC (%zu potent, %zu impotent "
                "writes; reads: %zu potent / %zu impotent / %zu initial)\n",
                res.potent_count, res.impotent_count, res.reads_of_potent,
                res.reads_of_impotent, res.reads_of_initial);
        } else {
            std::printf("constructive linearizer: NOT ATOMIC -- %s\n",
                        res.diagnosis.c_str());
            verdict = 2;
        }
    } else {
        std::printf("no real-register events: external-schedule checking only\n");
    }

    const fast_check_result fast =
        check_fast(hist.hist.ops, parsed_text.initial);
    if (!fast.ok()) {
        std::cerr << "fast checker defect: " << *fast.defect << "\n";
        return 1;
    }
    if (fast.linearizable) {
        std::printf("fast register checker : ATOMIC\n");
    } else {
        std::printf("fast register checker : NOT ATOMIC -- %s\n",
                    fast.diagnosis.c_str());
        verdict = 2;
    }
    return verdict;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string mode = argc > 1 ? argv[1] : "check";
    if (mode == "record") {
        const std::uint64_t seed =
            argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
        return do_record(seed);
    }
    if (mode == "check") {
        if (argc > 2) {
            std::ifstream f(argv[2]);
            if (!f) {
                std::cerr << "cannot open " << argv[2] << "\n";
                return 1;
            }
            return do_check(f);
        }
        return do_check(std::cin);
    }
    std::cerr << "usage: " << argv[0] << " record [seed] | check [file]\n";
    return 64;
}
