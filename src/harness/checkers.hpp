// bloom87: the one checker pipeline.
//
// Every verification path in the repository -- the Section 7 constructive
// linearizer, the polynomial Gibbons-Korach checker, the exhaustive
// Wing-Gong search, the runtime atomicity monitor, and the single-writer
// regularity/safety checkers -- sits behind one interface: hand the
// pipeline a recorded event sequence, name the checkers, get one verdict
// per checker. Checkers that cannot apply to the history (exhaustive over
// 62 ops, regularity with two writers, the Bloom linearizer without real
// accesses) report WHY they were skipped instead of failing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "histories/events.hpp"
#include "histories/history.hpp"

namespace bloom87::harness {

enum class checker_kind : std::uint8_t {
    bloom,       ///< Section 7 constructive linearizer (needs real accesses)
    fast,        ///< polynomial unique-writes checker (Gibbons-Korach)
    exhaustive,  ///< Wing-Gong search with memoization (<= 62 ops)
    monitor,     ///< the runtime atomicity monitor, fed by replay
    regular,     ///< Lamport regularity (single-writer histories)
    safe,        ///< Lamport safety (single-writer histories)
    race,        ///< happens-before race detector over real accesses
};

[[nodiscard]] std::string checker_name(checker_kind k);

/// Parses one checker name; nullopt for unknown names.
[[nodiscard]] std::optional<checker_kind> parse_checker(std::string_view name);

/// Parses a comma-separated checker list ("fast,bloom"). "none" and ""
/// yield an empty list. Unknown names land in `error`.
[[nodiscard]] std::optional<std::vector<checker_kind>> parse_checker_list(
    std::string_view list, std::string* error);

/// One checker's verdict on one history.
struct check_verdict {
    checker_kind kind{checker_kind::fast};
    bool ran{false};             ///< false: skipped (see skip_reason)
    std::string skip_reason;
    bool pass{false};            ///< meaningful when ran
    std::string diagnosis;       ///< failure detail when !pass
    double millis{0};            ///< checker runtime
    /// Bloom checker only: Section 7 classification counts.
    std::size_t impotent_writes{0};
    std::size_t potent_writes{0};
    std::size_t reads_of_potent{0};
    std::size_t reads_of_impotent{0};
    std::size_t reads_of_initial{0};
    /// Race checker only: detector statistics and the contract applied.
    std::size_t races{0};
    std::size_t accesses_checked{0};
    std::string contract;  ///< declared sync class ("sync"/"relaxed"/"plain")
};

/// The pipeline's result: history parse outcome plus per-checker verdicts.
struct pipeline_result {
    bool parsed{false};
    std::string parse_error;
    std::size_t operations{0};
    std::vector<check_verdict> verdicts;

    /// True when the history parsed and every checker that RAN passed.
    [[nodiscard]] bool all_pass() const noexcept {
        if (!parsed) return false;
        for (const check_verdict& v : verdicts) {
            if (v.ran && !v.pass) return false;
        }
        return true;
    }
};

/// Parses `events` into a history and runs each requested checker on it.
/// `register_name` (registry spelling, e.g. "bloom/recording") selects the
/// declared synchronization contract the race checker applies to the real
/// accesses; the race checker reports itself skipped when it is empty or
/// has no contract row (src/analysis/contracts.cpp). Other checkers
/// ignore it.
[[nodiscard]] pipeline_result run_checkers(
    const std::vector<event>& events, value_t initial,
    const std::vector<checker_kind>& kinds,
    const std::string& register_name = "");

}  // namespace bloom87::harness
