#include "linearizability/fast_register.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "linearizability/normalize.hpp"
#include "linearizability/spec.hpp"

namespace bloom87 {
namespace {

// Per-processor operation timeline. A processor is sequential, so both
// invocation and response positions are strictly increasing down each list.
struct processor_ops {
    std::vector<std::size_t> writes;           // all writes, in program order
    std::vector<std::size_t> complete_writes;  // responded only (resp monotone)
    std::vector<std::size_t> complete_reads;   // responded only
};

}  // namespace

fast_check_result check_fast(const std::vector<operation>& raw, value_t initial) {
    fast_check_result out;
    normalized_history norm = normalize_history(raw, initial, true);
    if (!norm.ok()) {
        out.defect = norm.defect;
        return out;
    }
    const std::vector<operation>& ops = norm.ops;

    // --- node numbering: 0 = virtual initial write, 1.. = real writes ---
    std::vector<std::size_t> write_ops;          // node-1 -> op index
    std::map<value_t, std::size_t> node_of_value;  // value -> node
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == op_kind::write) {
            node_of_value[ops[i].value] = write_ops.size() + 1;
            write_ops.push_back(i);
        }
    }
    const std::size_t num_nodes = write_ops.size() + 1;

    auto dict_node = [&](const operation& r) -> std::size_t {
        if (r.value == initial) return 0;
        return node_of_value.at(r.value);  // normalize guarantees presence
    };

    // --- local condition: no read from the future ---
    for (const operation& op : ops) {
        if (op.kind != op_kind::read) continue;
        const std::size_t d = dict_node(op);
        if (d != 0 && op.responded < ops[write_ops[d - 1]].invoked) {
            out.diagnosis = "read returned a value written only after it finished";
            return out;
        }
    }

    // --- group per processor ---
    std::map<processor_id, processor_ops> per_proc;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        auto& po = per_proc[ops[i].id.processor];
        if (ops[i].kind == op_kind::write) po.writes.push_back(i);
        if (ops[i].complete()) {
            (ops[i].kind == op_kind::write ? po.complete_writes
                                           : po.complete_reads).push_back(i);
        }
    }
    for (auto& [proc, po] : per_proc) {
        auto by_inv = [&](std::size_t a, std::size_t b) {
            return ops[a].invoked < ops[b].invoked;
        };
        std::sort(po.writes.begin(), po.writes.end(), by_inv);
        std::sort(po.complete_writes.begin(), po.complete_writes.end(), by_inv);
        std::sort(po.complete_reads.begin(), po.complete_reads.end(), by_inv);
    }

    // Last write of `po` whose response precedes `x`, or none. Pending
    // (crashed) writes never respond, so only complete writes qualify --
    // and over those, responses are monotone in program order.
    auto last_write_before = [&](const processor_ops& po,
                                 event_pos x) -> std::optional<std::size_t> {
        auto it = std::partition_point(
            po.complete_writes.begin(), po.complete_writes.end(),
            [&](std::size_t w) { return ops[w].responded < x; });
        if (it == po.complete_writes.begin()) return std::nullopt;
        return *(it - 1);
    };
    // First write of `po` invoked after `x`, or none.
    auto first_write_after = [&](const processor_ops& po,
                                 event_pos x) -> std::optional<std::size_t> {
        auto it = std::partition_point(
            po.writes.begin(), po.writes.end(),
            [&](std::size_t w) { return ops[w].invoked <= x; });
        if (it == po.writes.end()) return std::nullopt;
        return *it;
    };
    auto last_read_before = [&](const processor_ops& po,
                                event_pos x) -> std::optional<std::size_t> {
        auto it = std::partition_point(
            po.complete_reads.begin(), po.complete_reads.end(),
            [&](std::size_t r) { return ops[r].responded < x; });
        if (it == po.complete_reads.begin()) return std::nullopt;
        return *(it - 1);
    };

    // --- build the constraint graph ---
    std::vector<std::vector<std::size_t>> adj(num_nodes);
    std::vector<std::size_t> indegree(num_nodes, 0);
    auto add_edge = [&](std::size_t from, std::size_t to) {
        if (from == to) return;
        adj[from].push_back(to);
        ++indegree[to];
    };
    for (std::size_t n = 1; n < num_nodes; ++n) add_edge(0, n);  // initial first

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const operation& op = ops[i];
        if (op.kind == op_kind::write) {
            const std::size_t wn = node_of_value.at(op.value);
            for (const auto& [proc, po] : per_proc) {
                if (auto w1 = last_write_before(po, op.invoked)) {  // (a)
                    add_edge(node_of_value.at(ops[*w1].value), wn);
                }
            }
        } else {
            const std::size_t d = dict_node(op);
            for (const auto& [proc, po] : per_proc) {
                if (auto wb = last_write_before(po, op.invoked)) {  // (b)
                    const std::size_t wbn = node_of_value.at(ops[*wb].value);
                    if (wbn != d) add_edge(wbn, d);
                }
                if (auto wc = first_write_after(po, op.responded)) {  // (c)
                    add_edge(d, node_of_value.at(ops[*wc].value));
                }
                if (auto rb = last_read_before(po, op.invoked)) {  // (d)
                    const std::size_t rbn = dict_node(ops[*rb]);
                    if (rbn != d) add_edge(rbn, d);
                }
            }
        }
    }

    // --- topological sort (Kahn) ---
    std::vector<std::size_t> topo;
    topo.reserve(num_nodes);
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<>> ready;
    for (std::size_t n = 0; n < num_nodes; ++n) {
        if (indegree[n] == 0) ready.push(n);
    }
    while (!ready.empty()) {
        const std::size_t n = ready.top();
        ready.pop();
        topo.push_back(n);
        for (std::size_t m : adj[n]) {
            if (--indegree[m] == 0) ready.push(m);
        }
    }
    if (topo.size() != num_nodes) {
        out.diagnosis =
            "cyclic write-order constraints (e.g. an overwritten value reappeared)";
        return out;
    }

    // --- construct the witness linearization ---
    std::vector<std::vector<std::size_t>> reads_of(num_nodes);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].kind == op_kind::read) reads_of[dict_node(ops[i])].push_back(i);
    }
    for (auto& rs : reads_of) {
        std::sort(rs.begin(), rs.end(), [&](std::size_t a, std::size_t b) {
            return ops[a].invoked < ops[b].invoked;
        });
    }
    std::vector<const operation*> seq;
    seq.reserve(ops.size());
    for (std::size_t n : topo) {
        if (n != 0) seq.push_back(&ops[write_ops[n - 1]]);
        for (std::size_t r : reads_of[n]) seq.push_back(&ops[r]);
    }

    // --- re-verify the witness (guards against any gap in the theory) ---
    if (!satisfies_register_property(seq, initial)) {
        out.defect = "internal error: witness violates the register property";
        return out;
    }
    event_pos min_resp_suffix = no_event;
    for (std::size_t k = seq.size(); k-- > 0;) {
        if (min_resp_suffix < seq[k]->invoked) {
            out.defect = "internal error: witness violates real-time order";
            return out;
        }
        min_resp_suffix = std::min(min_resp_suffix, seq[k]->responded);
    }

    out.linearizable = true;
    out.witness.reserve(seq.size());
    for (const operation* op : seq) out.witness.push_back(*op);
    return out;
}

}  // namespace bloom87
