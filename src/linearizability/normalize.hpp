// bloom87: history normalization shared by both generic checkers.
//
// Converts a raw operation list (possibly containing pending/crashed
// operations) into the form the checkers consume:
//
//  * pending READS are dropped -- they returned nothing, so any
//    linearization of the rest extends to them trivially;
//  * pending WRITES whose value was returned by some read are kept with an
//    infinite response time (they must have taken effect);
//  * pending writes nobody read are dropped -- sound for registers: an
//    unobserved write with an open interval can always be appended to the
//    linearization after every operation that overlaps it.
//
// Also validates the unique-writes discipline the fast checker relies on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "histories/history.hpp"

namespace bloom87 {

struct normalized_history {
    std::vector<operation> ops;     ///< complete ops only (resp may be "infinity")
    value_t initial{0};
    std::optional<std::string> defect;  ///< set if the raw history is malformed

    [[nodiscard]] bool ok() const noexcept { return !defect.has_value(); }
};

/// See file comment. `require_unique_writes` additionally rejects histories
/// where two writes carry the same value (the fast checker's precondition).
[[nodiscard]] normalized_history normalize_history(
    const std::vector<operation>& raw, value_t initial,
    bool require_unique_writes = true);

}  // namespace bloom87
