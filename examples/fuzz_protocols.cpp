// fuzz_protocols: long-running randomized torture for the whole stack.
//
// Each round draws a random configuration (workload mix, pacing, reader
// count, crash pattern, substrate), runs a recorded multi-threaded
// execution, and verifies it with the constructive linearizer and the
// polynomial checker. Any disagreement or violation stops the run with the
// serialized gamma so it can be replayed through check_history.
//
// Usage: fuzz_protocols [rounds] [base_seed]     (defaults: 50, 1)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/serialize.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

using namespace bloom87;

namespace {

struct round_config {
    std::size_t readers;
    std::uint32_t writes_per_writer;
    int reads_per_reader;
    std::uint64_t writer_stall_num;   // stall probability numerator /32
    std::uint64_t reader_stall_num;
    bool inject_crashes;
    bool use_cached_reads;
};

round_config draw_config(rng& gen) {
    round_config c;
    c.readers = 1 + gen.below(4);
    c.writes_per_writer = 200 + static_cast<std::uint32_t>(gen.below(1800));
    c.reads_per_reader = 200 + static_cast<int>(gen.below(1800));
    c.writer_stall_num = gen.below(6);
    c.reader_stall_num = gen.below(8);
    c.inject_crashes = gen.chance(1, 3);
    c.use_cached_reads = gen.chance(1, 3);
    return c;
}

bool run_round(std::uint64_t seed, const round_config& cfg) {
    const std::size_t expected_events =
        2 * cfg.writes_per_writer * 4 +
        cfg.readers * static_cast<std::size_t>(cfg.reads_per_reader) * 5 +
        2 * cfg.writes_per_writer * 2;  // headroom for cached writer reads
    event_log log(expected_events * 2 + 1024);
    two_writer_register<value_t, recording_register> reg(0, &log);
    start_gate gate;

    std::vector<std::thread> pool;
    for (int w = 0; w < 2; ++w) {
        pool.emplace_back([&, w] {
            rng pace(seed * 7 + static_cast<std::uint64_t>(w));
            auto& wr = w == 0 ? reg.writer0() : reg.writer1();
            gate.wait();
            for (std::uint32_t i = 0; i < cfg.writes_per_writer; ++i) {
                const value_t v = unique_value(static_cast<processor_id>(w), i);
                if (cfg.inject_crashes && pace.chance(1, 40)) {
                    wr.write_crashed(
                        v, static_cast<crash_point>(pace.below(3)));
                    continue;
                }
                const bool stall = pace.chance(cfg.writer_stall_num, 32);
                wr.write_paced(v, [&] {
                    if (stall) {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(20));
                    }
                });
                if (cfg.use_cached_reads && pace.chance(1, 10)) {
                    (void)wr.read_cached();
                }
            }
        });
    }
    for (std::size_t r = 0; r < cfg.readers; ++r) {
        pool.emplace_back([&, r] {
            rng pace(seed * 13 + static_cast<std::uint64_t>(r) + 100);
            auto rd = reg.make_reader(static_cast<processor_id>(2 + r));
            gate.wait();
            for (int i = 0; i < cfg.reads_per_reader; ++i) {
                const bool stall = pace.chance(cfg.reader_stall_num, 32);
                (void)rd.read_paced([&] {
                    if (stall) {
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(25));
                    }
                });
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    if (log.overflowed()) {
        std::fprintf(stderr, "seed %llu: LOG OVERFLOW (harness bug)\n",
                     static_cast<unsigned long long>(seed));
        return false;
    }
    const std::vector<event> gamma = log.snapshot();
    parse_result parsed = parse_history(gamma, 0);
    if (!parsed.ok()) {
        std::fprintf(stderr, "seed %llu: MALFORMED GAMMA: %s\n",
                     static_cast<unsigned long long>(seed),
                     parsed.error->message.c_str());
        write_gamma(std::cerr, gamma, 0);
        return false;
    }

    const auto fast = check_fast(parsed.hist.ops, 0);
    const bool fast_ok = fast.ok() && fast.linearizable;

    bool constructive_ok = true;
    if (!cfg.use_cached_reads) {
        // The constructive linearizer expects the canonical 3-read shape.
        const bloom_result res = bloom_linearize(parsed.hist);
        constructive_ok = res.ok() && res.atomic;
        if (!constructive_ok) {
            std::fprintf(stderr, "seed %llu: CONSTRUCTIVE FAILED: %s\n",
                         static_cast<unsigned long long>(seed),
                         res.ok() ? res.diagnosis.c_str()
                                  : res.defect->c_str());
        }
    }
    if (!fast_ok) {
        std::fprintf(stderr, "seed %llu: FAST CHECKER FAILED: %s\n",
                     static_cast<unsigned long long>(seed),
                     fast.ok() ? fast.diagnosis.c_str() : fast.defect->c_str());
    }
    if (!fast_ok || !constructive_ok) {
        write_gamma(std::cerr, gamma, 0);
        return false;
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const int rounds = argc > 1 ? std::atoi(argv[1]) : 50;
    const std::uint64_t base_seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    rng meta(base_seed);
    for (int round = 0; round < rounds; ++round) {
        const std::uint64_t seed = base_seed * 100000 + static_cast<std::uint64_t>(round);
        const round_config cfg = draw_config(meta);
        if (!run_round(seed, cfg)) {
            std::fprintf(stderr, "FUZZING FOUND A FAILURE at round %d\n", round);
            return 1;
        }
        if ((round + 1) % 10 == 0) {
            std::printf("fuzz: %d/%d rounds clean\n", round + 1, rounds);
            std::fflush(stdout);
        }
    }
    std::printf("fuzz: all %d rounds clean (atomic everywhere)\n", rounds);
    return 0;
}
