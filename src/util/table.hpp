// bloom87: plain-text table rendering for bench report binaries.
//
// Every bench target regenerates a figure or table from the paper (or an
// extra measurement table); they all print through this one formatter so the
// reports in EXPERIMENTS.md have a uniform shape.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace bloom87 {

/// Column-aligned ASCII table builder.
///
///     table t({"Processor", "Action", "Reg0", "Reg1", "Value"});
///     t.row({"initial", "-", "'a',0", "'b',0", "'a'"});
///     t.print(std::cout);
class table {
public:
    explicit table(std::vector<std::string> header) : header_(std::move(header)) {}

    /// Appends one row; short rows are padded with empty cells.
    void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Structured access for machine-readable emission (harness reports).
    [[nodiscard]] const std::vector<std::string>& header() const noexcept {
        return header_;
    }
    [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
        const noexcept {
        return rows_;
    }

    /// Renders the table with a separator line under the header.
    void print(std::ostream& os) const;

    /// Renders to a string (for golden-output tests).
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for bench rows).
[[nodiscard]] std::string fixed(double value, int digits = 2);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Prints a section banner used by all report binaries.
void print_banner(std::ostream& os, std::string_view experiment_id,
                  std::string_view title);

}  // namespace bloom87
