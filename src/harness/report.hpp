// bloom87: the one JSON report schema ("bloom87-harness-v4").
//
// Every bench/example binary emits the same machine-readable shape so
// cross-PR tracking tooling parses one format:
//
//   {
//     "schema": "bloom87-harness-v4",
//     "bench": "<binary name>",
//     "environment": { "hardware_concurrency": N, "compiler": "...",
//                      "build": "release|debug" },
//     "runs": [ {
//        "register": "...",
//        "config":   { writers, readers, ops, seed, duration_ms,
//                      schedule, collect, stream_window, stream_stride,
//                      clients, client_pace_ns },
//        "totals":   { reads, writes, ops_per_sec, measured_s,
//                      crashes_injected, events,
//                      latency: { p50_us, p99_us, p999_us, max_us,
//                                 samples } },
//        "threads":  [ { processor, role, reads, writes, ops_per_sec,
//                        p50_us, p99_us, p999_us, max_us, samples } ],
//        "checkers": [ { checker, ran, pass, skip_reason, diagnosis,
//                        millis, operations, impotent_writes } ],
//        "faults":   { class, rate_num, rate_den, fault_seed, at,
//                      stale_reads, lost_writes, torn_values,
//                      delayed_writes, port_crashes, injected,
//                      injection_pos, online: { violation, caught_live,
//                      detection_prefix, latency_ops, culprit_processor,
//                      culprit_op, diagnosis } },
//        "analysis": { checker: "race", ran, skip_reason | pass, races,
//                      accesses_checked, contract, diagnosis, millis },
//        "stream":   { events, ops_completed, ops_retired, checkpoints,
//                      retained_peak, producer_stalls, violation,
//                      detection_pos, latency_ops, diagnosis },
//        ...bench-specific extras... } ],
//     "tables": [ { "name": "...", "header": [...], "rows": [[...]] } ]
//   }
//
// `runs` carries harness-driven runs; `tables` carries any ASCII table a
// bench also prints (so table-shaped benches get --json for free). Either
// section may be empty.
//
// v1 -> v2: runs gained the optional `faults` block (substrate fault
// injection counters plus the online verifier's detection record); it is
// present only on runs with an active fault spec or a monitored run.
// Everything else is unchanged, so v1 consumers need only accept the new
// schema string and ignore the extra key.
//
// v2 -> v3: runs gained the optional `analysis` block, present exactly when
// the race checker was REQUESTED (--check race): when it ran it carries the
// happens-before detector's verdict and statistics; when it was skipped it
// carries ran:false plus the explicit skip_reason (skipped work always says
// why). The race checker also appears in `checkers` like any other kind.
//
// v3 -> v4: `totals` gained the optional merged `latency` percentile block
// (histogram-derived p50/p99/p999 plus the exact max), `threads` entries
// gained p999_us, `config` names the streaming-checker and open-loop-client
// knobs when set, and runs gained the optional `stream` block carrying the
// bounded-memory streaming checker's outcome (present exactly when
// run_spec::streaming_monitor was on). Existing v3 consumers need only
// accept the new schema string and ignore the extra keys.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "harness/checkers.hpp"
#include "harness/driver.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace bloom87 {
class table;
}

namespace bloom87::harness {

/// Streaming report emitter. Usage:
///   report_writer rep(os, "throughput");
///   rep.add_run(spec, result, checks);       // any number of times
///   rep.add_table("scaling", t);             // after the last add_run
///   rep.finish();
class report_writer {
public:
    report_writer(std::ostream& os, const std::string& bench);
    ~report_writer();

    report_writer(const report_writer&) = delete;
    report_writer& operator=(const report_writer&) = delete;

    /// Emits one run. `extra` (optional) appends bench-specific fields to
    /// the run object through the raw json_writer.
    void add_run(const run_spec& spec, const run_result& result,
                 const pipeline_result* checks = nullptr,
                 const std::function<void(json_writer&)>& extra = nullptr);

    /// Emits one ASCII table structurally. All add_run calls must precede
    /// the first add_table.
    void add_table(const std::string& name, const table& t);

    /// Closes the document (also run by the destructor).
    void finish();

private:
    std::ostream& os_;
    json_writer w_;
    enum class section : std::uint8_t { runs, tables, done } section_{
        section::runs};
};

/// Writes a one-document report for a single run to `path`; the workhorse
/// behind every binary's --json flag. Returns false (with a message on
/// stderr) when the file cannot be written.
[[nodiscard]] bool write_report_file(const std::string& path,
                                     const std::string& bench,
                                     const run_spec& spec,
                                     const run_result& result,
                                     const pipeline_result* checks = nullptr);

}  // namespace bloom87::harness
