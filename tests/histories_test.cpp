// Tests for src/histories: event log concurrency, history parsing and
// validation, workload generation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include <sstream>

#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "histories/history.hpp"
#include "histories/serialize.hpp"
#include "histories/stats.hpp"
#include "histories/workload.hpp"

namespace bloom87 {
namespace {

event sim_ev(event_kind k, processor_id proc, op_index op, value_t v = 0) {
    event e;
    e.kind = k;
    e.processor = proc;
    e.op = op;
    e.value = v;
    return e;
}

event real_ev(event_kind k, std::uint8_t reg, processor_id proc, op_index op,
              bool tag, value_t v, event_pos observed = no_event) {
    event e;
    e.kind = k;
    e.reg = reg;
    e.processor = proc;
    e.op = op;
    e.tag = tag;
    e.value = v;
    e.observed_write = observed;
    return e;
}

TEST(EventLog, AppendsSequentially) {
    event_log log(16);
    EXPECT_EQ(log.append(sim_ev(event_kind::sim_invoke_read, 2, 0)), 0u);
    EXPECT_EQ(log.append(sim_ev(event_kind::sim_respond_read, 2, 0, 7)), 1u);
    EXPECT_EQ(log.size(), 2u);
    const auto snap = log.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].kind, event_kind::sim_invoke_read);
    EXPECT_EQ(snap[1].value, 7);
}

TEST(EventLog, ClearResets) {
    event_log log(8);
    log.append(sim_ev(event_kind::sim_invoke_read, 2, 0));
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.append(sim_ev(event_kind::sim_invoke_write, 0, 0)), 0u);
}

TEST(EventLog, ConcurrentAppendsAllLand) {
    constexpr int threads = 8, per_thread = 2000;
    event_log log(threads * per_thread);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                log.append(sim_ev(event_kind::sim_invoke_read,
                                  static_cast<processor_id>(t),
                                  static_cast<op_index>(i)));
            }
        });
    }
    for (auto& th : pool) th.join();
    const auto snap = log.snapshot();
    ASSERT_EQ(snap.size(), static_cast<std::size_t>(threads * per_thread));
    // Every (processor, op) pair appears exactly once.
    std::set<std::pair<processor_id, op_index>> seen;
    for (const event& e : snap) seen.insert({e.processor, e.op});
    EXPECT_EQ(seen.size(), snap.size());
}

TEST(ParseHistory, BuildsOperations) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));
    g.push_back(real_ev(event_kind::real_read, 1, 0, 0, false, 0));
    g.push_back(real_ev(event_kind::real_write, 0, 0, 0, false, 5));
    g.push_back(sim_ev(event_kind::sim_respond_write, 0, 0));
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));
    g.push_back(real_ev(event_kind::real_read, 0, 2, 0, false, 5, 2));
    g.push_back(real_ev(event_kind::real_read, 1, 2, 0, false, 0));
    g.push_back(real_ev(event_kind::real_read, 0, 2, 0, false, 5, 2));
    g.push_back(sim_ev(event_kind::sim_respond_read, 2, 0, 5));

    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok()) << res.error->message;
    ASSERT_EQ(res.hist.ops.size(), 2u);
    const operation* w = res.hist.find(op_id{0, 0});
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->kind, op_kind::write);
    EXPECT_EQ(w->value, 5);
    EXPECT_EQ(w->real_accesses.size(), 2u);
    const operation* r = res.hist.find(op_id{2, 0});
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->kind, op_kind::read);
    EXPECT_EQ(r->value, 5);
    EXPECT_EQ(r->real_accesses.size(), 3u);
}

TEST(ParseHistory, SecondInvocationMeansCrashRecovery) {
    // A processor invoking again without a response crashed mid-operation:
    // the first operation is kept as pending.
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 1));
    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.hist.ops.size(), 2u);
    EXPECT_FALSE(res.hist.ops[0].complete());
    EXPECT_FALSE(res.hist.ops[1].complete());
}

TEST(ParseHistory, RejectsResponseWithoutInvocation) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_respond_read, 2, 0, 1));
    EXPECT_FALSE(parse_history(g, 0).ok());
}

TEST(ParseHistory, RejectsStaleObservedWrite) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));
    g.push_back(real_ev(event_kind::real_write, 0, 0, 0, false, 5));
    g.push_back(sim_ev(event_kind::sim_respond_write, 0, 0));
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));
    // Claims to observe the initial value although position 1 wrote reg 0.
    g.push_back(real_ev(event_kind::real_read, 0, 2, 0, false, 0));
    EXPECT_FALSE(parse_history(g, 0).ok());
}

TEST(ParseHistory, KeepsCrashedWriteAsPending) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));
    g.push_back(real_ev(event_kind::real_read, 1, 0, 0, false, 0));
    // No real write, no response: the writer crashed.
    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res.hist.ops.size(), 1u);
    EXPECT_FALSE(res.hist.ops[0].complete());
}

TEST(ParseHistory, FormatsEvents) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));
    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok());
    EXPECT_NE(format_history(res.hist).find("W_start"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------------

TEST(Stats, SequentialHistoryHasNoOverlap) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));
    g.push_back(sim_ev(event_kind::sim_respond_write, 0, 0));
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));
    g.push_back(sim_ev(event_kind::sim_respond_read, 2, 0, 5));
    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok());
    const history_stats s = compute_stats(res.hist);
    EXPECT_EQ(s.operations, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.reads, 1u);
    EXPECT_EQ(s.pending, 0u);
    EXPECT_EQ(s.processors, 2u);
    EXPECT_EQ(s.max_concurrency, 1u);
    EXPECT_EQ(s.overlapping_pairs, 0u);
    EXPECT_EQ(s.contended_ops, 0u);
}

TEST(Stats, OverlappingOpsCounted) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));   // pos 0
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));       // pos 1
    g.push_back(sim_ev(event_kind::sim_invoke_read, 3, 0));       // pos 2
    g.push_back(sim_ev(event_kind::sim_respond_read, 3, 0, 0));   // pos 3
    g.push_back(sim_ev(event_kind::sim_respond_read, 2, 0, 5));   // pos 4
    g.push_back(sim_ev(event_kind::sim_respond_write, 0, 0));     // pos 5
    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok());
    const history_stats s = compute_stats(res.hist);
    EXPECT_EQ(s.max_concurrency, 3u);
    EXPECT_EQ(s.overlapping_pairs, 3u);  // all three pairwise overlap
    EXPECT_EQ(s.contended_ops, 3u);
}

TEST(Stats, PendingOpOverlapsEverythingAfterIt) {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));  // crashes
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));
    g.push_back(sim_ev(event_kind::sim_respond_read, 2, 0, 5));
    const parse_result res = parse_history(g, 0);
    ASSERT_TRUE(res.ok());
    const history_stats s = compute_stats(res.hist);
    EXPECT_EQ(s.pending, 1u);
    EXPECT_EQ(s.overlapping_pairs, 1u);
    EXPECT_EQ(s.max_concurrency, 2u);
}

TEST(Stats, FormatMentionsTheNumbers) {
    history_stats s;
    s.operations = 7;
    s.writes = 3;
    s.reads = 4;
    s.max_concurrency = 2;
    const std::string text = format_stats(s);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("max 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

std::vector<event> sample_gamma() {
    std::vector<event> g;
    g.push_back(sim_ev(event_kind::sim_invoke_write, 0, 0, 5));
    g.push_back(real_ev(event_kind::real_read, 1, 0, 0, true, -3));
    g.push_back(real_ev(event_kind::real_write, 0, 0, 0, true, 5));
    g.push_back(sim_ev(event_kind::sim_respond_write, 0, 0));
    g.push_back(sim_ev(event_kind::sim_invoke_read, 2, 0));
    g.push_back(real_ev(event_kind::real_read, 0, 2, 0, true, 5, 2));
    g.push_back(real_ev(event_kind::real_read, 1, 2, 0, true, -3));
    g.push_back(real_ev(event_kind::real_read, 0, 2, 0, true, 5, 2));
    g.push_back(sim_ev(event_kind::sim_respond_read, 2, 0, 5));
    return g;
}

TEST(Serialize, RoundTripsExactly) {
    const std::vector<event> g = sample_gamma();
    std::ostringstream os;
    write_gamma(os, g, 7);
    std::istringstream is(os.str());
    const gamma_parse_result res = read_gamma(is);
    ASSERT_TRUE(res.ok()) << *res.error;
    EXPECT_EQ(res.initial, 7);
    ASSERT_EQ(res.gamma.size(), g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
        EXPECT_EQ(res.gamma[i].kind, g[i].kind) << i;
        EXPECT_EQ(res.gamma[i].processor, g[i].processor) << i;
        EXPECT_EQ(res.gamma[i].op, g[i].op) << i;
        EXPECT_EQ(res.gamma[i].reg, g[i].reg) << i;
        EXPECT_EQ(res.gamma[i].tag, g[i].tag) << i;
        EXPECT_EQ(res.gamma[i].value, g[i].value) << i;
        EXPECT_EQ(res.gamma[i].observed_write, g[i].observed_write) << i;
    }
}

TEST(Serialize, ToleratesCommentsAndBlankLines) {
    std::istringstream is(
        "# a comment\n"
        "\n"
        "gamma v1 initial=3\n"
        "W_start proc=0 op=0 value=9   # trailing comment\n"
        "\n"
        "W_finish proc=0 op=0 value=0\n");
    const gamma_parse_result res = read_gamma(is);
    ASSERT_TRUE(res.ok()) << *res.error;
    EXPECT_EQ(res.initial, 3);
    EXPECT_EQ(res.gamma.size(), 2u);
    EXPECT_EQ(res.gamma[0].value, 9);
}

TEST(Serialize, RejectsMissingHeader) {
    std::istringstream is("W_start proc=0 op=0 value=9\n");
    EXPECT_FALSE(read_gamma(is).ok());
}

TEST(Serialize, RejectsUnknownEventKind) {
    std::istringstream is("gamma v1 initial=0\nW_zap proc=0 op=0\n");
    EXPECT_FALSE(read_gamma(is).ok());
}

TEST(Serialize, RejectsMalformedField) {
    std::istringstream is("gamma v1 initial=0\nW_start proc=zero op=0\n");
    EXPECT_FALSE(read_gamma(is).ok());
}

TEST(Serialize, RoundTripParsesBackToSameHistory) {
    const std::vector<event> g = sample_gamma();
    std::ostringstream os;
    write_gamma(os, g, 0);
    std::istringstream is(os.str());
    const gamma_parse_result back = read_gamma(is);
    ASSERT_TRUE(back.ok());
    const parse_result a = parse_history(g, 0);
    const parse_result b = parse_history(back.gamma, back.initial);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(format_history(a.hist), format_history(b.hist));
}

TEST(Workload, UniqueValuesNeverCollide) {
    std::set<value_t> seen;
    for (processor_id p = 0; p < 4; ++p) {
        for (std::uint32_t c = 0; c < 100; ++c) {
            EXPECT_TRUE(seen.insert(unique_value(p, c)).second);
            EXPECT_NE(unique_value(p, c), 0);
        }
    }
}

TEST(Workload, GeneratesRequestedShape) {
    workload_config cfg;
    cfg.writers = 2;
    cfg.readers = 3;
    cfg.ops_per_writer = 40;
    cfg.ops_per_reader = 25;
    const workload w = make_workload(cfg, 1234);
    ASSERT_EQ(w.scripts.size(), 5u);
    EXPECT_EQ(w.scripts[0].size(), 40u);
    EXPECT_EQ(w.scripts[4].size(), 25u);
    EXPECT_EQ(w.total_ops(), 2 * 40u + 3 * 25u);
    for (std::size_t r = 2; r < 5; ++r) {
        for (const workload_op& op : w.scripts[r]) {
            EXPECT_EQ(op.kind, op_kind::read);
        }
    }
}

TEST(Workload, WriterReadFractionRespected) {
    workload_config cfg;
    cfg.ops_per_writer = 400;
    cfg.writer_read_num = 1;
    cfg.writer_read_den = 2;
    const workload w = make_workload(cfg, 99);
    int reads = 0;
    for (const workload_op& op : w.scripts[0]) reads += (op.kind == op_kind::read);
    EXPECT_GT(reads, 120);
    EXPECT_LT(reads, 280);
}

TEST(Workload, DeterministicAcrossCalls) {
    workload_config cfg;
    const workload a = make_workload(cfg, 7);
    const workload b = make_workload(cfg, 7);
    ASSERT_EQ(a.scripts.size(), b.scripts.size());
    for (std::size_t i = 0; i < a.scripts.size(); ++i) {
        ASSERT_EQ(a.scripts[i].size(), b.scripts[i].size());
        for (std::size_t j = 0; j < a.scripts[i].size(); ++j) {
            EXPECT_EQ(a.scripts[i][j].kind, b.scripts[i][j].kind);
            EXPECT_EQ(a.scripts[i][j].value, b.scripts[i][j].value);
        }
    }
}

}  // namespace
}  // namespace bloom87
