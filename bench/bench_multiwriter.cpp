// [TAB-H] Beyond two writers (paper, Section 8).
//
// Section 8 shows the natural tournament extension fails for ANY two-writer
// building block, and points at timestamp-based multi-writer protocols
// ([VA]). This bench makes that landscape concrete:
//
//   1. a correctness matrix from bounded exhaustive model checking --
//      Bloom (2 writers) PASS, tournament (4 writers) FAIL, VA-style
//      timestamps (2..3 writers) PASS, split-write mutant FAIL;
//   2. the price of generality for the 2-writer case: Bloom pays one tag
//      bit and 1 read per write; VA pays a 64-bit timestamp per register
//      and n reads per write. Latency measured through the harness registry
//      (one uniform virtual call per op keeps the comparison honest).
//
//   bench_multiwriter [--json BENCH_multiwriter.json]
#include <fstream>
#include <iostream>
#include <string>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::mc;
namespace harness = bloom87::harness;

namespace {

mc_register atomic_cell(mc_value domain, mc_value committed = 0) {
    mc_register r;
    r.level = reg_level::atomic;
    r.domain = domain;
    r.committed = committed;
    return r;
}

std::string verdict(const explore_result& r) {
    return std::string(r.property_holds ? "PASS" : "FAIL") + " (" +
           with_commas(r.distinct_histories) + " histories)";
}

void latency_row(table& t, const std::string& label,
                 const std::string& reg_name, std::size_t writers,
                 const std::string& regs, const std::string& bits) {
    const harness::latency_result res =
        harness::measure_latency(reg_name, writers, 1, 1000000);
    if (!res.ok) {
        t.row({label, "?", "?", regs, bits});
        std::cerr << reg_name << ": " << res.error << "\n";
        return;
    }
    t.row({label, fixed(res.write_ns, 1), fixed(res.read_ns, 1), regs, bits});
}

}  // namespace

int main(int argc, char** argv) {
    harness::common_flags flags;
    harness::flag_parser parser("bench_multiwriter",
                                "the Section 8 multi-writer landscape");
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        harness::print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-H", "Multi-writer landscape (Section 8)");

    table m({"protocol", "writers", "extra state per register", "verdict"});
    {
        sim_state s;
        s.registers = {atomic_cell(12, encode_tagged(0, false)),
                       atomic_cell(12, encode_tagged(0, false))};
        s.procs.push_back(make_bloom_writer(0, {1, 2}));
        s.procs.push_back(make_bloom_writer(1, {3, 4}));
        s.procs.push_back(make_bloom_reader(2, 1));
        explore_config cfg;
        m.row({"Bloom two-writer", "2", "1 tag bit", verdict(explore(s, cfg))});
    }
    {
        sim_state s;
        s.registers = {atomic_cell(10, encode_tagged(1, false)),
                       atomic_cell(10, encode_tagged(1, false))};
        s.procs.push_back(make_tournament_writer(0, {2}));
        s.procs.push_back(make_tournament_writer(1, {3}));
        s.procs.push_back(make_tournament_writer(3, {4}));
        s.procs.push_back(make_tournament_reader(4, 2));
        explore_config cfg;
        cfg.initial = 1;
        m.row({"tournament (Sec. 8, broken)", "4", "1 tag bit / level",
               verdict(explore(s, cfg))});
    }
    {
        sim_state s;
        for (int i = 0; i < 4; ++i) {
            s.registers.push_back(atomic_cell(i % 2 == 0 ? 5 : 2));
        }
        s.procs.push_back(make_split_bloom_writer(0, {1, 2}));
        s.procs.push_back(make_split_bloom_writer(1, {3, 4}));
        s.procs.push_back(make_split_bloom_reader(2, 2));
        explore_config cfg;
        m.row({"Bloom with SPLIT value/tag writes", "2",
               "1 tag bit (separate word)", verdict(explore(s, cfg))});
    }
    {
        constexpr int n = 2;
        constexpr mc_value vdom = 4;
        sim_state s;
        for (int i = 0; i < n; ++i) {
            s.registers.push_back(atomic_cell((2 + 1) * n * vdom));
        }
        s.procs.push_back(make_va_writer(0, n, 0, {1}, vdom));
        s.procs.push_back(make_va_writer(0, n, 1, {2}, vdom));
        s.procs.push_back(make_va_reader(0, n, 4, 2, vdom));
        explore_config cfg;
        m.row({"VA timestamps", "2", "unbounded timestamp",
               verdict(explore(s, cfg))});
    }
    {
        constexpr int n = 3;
        constexpr mc_value vdom = 5;
        sim_state s;
        for (int i = 0; i < n; ++i) {
            s.registers.push_back(atomic_cell((3 + 1) * n * vdom));
        }
        s.procs.push_back(make_va_writer(0, n, 0, {1}, vdom));
        s.procs.push_back(make_va_writer(0, n, 1, {2}, vdom));
        s.procs.push_back(make_va_writer(0, n, 2, {3}, vdom));
        s.procs.push_back(make_va_reader(0, n, 4, 2, vdom));
        explore_config cfg;
        m.row({"VA timestamps", "3", "unbounded timestamp",
               verdict(explore(s, cfg))});
    }
    m.print(std::cout);

    std::cout << "\nThe price of Bloom's economy, measured (single-threaded "
              << "ns/op\nthrough the harness registry):\n\n";
    table c({"register", "write ns", "read ns", "registers",
             "bits beyond value"});
    latency_row(c, "Bloom two-writer", "bloom/packed", 2, "2",
                "1 (the tag bit)");
    latency_row(c, "VA timestamps (2 writers)", "va/seqlock", 2, "2",
                "96 (64b ts + 32b id)");
    latency_row(c, "VA timestamps (4 writers)", "va/seqlock", 4, "4",
                "96 (64b ts + 32b id)");
    c.print(std::cout);

    std::cout << "\nExpected shape: the tournament and the split-write mutant\n"
              << "FAIL; VA PASSES for any writer count but pays timestamp\n"
              << "space and n-register scans; Bloom's two-writer economy (one\n"
              << "bit, one extra read) is exactly what the paper contributes.\n";

    if (!flags.json_path.empty()) {
        std::ofstream os(flags.json_path);
        if (!os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "multiwriter");
        rep.add_table("correctness_matrix", m);
        rep.add_table("latency_price", c);
        rep.finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return 0;
}
