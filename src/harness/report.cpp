#include "harness/report.hpp"

#include <fstream>
#include <iostream>
#include <thread>

namespace bloom87::harness {
namespace {

[[nodiscard]] const char* schedule_name(schedule_mode m) {
    return m == schedule_mode::seeded ? "seeded" : "threads";
}

[[nodiscard]] const char* collect_name(collect_mode m) {
    switch (m) {
        case collect_mode::gamma: return "gamma";
        case collect_mode::per_thread: return "per_thread";
        case collect_mode::none: break;
    }
    return "none";
}

}  // namespace

report_writer::report_writer(std::ostream& os, const std::string& bench)
    : os_(os), w_(os) {
    w_.begin_object();
    w_.field("schema", "bloom87-harness-v4");
    w_.field("bench", bench);
    w_.key("environment").begin_object();
    w_.field("hardware_concurrency", std::thread::hardware_concurrency());
#if defined(__VERSION__)
    w_.field("compiler", __VERSION__);
#endif
#if defined(NDEBUG)
    w_.field("build", "release");
#else
    w_.field("build", "debug");
#endif
    w_.end_object();
    w_.key("runs").begin_array();
}

report_writer::~report_writer() { finish(); }

void report_writer::add_run(const run_spec& spec, const run_result& result,
                            const pipeline_result* checks,
                            const std::function<void(json_writer&)>& extra) {
    if (section_ != section::runs) return;
    w_.begin_object();
    w_.field("register", spec.register_name);
    w_.field("ok", result.ok);
    if (!result.ok) w_.field("error", result.error);

    w_.key("config").begin_object();
    w_.field("writers", static_cast<std::uint64_t>(spec.load.writers));
    w_.field("readers", static_cast<std::uint64_t>(spec.load.readers));
    w_.field("ops_per_writer",
             static_cast<std::uint64_t>(spec.load.ops_per_writer));
    w_.field("ops_per_reader",
             static_cast<std::uint64_t>(spec.load.ops_per_reader));
    w_.field("seed", spec.seed);
    w_.field("duration_ms", spec.duration_ms);
    w_.field("warmup_ms", spec.warmup_ms);
    w_.field("schedule", schedule_name(spec.schedule));
    w_.field("collect", collect_name(spec.collect));
    w_.field("cached_writer_reads", spec.cached_writer_reads);
    if (spec.streaming_monitor) {
        w_.field("stream_window", spec.stream_window);
        w_.field("stream_stride", spec.stream_stride);
    }
    if (spec.clients > 0) {
        w_.field("clients", spec.clients);
        w_.field("client_pace_ns", spec.client_pace_ns);
    }
    w_.end_object();

    w_.key("totals").begin_object();
    w_.field("reads", result.total_reads);
    w_.field("writes", result.total_writes);
    w_.field("measured_s", result.measured_s);
    const double total_ops =
        static_cast<double>(result.total_reads + result.total_writes);
    w_.field("ops_per_sec",
             result.measured_s > 0 ? total_ops / result.measured_s : 0.0);
    w_.field("crashes_injected", result.crashes_injected);
    w_.field("events", static_cast<std::uint64_t>(result.events.size()));
    w_.field("log_overflowed", result.log_overflowed);
    // v4: merged latency percentiles across every worker (histogram-based,
    // ~6% resolution; max is exact), present when anything was sampled.
    if (result.latency.samples > 0) {
        w_.key("latency").begin_object();
        w_.field("p50_us", result.latency.p50_us);
        w_.field("p99_us", result.latency.p99_us);
        w_.field("p999_us", result.latency.p999_us);
        w_.field("max_us", result.latency.max_us);
        w_.field("samples", result.latency.samples);
        w_.end_object();
    }
    w_.end_object();

    w_.key("threads").begin_array();
    for (const thread_result& tr : result.threads) {
        w_.begin_object();
        w_.field("processor", static_cast<int>(tr.processor));
        w_.field("role",
                 tr.role == port_role::writer ? "writer" : "reader");
        w_.field("reads", tr.reads);
        w_.field("writes", tr.writes);
        w_.field("ops_per_sec", tr.ops_per_sec);
        if (tr.samples > 0) {
            w_.field("p50_us", tr.p50_us);
            w_.field("p99_us", tr.p99_us);
            w_.field("p999_us", tr.p999_us);
            w_.field("max_us", tr.max_us);
            w_.field("samples", tr.samples);
        }
        w_.end_object();
    }
    w_.end_array();

    if (checks != nullptr) {
        w_.key("checkers").begin_array();
        for (const check_verdict& v : checks->verdicts) {
            w_.begin_object();
            w_.field("checker", checker_name(v.kind));
            w_.field("ran", v.ran);
            if (!v.ran) {
                w_.field("skip_reason", v.skip_reason);
            } else {
                w_.field("pass", v.pass);
                if (!v.pass) w_.field("diagnosis", v.diagnosis);
                w_.field("millis", v.millis);
                if (v.kind == checker_kind::bloom) {
                    w_.field("potent_writes",
                             static_cast<std::uint64_t>(v.potent_writes));
                    w_.field("impotent_writes",
                             static_cast<std::uint64_t>(v.impotent_writes));
                    w_.field("reads_of_potent",
                             static_cast<std::uint64_t>(v.reads_of_potent));
                    w_.field("reads_of_impotent",
                             static_cast<std::uint64_t>(v.reads_of_impotent));
                    w_.field("reads_of_initial",
                             static_cast<std::uint64_t>(v.reads_of_initial));
                }
                if (v.kind == checker_kind::race) {
                    w_.field("races", static_cast<std::uint64_t>(v.races));
                    w_.field("accesses_checked",
                             static_cast<std::uint64_t>(v.accesses_checked));
                    w_.field("contract", v.contract);
                }
            }
            w_.end_object();
        }
        w_.end_array();
        w_.field("operations", static_cast<std::uint64_t>(checks->operations));
        w_.field("history_parsed", checks->parsed);
        if (!checks->parsed) w_.field("parse_error", checks->parse_error);
        w_.field("all_pass", checks->all_pass());

        // v3: the analysis block mirrors the race checker's verdict whenever
        // the checker was REQUESTED: detector statistics when it ran, an
        // explicit skip_reason when it could not (skipped work says why).
        for (const check_verdict& v : checks->verdicts) {
            if (v.kind != checker_kind::race) continue;
            w_.key("analysis").begin_object();
            w_.field("checker", "race");
            w_.field("ran", v.ran);
            if (!v.ran) {
                w_.field("skip_reason", v.skip_reason);
            } else {
                w_.field("pass", v.pass);
                w_.field("races", static_cast<std::uint64_t>(v.races));
                w_.field("accesses_checked",
                         static_cast<std::uint64_t>(v.accesses_checked));
                w_.field("contract", v.contract);
                if (!v.pass) w_.field("diagnosis", v.diagnosis);
                w_.field("millis", v.millis);
            }
            w_.end_object();
            break;
        }
    }

    // v2: substrate fault injection + online detection, on fault runs and
    // monitored runs only (other runs keep their v1 shape exactly).
    if (spec.fault.active() || result.faults_injected.total() > 0 ||
        result.online.ran) {
        const fault_counts& fc = result.faults_injected;
        w_.key("faults").begin_object();
        w_.field("class", fault_class_name(spec.fault.cls));
        w_.field("rate_num", spec.fault.rate_num);
        w_.field("rate_den", spec.fault.rate_den);
        w_.field("fault_seed", spec.fault.seed);
        w_.field("at", spec.fault.at);
        w_.field("stale_reads", fc.stale_reads);
        w_.field("lost_writes", fc.lost_writes);
        w_.field("torn_values", fc.torn_values);
        w_.field("delayed_writes", fc.delayed_writes);
        w_.field("port_crashes", fc.port_crashes);
        w_.field("injected", fc.total());
        if (fc.first_injection != no_event) {
            w_.field("injection_pos", fc.first_injection);
        }
        if (result.online.ran) {
            const online_detection& od = result.online;
            w_.key("online").begin_object();
            w_.field("violation", od.violation);
            if (od.violation) {
                w_.field("caught_live", od.caught_live);
                w_.field("detection_prefix", od.detection_prefix);
                w_.field("latency_ops", od.latency_ops);
                if (od.culprit_known) {
                    w_.field("culprit_processor",
                             static_cast<int>(od.culprit.processor));
                    w_.field("culprit_op",
                             static_cast<std::uint64_t>(od.culprit.op));
                }
                w_.field("diagnosis", od.diagnosis);
            }
            w_.end_object();
        }
        w_.end_object();
    }

    // v4: what the streaming checker saw, on streaming-monitored runs only.
    if (result.stream.ran) {
        const stream_outcome& so = result.stream;
        w_.key("stream").begin_object();
        w_.field("events", so.events);
        w_.field("ops_completed", so.ops_completed);
        w_.field("ops_retired", so.ops_retired);
        w_.field("checkpoints", so.checkpoints);
        w_.field("retained_peak", so.retained_peak);
        w_.field("producer_stalls", so.producer_stalls);
        w_.field("violation", so.violation);
        if (so.violation) {
            w_.field("detection_pos", so.detection_pos);
            w_.field("latency_ops", so.latency_ops);
            w_.field("diagnosis", so.diagnosis);
        }
        w_.end_object();
    }

    if (extra) extra(w_);
    w_.end_object();
}

void report_writer::add_table(const std::string& name, const table& t) {
    if (section_ == section::done) return;
    if (section_ == section::runs) {
        w_.end_array();
        w_.key("tables").begin_array();
        section_ = section::tables;
    }
    w_.begin_object();
    w_.field("name", name);
    w_.key("header").begin_array();
    for (const std::string& h : t.header()) w_.value(h);
    w_.end_array();
    w_.key("rows").begin_array();
    for (const auto& row : t.rows()) {
        w_.begin_array();
        for (const std::string& cell : row) w_.value(cell);
        w_.end_array();
    }
    w_.end_array();
    w_.end_object();
}

void report_writer::finish() {
    if (section_ == section::done) return;
    w_.end_array();  // runs or tables
    w_.end_object();
    os_ << "\n";
    section_ = section::done;
}

bool write_report_file(const std::string& path, const std::string& bench,
                       const run_spec& spec, const run_result& result,
                       const pipeline_result* checks) {
    std::ofstream os(path);
    if (!os) {
        std::cerr << "cannot write " << path << "\n";
        return false;
    }
    report_writer rep(os, bench);
    rep.add_run(spec, result, checks);
    rep.finish();
    std::cout << "wrote " << path << "\n";
    return true;
}

}  // namespace bloom87::harness
