// bloom87: the event model.
//
// The correctness proof of Bloom's protocol (paper, Sections 6-7) works over
// a sequence gamma containing, in one total order:
//
//   * invocations and responses of *simulated* reads and writes
//     (the external schedule alpha), and
//   * the linearization points ("*-actions") of every *real* register access
//     performed by the protocol underneath.
//
// This header defines that vocabulary as data. A recorded execution is a
// flat sequence of `event` values whose index in the log is its position in
// gamma; the constructive linearizer (src/linearizability/) re-runs the
// paper's Steps 1-4 on exactly this structure.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace bloom87 {

/// Identifies a processor (reader or writer automaton) of the simulated
/// register. Writers are 0 and 1 by convention; readers are >= 2.
/// In baselines with more writers (the four-writer tournament), writer ids
/// extend past 1.
using processor_id = std::int16_t;

/// Per-processor operation counter; (processor, op) uniquely names one
/// simulated operation.
using op_index = std::uint32_t;

/// Values flow through recorded histories as 64-bit integers. The protocol
/// templates accept arbitrary types; recorded/checked executions instantiate
/// them at std::int64_t so histories stay uniform and serializable.
using value_t = std::int64_t;

/// Log position; doubles as the gamma-position of the event.
using event_pos = std::uint64_t;

/// Sentinel: "no event" / "observed the initial value".
inline constexpr event_pos no_event = std::numeric_limits<event_pos>::max();

/// The kinds of event that can appear in gamma.
enum class event_kind : std::uint8_t {
    sim_invoke_read,    ///< R_start: a simulated read request (paper Fig. 1)
    sim_respond_read,   ///< R_finish(v): its acknowledgment carrying v
    sim_invoke_write,   ///< W_start(v): a simulated write request
    sim_respond_write,  ///< W_finish: its acknowledgment
    real_read,          ///< *-action of a real-register read
    real_write,         ///< *-action of a real-register write
};

[[nodiscard]] constexpr bool is_real(event_kind k) noexcept {
    return k == event_kind::real_read || k == event_kind::real_write;
}
[[nodiscard]] constexpr bool is_invocation(event_kind k) noexcept {
    return k == event_kind::sim_invoke_read || k == event_kind::sim_invoke_write;
}
[[nodiscard]] constexpr bool is_response(event_kind k) noexcept {
    return k == event_kind::sim_respond_read || k == event_kind::sim_respond_write;
}

/// One entry of gamma.
///
/// For real accesses, `reg` names the real register, `tag`/`value` the tagged
/// pair read or written, and -- for reads -- `observed_write` is the gamma
/// position of the real write whose value was returned (`no_event` for the
/// register's initial value). The recording substrate guarantees
/// `observed_write` is exact, which is what lets us replay the paper's proof
/// rather than guess linearization points.
struct event {
    event_kind kind{event_kind::real_read};
    std::uint8_t reg{0};            ///< real events: register index (0 or 1)
    processor_id processor{0};      ///< acting processor
    op_index op{0};                 ///< which simulated op this belongs to
    bool tag{false};                ///< real events: tag bit
    value_t value{0};               ///< payload (sim value or real value)
    event_pos observed_write{no_event};  ///< real_read: source write position
};

/// Uniquely names a simulated operation across the whole history.
struct op_id {
    processor_id processor{0};
    op_index op{0};

    friend constexpr bool operator==(op_id, op_id) noexcept = default;
    friend constexpr auto operator<=>(op_id, op_id) noexcept = default;
};

/// Human-readable rendering, used by serialization and failure diagnostics.
[[nodiscard]] std::string to_string(event_kind k);
[[nodiscard]] std::string to_string(const event& e);

}  // namespace bloom87
