// bloom87: SWMR atomic register for values of arbitrary size (seqlock).
//
// For value types too large for one atomic word, the single writer bumps a
// sequence number around each write; readers retry while they observe an odd
// sequence or a sequence change. The writer is wait-free; a reader retries
// only while a write is physically in progress, so reader progress is
// guaranteed as long as the writer takes bounded steps (the paper's model
// gives every processor bounded-speed steps in fair executions).
//
// The payload is stored as relaxed atomic words (not a raw struct) so that
// the concurrent reader/writer accesses are race-free under the C++ memory
// model; the seqlock protocol, not the per-word atomics, provides the
// consistency. Linearization: a successful read linearizes at its second
// sequence load; the observed write is unique because the writer is single.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "registers/concepts.hpp"
#include "util/sync.hpp"

namespace bloom87 {

/// SWMR atomic register over tagged<T> for trivially copyable T of any size.
template <typename T>
    requires std::is_trivially_copyable_v<T>
class seqlock_register {
public:
    explicit seqlock_register(tagged<T> initial) noexcept { store_words(initial); }

    /// Atomic read; retries while a write is in flight. Any thread.
    [[nodiscard]] tagged<T> read(access_context = {}) noexcept {
        for (;;) {
            const std::uint64_t before = seq_.load(std::memory_order_acquire);
            if ((before & 1U) == 0) {
                std::array<std::uint64_t, word_count> snapshot;
                for (std::size_t i = 0; i < word_count; ++i) {
                    snapshot[i] = words_[i].load(std::memory_order_relaxed);
                }
                std::atomic_thread_fence(std::memory_order_acquire);
                const std::uint64_t after = seq_.load(std::memory_order_relaxed);
                if (before == after) {
                    tagged<T> out;
                    std::memcpy(static_cast<void*>(&out), snapshot.data(),
                                sizeof(tagged<T>));
                    return out;
                }
            }
            retries_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /// Wait-free write; owning writer only.
    void write(tagged<T> v, access_context = {}) noexcept {
        const std::uint64_t s = seq_.load(std::memory_order_relaxed);
        seq_.store(s + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        store_words(v);
        seq_.store(s + 2, std::memory_order_release);
    }

    /// Total reader retries observed (for the substrate benchmark).
    [[nodiscard]] std::uint64_t retries() const noexcept {
        return retries_.load(std::memory_order_relaxed);
    }

private:
    static constexpr std::size_t word_count =
        (sizeof(tagged<T>) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);

    void store_words(const tagged<T>& v) noexcept {
        std::array<std::uint64_t, word_count> staging{};
        std::memcpy(staging.data(), static_cast<const void*>(&v),
                    sizeof(tagged<T>));
        for (std::size_t i = 0; i < word_count; ++i) {
            words_[i].store(staging[i], std::memory_order_relaxed);
        }
    }

    alignas(cacheline_size) std::atomic<std::uint64_t> seq_{0};
    std::array<std::atomic<std::uint64_t>, word_count> words_{};
    std::atomic<std::uint64_t> retries_{0};
};

static_assert(tagged_substrate<seqlock_register<std::int64_t>, std::int64_t>);

}  // namespace bloom87
