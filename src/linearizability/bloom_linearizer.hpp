// bloom87: the paper's correctness proof (Section 7), executable.
//
// Given a recorded gamma sequence -- the external schedule of the simulated
// register interleaved with the *-actions of every real-register access --
// this module re-runs Bloom's constructive argument:
//
//   * classify every simulated write as POTENT (tag-bit sum equals the
//     writer's index immediately after its real write) or IMPOTENT;
//   * find each impotent write's unique PREFINISHER (the last real write by
//     the other writer falling between the impotent write's real read and
//     real write) -- Lemma 1 says it exists and Lemma 2 says it is potent;
//   * insert linearization points (*-actions) in the paper's four steps:
//       Step 1: potent writes just after their real write; impotent writes
//               just before their prefinisher's *-action;
//       Step 2: reads of potent writes just after the later of their first
//               real read and the source write's *-action;
//       Step 3: reads of impotent writes just after the source's *-action;
//       Step 4: reads of the initial value just after their second real read;
//   * verify the resulting sequence: every *-action inside its operation's
//     interval, per-processor program order preserved, and the register
//     property satisfied.
//
// On histories produced by a correct implementation over an atomic recording
// substrate this always succeeds -- that is the theorem. Any failure is
// reported with which lemma or step broke, which makes this module double as
// a protocol-bug detector (tests deliberately break the protocol and watch
// the right lemma fail).
//
// Unlike the generic checkers this runs in O(n log n) and needs no search.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "histories/history.hpp"

namespace bloom87 {

/// Section 7 classification of one simulated write.
struct write_analysis {
    op_id id{};
    int writer{0};                      ///< 0 or 1
    event_pos real_read{no_event};      ///< gamma position of its real read
    event_pos real_write{no_event};     ///< gamma position of its real write
    bool took_effect{false};            ///< real write happened (crash-aware)
    bool potent{false};                 ///< meaningful when took_effect
    bool has_prefinisher{false};
    op_id prefinisher{};                ///< meaningful when has_prefinisher
};

/// Which of the paper's three read categories a read falls into.
enum class read_class : std::uint8_t { of_potent, of_impotent, of_initial };

/// Section 7 classification of one simulated read.
struct read_analysis {
    op_id id{};
    event_pos r0{no_event}, r1{no_event}, r2{no_event};  ///< the three real reads
    read_class cls{read_class::of_initial};
    op_id source{};          ///< the write it read from (when not initial)
};

/// One inserted linearization point. Ordering: by (anchor, layer, then the
/// operation's invocation position). Layers encode "immediately before /
/// after" at the same backbone event:
///   2 = impotent write, 3 = reads of that impotent write,
///   4 = potent write,   5 = reads anchored after this event.
struct star_action {
    op_id id{};
    event_pos anchor{no_event};
    int layer{0};
    event_pos tiebreak{no_event};
};

struct bloom_result {
    bool atomic{false};
    std::string diagnosis;              ///< which lemma/step failed, if any
    std::optional<std::string> defect;  ///< gamma is structurally malformed

    std::vector<write_analysis> writes;
    std::vector<read_analysis> reads;
    std::vector<star_action> linearization;  ///< sorted; only when atomic

    // Statistics for benches/EXPERIMENTS.md.
    std::size_t potent_count{0};
    std::size_t impotent_count{0};
    std::size_t reads_of_potent{0};
    std::size_t reads_of_impotent{0};
    std::size_t reads_of_initial{0};

    [[nodiscard]] bool ok() const noexcept { return !defect.has_value(); }
};

/// Runs the constructive proof on a parsed history (which must have been
/// recorded through the recording substrate so real accesses are present).
[[nodiscard]] bloom_result bloom_linearize(const history& h);

}  // namespace bloom87
