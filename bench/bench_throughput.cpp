// [TAB-C] Throughput scaling with reader count.
//
// Reads/sec and writes/sec for Bloom's two-writer register vs the blocking
// baselines vs a native hardware MRMW atomic word, with the writers
// hammering and n ∈ {1, 2, 4, 8} reader threads. The expected shape: Bloom
// tracks the native atomic within a small constant factor (3 real reads per
// simulated read) and scales with readers; the mutex collapses under
// contention.
//
// Every configuration is one harness run (src/harness): the registry builds
// the register by name, the driver owns the threads and the clock.
//
//   bench_throughput [--duration-ms N] [--json BENCH_throughput.json]
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::harness;

namespace {

std::string mops(double per_sec) { return fixed(per_sec / 1e6, 2); }

}  // namespace

int main(int argc, char** argv) {
    common_flags flags;
    flags.duration_ms = 150;
    flag_parser parser("bench_throughput",
                       "throughput vs reader count, 2 writers hammering");
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-C",
                 "Throughput vs reader count (2 writers hammering)");

    const std::vector<std::string> regs = {
        "bloom/packed", "bloom/seqlock", "baseline/rwlock", "baseline/mutex",
        "baseline/native"};

    std::unique_ptr<std::ofstream> json_os;
    std::unique_ptr<report_writer> rep;
    if (!flags.json_path.empty()) {
        json_os = std::make_unique<std::ofstream>(flags.json_path);
        if (!*json_os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        rep = std::make_unique<report_writer>(*json_os, "throughput");
    }

    table t({"readers", "register", "reads M/s", "writes M/s"});
    bool all_ok = true;
    for (std::size_t n : {1u, 2u, 4u, 8u}) {
        for (const std::string& name : regs) {
            run_spec spec;
            spec.register_name = name;
            spec.load.writers = 2;
            spec.load.readers = n;
            spec.seed = flags.seed;
            spec.duration_ms = flags.duration_ms;
            spec.warmup_ms = flags.duration_ms / 5;
            const run_result res = run(spec);
            if (!res.ok) {
                std::cerr << name << ": " << res.error << "\n";
                all_ok = false;
                continue;
            }
            const double reads_ps =
                res.measured_s > 0
                    ? static_cast<double>(res.total_reads) / res.measured_s
                    : 0.0;
            const double writes_ps =
                res.measured_s > 0
                    ? static_cast<double>(res.total_writes) / res.measured_s
                    : 0.0;
            t.row({std::to_string(n), name, mops(reads_ps), mops(writes_ps)});
            if (rep) rep->add_run(spec, res);
        }
    }
    t.print(std::cout);
    std::cout << "\n(per-simulated-op cost: a Bloom read is 3 real reads, a "
                 "Bloom write 2-3 real accesses; the native word is the "
                 "hardware ceiling)\n";

    if (rep) {
        rep->finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return all_ok ? 0 : 1;
}
