// [TAB-B] Wait-freedom under a stalled processor (paper, Section 4).
//
// The paper rejects mutual-exclusion designs because "one processor could
// crash while reading the register and block all further access." This
// bench stalls one participant for 20 ms -- inside its critical section for
// the mutex baseline, between its real read and real write for Bloom's
// protocol -- and measures reader latency during the stall. The mutex
// reader's worst case tracks the stall; Bloom's readers never notice.
#include <atomic>
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "baselines/mutex_register.hpp"
#include "baselines/rwlock_register.hpp"
#include "core/two_writer.hpp"
#include "registers/packed_atomic.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

using namespace bloom87;
using clock_t_ = std::chrono::steady_clock;

namespace {

struct latency_stats {
    double p50_us, p99_us, max_us;
    std::size_t samples;
};

latency_stats summarize(std::vector<double>& us) {
    std::sort(us.begin(), us.end());
    auto at = [&](double q) {
        return us[std::min(us.size() - 1,
                           static_cast<std::size_t>(q * static_cast<double>(us.size())))];
    };
    return {at(0.5), at(0.99), us.back(), us.size()};
}

/// Runs `read_once` repeatedly for `duration_ms` while `stall()` executes
/// concurrently; returns reader latency stats.
template <typename ReadFn, typename StallFn>
latency_stats measure(ReadFn&& read_once, StallFn&& stall, int duration_ms) {
    std::vector<double> samples;
    samples.reserve(1 << 20);
    start_gate gate;
    stop_flag stop;
    std::thread staller([&] {
        gate.wait();
        stall();
    });
    std::thread reader([&] {
        gate.wait();
        while (!stop.stop_requested()) {
            const auto t0 = clock_t_::now();
            read_once();
            const auto t1 = clock_t_::now();
            samples.push_back(
                std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
    });
    gate.open();
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    stop.request_stop();
    staller.join();
    reader.join();
    return summarize(samples);
}

}  // namespace

int main() {
    print_banner(std::cout, "TAB-B",
                 "Reader latency while one processor stalls for 20 ms");

    constexpr int stall_ms = 20;
    constexpr int run_ms = 60;

    table t({"register", "stalled processor", "reads", "p50 (us)", "p99 (us)",
             "max (us)"});

    {
        mutex_register<int> reg(1);
        auto stats = measure([&] { (void)reg.read(1); },
                             [&] {
                                 auto lock = reg.stall();
                                 std::this_thread::sleep_for(
                                     std::chrono::milliseconds(stall_ms));
                             },
                             run_ms);
        t.row({"mutex baseline", "lock holder (crashed in CS)",
               with_commas(stats.samples), fixed(stats.p50_us),
               fixed(stats.p99_us), fixed(stats.max_us)});
    }
    {
        rwlock_register<int> reg(1);
        auto stats = measure([&] { (void)reg.read(1); },
                             [&] {
                                 auto lock = reg.stall_writer();
                                 std::this_thread::sleep_for(
                                     std::chrono::milliseconds(stall_ms));
                             },
                             run_ms);
        t.row({"rw-lock baseline [CHP]", "writer (crashed in CS)",
               with_commas(stats.samples), fixed(stats.p50_us),
               fixed(stats.p99_us), fixed(stats.max_us)});
    }
    {
        two_writer_register<int, packed_atomic_register<int>> reg(1);
        auto rd = reg.make_reader(2);
        auto stats = measure(
            [&] { (void)rd.read(); },
            [&] {
                reg.writer0().write_paced(42, [&] {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(stall_ms));
                });
            },
            run_ms);
        t.row({"Bloom two-writer", "writer (stalled mid-write)",
               with_commas(stats.samples), fixed(stats.p50_us),
               fixed(stats.p99_us), fixed(stats.max_us)});
    }
    {
        // Also stall a READER of the Bloom register (a reader holds no
        // shared state at all, so this is trivially harmless; included for
        // the paper's "crash while reading" scenario).
        two_writer_register<int, packed_atomic_register<int>> reg(1);
        auto rd = reg.make_reader(2);
        auto slow = reg.make_reader(3);
        auto stats = measure(
            [&] { (void)rd.read(); },
            [&] {
                // The slow reader samples tags, then "crashes" (never
                // finishes its read).
                (void)slow.read();
                std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
            },
            run_ms);
        t.row({"Bloom two-writer", "reader (crashed mid-read)",
               with_commas(stats.samples), fixed(stats.p50_us),
               fixed(stats.p99_us), fixed(stats.max_us)});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: the mutex reader's max latency tracks the\n"
              << "20 ms stall; Bloom's readers stay in the microsecond range\n"
              << "no matter who stalls or crashes (wait-freedom).\n";
    return 0;
}
