// bloom87: exhaustive bounded interleaving exploration.
//
// Depth-first search over every schedule (and every nondeterministic
// safe/regular read outcome) of a sim_state. Interior states are memoized by
// a structural fingerprint -- confluent interleavings that produce the same
// memory, process, and history state are explored once. Each complete
// execution's external history is checked against the requested property
// (atomicity via the exhaustive checker, or single-writer regularity);
// verdicts are memoized per distinct history.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "histories/history.hpp"
#include "modelcheck/sim.hpp"

namespace bloom87::mc {

enum class property : std::uint8_t { atomic, regular_swmr, safe_swmr };

struct explore_config {
    property prop{property::atomic};
    value_t initial{0};
    /// Safety valve; exploration reports truncated=true when hit.
    std::uint64_t max_states{20'000'000};
    /// Stop at the first property violation (else count them all).
    bool stop_at_first_violation{true};
};

struct violation {
    std::vector<operation> hist;
    std::string diagnosis;
};

struct explore_result {
    std::uint64_t states_explored{0};
    std::uint64_t memo_hits{0};
    std::uint64_t leaves{0};
    std::uint64_t distinct_histories{0};
    std::uint64_t violations{0};
    bool property_holds{true};
    bool truncated{false};
    std::optional<violation> first_violation;
};

/// Explores all executions of `initial_state`. The state's processes define
/// the protocol; the registers define the memory model.
[[nodiscard]] explore_result explore(const sim_state& initial_state,
                                     const explore_config& cfg);

/// Renders an operation list for diagnostics ("proc 0 write(3) [4,9)" ...).
[[nodiscard]] std::string format_operations(const std::vector<operation>& ops);

}  // namespace bloom87::mc
