// bloom87: protocol processes for the model checker.
//
// Each class is a small-step state machine version of a protocol from the
// repository, over simulated base registers (see sim.hpp). Invocations and
// responses are explicit steps, so operation intervals in the recorded
// external history are as loose as the real protocol allows -- important
// when hunting violations (shrunken intervals could manufacture false
// positives).
//
// Value encoding: base registers hold small non-negative integers; a tagged
// pair (v, t) is encoded as v*2 + t.
#pragma once

#include <memory>
#include <vector>

#include "modelcheck/sim.hpp"
#include "registers/faulty.hpp"  // fault_class

namespace bloom87::mc {

[[nodiscard]] constexpr mc_value encode_tagged(mc_value v, bool tag) noexcept {
    return static_cast<mc_value>(v * 2 + (tag ? 1 : 0));
}
[[nodiscard]] constexpr mc_value decode_value(mc_value enc) noexcept {
    return static_cast<mc_value>(enc / 2);
}
[[nodiscard]] constexpr bool decode_tag(mc_value enc) noexcept {
    return (enc & 1) != 0;
}

/// --- Bloom's two-writer protocol (paper, Section 5) -----------------------
/// Base registers 0 and 1: ATOMIC, holding encoded tagged values.

/// Writer i: for each scripted value: invoke; read Reg_{1-i}; write Reg_i
/// with tag i (+) t'; respond.
[[nodiscard]] std::unique_ptr<process> make_bloom_writer(
    int writer_index, std::vector<mc_value> values_to_write);

/// Reader: for `num_reads` operations: invoke; read Reg0; read Reg1; read
/// Reg_{t0 (+) t1}; respond with its value.
[[nodiscard]] std::unique_ptr<process> make_bloom_reader(processor_id proc,
                                                         int num_reads);

/// Reader variant sampling the tags in the OPPOSITE order (Reg1 then Reg0).
/// The paper's footnote 5 notes the proof tolerates reordering the first
/// two reads; the explorer confirms atomicity is preserved.
[[nodiscard]] std::unique_ptr<process> make_bloom_reader_reversed(
    processor_id proc, int num_reads);

/// Reader variant that SKIPS the third real read, returning the value it
/// captured together with the chosen tag. An ablation probing whether the
/// paper's re-read is necessary; see tests/bench for the verdict.
[[nodiscard]] std::unique_ptr<process> make_bloom_reader_no_reread(
    processor_id proc, int num_reads);

/// Writer that CRASHES at a chosen point: it runs its script normally
/// until op `crash_op`, performs that op up to `crash_stage` real accesses
/// (0 = right after invoking, 1 = after its real read, 2 = after its real
/// write), and then halts forever. The op stays pending in the history;
/// the explorer thereby verifies crash tolerance over ALL schedules, not
/// just the thread-level injection tests.
[[nodiscard]] std::unique_ptr<process> make_bloom_writer_crashing(
    int writer_index, std::vector<mc_value> values_to_write,
    std::size_t crash_op, int crash_stage);

/// --- Faulty-substrate Bloom processes (fault model of registers/faulty.hpp)
/// The same machines over base registers whose accesses may misbehave:
/// the explorer branches over "this access faults" vs "this access is
/// clean" at every eligible step, bounded by `max_faults` faults per
/// process. Value-corrupting classes (stale_read, lost_write, torn_value,
/// delayed_visibility) should exhibit a reachable atomicity violation;
/// port_crash (halt mid-op, op left pending) should not -- the explorer
/// proves both, schedule-exhaustively. stale_read needs the base
/// registers constructed with track_previous = true.
[[nodiscard]] std::unique_ptr<process> make_faulty_bloom_writer(
    int writer_index, std::vector<mc_value> values_to_write, fault_class cls,
    int max_faults);
[[nodiscard]] std::unique_ptr<process> make_faulty_bloom_reader(
    processor_id proc, int num_reads, fault_class cls, int max_faults);

/// Deliberately BROKEN writer applying the other writer's tag rule
/// (t := (1-i) (+) t'). Exists to prove the explorer catches tag-protocol
/// bugs -- a mutation-testing fixture.
[[nodiscard]] std::unique_ptr<process> make_bloom_writer_wrong_tag(
    int writer_index, std::vector<mc_value> values_to_write);

/// --- The four-writer tournament (paper, Section 8; BROKEN) ---------------
/// Base registers 0 and 1: ATOMIC multi-writer words (hardware-strength,
/// per the paper's footnote 6). Writer ids 0..3; pair = id/2.
[[nodiscard]] std::unique_ptr<process> make_tournament_writer(
    int writer_id, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_tournament_reader(processor_id proc,
                                                              int num_reads);

/// --- Simpson's four-slot SWSR register (substrate verification) ----------
/// Base register layout (pass as `base`): base+0..base+3 = data slots
/// data[pair][index] (any level, domain = num distinct values);
/// base+4, base+5 = slot[pair] bits; base+6 = latest; base+7 = reading
/// (control bits: any level, domain 2 -- atomic accesses take one step,
/// weaker levels split into begin/end steps automatically).
/// The writer/reader processes record external read/write operations so the
/// explorer can check the register they jointly implement is ATOMIC.
[[nodiscard]] std::unique_ptr<process> make_fourslot_writer(
    std::size_t base, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_fourslot_reader(std::size_t base,
                                                            processor_id proc,
                                                            int num_reads);

/// --- Seqlock SWMR register (race-certification substrate model) ----------
/// Base register layout: base+0 = sequence number (needs domain >=
/// 2*total_writes+1), base+1 = the payload word (domain >= max value + 1);
/// both level ATOMIC -- race modes distinguish them by sync class instead.
/// Writer: s = seq; seq = s+1; payload = v; seq = s+2. Reader: retry while
/// seq is odd or changed across the payload read (registers/seqlock.hpp).
[[nodiscard]] std::unique_ptr<process> make_seqlock_writer(
    std::size_t base, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_seqlock_reader(std::size_t base,
                                                           processor_id proc,
                                                           int num_reads);

/// --- Lamport's unary construction: k-valued REGULAR from regular bits ----
/// Base registers base+0 .. base+k-1: one bit per value (level regular).
/// Initially bit 0 is 1 (register holds 0). Writer writing v sets bit v,
/// then clears bits v-1 .. 0; reader scans upward from 0 and returns the
/// first set bit. Provides regularity but NOT atomicity -- the explorer
/// demonstrates both.
[[nodiscard]] std::unique_ptr<process> make_unary_writer(
    std::size_t base, int k, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_unary_reader(std::size_t base, int k,
                                                         processor_id proc,
                                                         int num_reads);

/// --- Split-write Bloom mutant (tag-packing ablation) ----------------------
/// Base register layout: 0 = value0, 1 = tag0, 2 = value1, 3 = tag1 (all
/// ATOMIC). The writer performs the paper's protocol but stores value and
/// tag with TWO separate real writes (value first); the reader reads both
/// tag cells, then the chosen value cell. Demonstrates that "enough space
/// to hold one value and a single tag bit" (Section 5) means one
/// INDIVISIBLE register: splitting it is not atomic, and the explorer
/// finds the violation.
[[nodiscard]] std::unique_ptr<process> make_split_bloom_writer(
    int writer_index, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_split_bloom_reader(processor_id proc,
                                                               int num_reads);

/// --- VA-style multi-writer register (unbounded timestamps) ---------------
/// Base registers base .. base+n_writers-1: ATOMIC cells, each holding an
/// encoded stamp ((ts * n_writers) + writer) * value_domain + value.
/// Registers need domain >= (max_ts+1) * n_writers * value_domain where
/// max_ts is the total number of writes in the exploration.
[[nodiscard]] constexpr mc_value encode_stamp(int ts, int writer, mc_value value,
                                              int n_writers,
                                              mc_value value_domain) noexcept {
    return static_cast<mc_value>(
        (ts * n_writers + writer) * value_domain + value);
}
[[nodiscard]] std::unique_ptr<process> make_va_writer(
    std::size_t base, int n_writers, int writer_id,
    std::vector<mc_value> values_to_write, mc_value value_domain);
[[nodiscard]] std::unique_ptr<process> make_va_reader(std::size_t base,
                                                      int n_writers,
                                                      processor_id proc,
                                                      int num_reads,
                                                      mc_value value_domain);

/// --- SWMR-from-SWSR multi-reader construction (swmr_from_swsr.hpp) -------
/// Base register layout (pass as `base`), all ATOMIC single-step cells
/// holding sequence numbers (0 = initial; seq s = the writer's s-th write):
///   base + i            : Value[i], writer -> reader i        (i in [0,n))
///   base + n + j*n + i   : Report[j][i], reader j -> reader i
/// The external value of seq s is `values[s-1]`; 0 maps to the initial
/// value. Registers need domain >= values.size()+1.
[[nodiscard]] std::unique_ptr<process> make_mr_writer(
    std::size_t base, int n, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_mr_reader(
    std::size_t base, int n, int reader_index, processor_id proc,
    int num_reads, std::vector<mc_value> writer_values);

/// Deliberately BROKEN multi-reader variant: the reader skips the report
/// round (returns without telling the other readers). Exhibits cross-reader
/// new-old inversion -- the mutation fixture proving the report round is
/// load-bearing.
[[nodiscard]] std::unique_ptr<process> make_mr_reader_no_report(
    std::size_t base, int n, int reader_index, processor_id proc,
    int num_reads, std::vector<mc_value> writer_values);

/// --- Lamport's binary-encoded SAFE register from safe bits ----------------
/// Base registers base .. base+bits-1: one SAFE bit per binary digit.
/// Writer stores the value's binary representation bit by bit; reader
/// assembles it bit by bit. The result is SAFE for values in [0, 2^bits)
/// but NOT regular: a read overlapping a write may assemble a mixture that
/// is neither the old nor the new value.
[[nodiscard]] std::unique_ptr<process> make_binary_writer(
    std::size_t base, int bits, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_binary_reader(std::size_t base,
                                                          int bits,
                                                          processor_id proc,
                                                          int num_reads);

/// --- Primitive cell processes (Lamport's hierarchy, directly) -------------
/// A writer/reader pair accessing ONE base register (whatever its level) as
/// the whole register: the external history directly reflects the cell's
/// consistency level. Used to verify the hierarchy itself: an atomic cell
/// checks atomic; a regular cell checks regular but NOT atomic (new-old
/// inversion); a safe cell is not even regular under same-value rewrites.
[[nodiscard]] std::unique_ptr<process> make_cell_writer(
    std::size_t reg, std::vector<mc_value> values_to_write);
[[nodiscard]] std::unique_ptr<process> make_cell_reader(std::size_t reg,
                                                        processor_id proc,
                                                        int num_reads);

/// Reader over a REGULAR cell holding monotone (seq, value) stamps, keeping
/// a local maximum: the classic upgrade "regular + monotone timestamps =
/// atomic for a single reader". The cell stores seq*value_domain+value; the
/// matching writer is make_stamped_cell_writer. The explorer verifies the
/// pair is ATOMIC even though the cell is only regular.
[[nodiscard]] std::unique_ptr<process> make_stamped_cell_writer(
    std::size_t reg, std::vector<mc_value> values_to_write,
    mc_value value_domain);
[[nodiscard]] std::unique_ptr<process> make_stamped_cell_reader(
    std::size_t reg, processor_id proc, int num_reads, mc_value value_domain);

/// --- Safe bit -> regular bit discipline (Lamport) -------------------------
/// A writer over a single SAFE bit (register `reg`). With `only_write_changes`
/// it skips writes that would rewrite the current value -- Lamport's
/// observation that this discipline upgrades a safe bit to a regular one.
/// Without it, rewriting the same value lets overlapping reads flicker.
[[nodiscard]] std::unique_ptr<process> make_bit_writer(
    std::size_t reg, std::vector<mc_value> values_to_write,
    bool only_write_changes);
[[nodiscard]] std::unique_ptr<process> make_bit_reader(std::size_t reg,
                                                       processor_id proc,
                                                       int num_reads);

}  // namespace bloom87::mc
