// bloom87: the atomic-register specification automaton (paper, Section 3).
//
// A 1-writer n-reader atomic register as an I/O automaton: requests arrive
// as inputs, an *internal* star action marks the instant the operation takes
// effect against the register state, and the acknowledgment is an output.
// Every schedule this automaton can produce is atomic BY CONSTRUCTION --
// which is exactly how the paper uses its "real registers". The simulated
// register built from two of these plus the protocol automata is then
// checked for atomicity from the outside.
//
// Input-enabledness: a request on a channel that is already mid-operation
// is improper input (violates input-correctness, Section 3); the automaton
// accepts and ignores it, as the model prescribes ("any behavior by the
// register is legitimate").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ioa/automaton.hpp"

namespace bloom87::ioa {

/// SWMR atomic register automaton over value_t contents.
class register_automaton final : public automaton {
public:
    /// `write_channel`: the single writer's channel. `read_channels`: one
    /// per reader port (n readers of the simulated register + the other
    /// writer, per the paper's architecture).
    register_automaton(std::string name, value_t initial,
                       std::string write_channel,
                       std::vector<std::string> read_channels);

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] bool in_input(const action& a) const override;
    [[nodiscard]] bool in_output(const action& a) const override;
    [[nodiscard]] bool in_internal(const action& a) const override;
    [[nodiscard]] std::vector<action> enabled() const override;
    void apply(const action& a) override;

    [[nodiscard]] value_t contents() const noexcept { return current_; }

    /// Count of star actions taken (for reports).
    [[nodiscard]] std::size_t stars_taken() const noexcept { return stars_; }

private:
    enum class phase : std::uint8_t { idle, requested, performed };
    struct channel_state {
        bool is_write{false};
        phase ph{phase::idle};
        value_t value{0};  ///< write argument / read result
    };

    std::string name_;
    value_t current_;
    std::string write_channel_;
    std::map<std::string, channel_state> channels_;
    std::size_t stars_{0};
};

}  // namespace bloom87::ioa
