// bloom87: deterministic pseudo-random number generation.
//
// All randomized tests and workload generators in this repository draw from
// xoshiro256**, seeded via splitmix64, so that every run is reproducible from
// a single 64-bit seed. <random> engines are avoided in hot paths because
// their exact output is not specified identically across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>

namespace bloom87 {

/// splitmix64 step; used to expand a single seed into a full xoshiro state.
/// Passes through every 64-bit value exactly once over its period.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions where exact reproducibility is not required.
class rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
    explicit constexpr rng(std::uint64_t seed = 0xb10037'1987ULL) noexcept {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64_next(sm);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    /// Next 64 uniformly random bits.
    constexpr result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound == 0 returns 0.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    constexpr std::uint64_t below(std::uint64_t bound) noexcept {
        if (bound == 0) return 0;
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (low < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in the closed range [lo, hi].
    constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /// Bernoulli trial: true with probability num/den.
    constexpr bool chance(std::uint64_t num, std::uint64_t den) noexcept {
        return below(den) < num;
    }

    /// Fisher-Yates shuffle of a random-access container.
    template <typename Container>
    constexpr void shuffle(Container& c) noexcept {
        const auto n = static_cast<std::uint64_t>(c.size());
        for (std::uint64_t i = n; i > 1; --i) {
            const auto j = below(i);
            using std::swap;
            swap(c[static_cast<std::size_t>(i - 1)], c[static_cast<std::size_t>(j)]);
        }
    }

    /// Derives an independent child generator (for per-thread streams).
    constexpr rng split() noexcept { return rng((*this)()); }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace bloom87
