// fuzz_protocols: long-running randomized torture for the whole stack.
//
// Each round draws a random harness configuration PER REGISTRY ENTRY --
// workload mix, reader count, pacing, crash pattern, cached reads, thread
// or seeded schedule -- runs it through the one workload driver, and feeds
// the recorded history to the full checker pipeline. Registers the registry
// marks atomic must pass every checker that applies; the known-broken
// tournament is allowed (and over enough rounds expected) to fail. Any
// unexpected verdict stops the run with the serialized gamma so it can be
// replayed through check_history.
//
// With --fault=<class> the fuzzer instead tortures the faulty/ compositions
// under that substrate fault class with the online verifier attached:
// value-corrupting classes must produce detected violations (exit 1 if the
// whole run stays silent), port_crash must stay clean on every round.
//
// Usage: fuzz_protocols [rounds] [base_seed] [--fault=<class>]
//        (defaults: 50, 1, no fault)
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "histories/serialize.hpp"
#include "util/rng.hpp"

using namespace bloom87;
using namespace bloom87::harness;

namespace {

run_spec draw_spec(const registry_entry& e, rng& gen, std::uint64_t seed) {
    run_spec spec;
    spec.register_name = e.info.name;
    spec.seed = seed;
    // Writer count anywhere in the entry's range, capped at min+3 so the
    // 16-writer baselines don't dominate the round.
    const std::size_t wmax =
        std::min(e.info.max_writers, e.info.min_writers + 3);
    spec.load.writers =
        e.info.min_writers + gen.below(wmax - e.info.min_writers + 1);
    spec.load.readers = 1 + gen.below(4);
    spec.load.ops_per_writer = 100 + gen.below(400);
    spec.load.ops_per_reader = 100 + gen.below(400);
    spec.collect = e.info.requires_log ? collect_mode::gamma
                                       : collect_mode::per_thread;
    spec.schedule = gen.chance(1, 3) ? schedule_mode::seeded
                                     : schedule_mode::threads;
    spec.pace.writer_pace_num = gen.below(6);
    spec.pace.writer_pace_den = 32;
    spec.pace.reader_pace_num = gen.below(8);
    spec.pace.reader_pace_den = 32;
    spec.pace.pause_yields = 32 + static_cast<unsigned>(gen.below(224));
    if (gen.chance(1, 3)) {
        spec.pace.crash_num = 1;
        spec.pace.crash_den = 40;
    }
    spec.cached_writer_reads = gen.chance(1, 3);
    return spec;
}

/// Every checker that can apply: the pipeline itself skips the exhaustive
/// search over 62 ops, the Bloom linearizer without real accesses, and
/// regular/safe with several writing processors. The Bloom linearizer is
/// additionally dropped when the run used cached writer reads -- the
/// Section 5 cache serves a read with 1-2 real reads, not the canonical 3
/// the constructive proof keys on.
std::vector<checker_kind> checkers_for(const run_spec& spec) {
    std::vector<checker_kind> kinds = {
        checker_kind::fast,    checker_kind::exhaustive,
        checker_kind::monitor, checker_kind::regular,
        checker_kind::safe};
    if (!spec.cached_writer_reads) kinds.push_back(checker_kind::bloom);
    return kinds;
}

bool run_round(const registry_entry& e, const run_spec& spec,
               std::uint64_t* tournament_violations) {
    const run_result res = run(spec);
    if (!res.ok) {
        std::fprintf(stderr, "%s seed %llu: RUN FAILED: %s\n",
                     e.info.name.c_str(),
                     static_cast<unsigned long long>(spec.seed),
                     res.error.c_str());
        return false;
    }
    if (res.log_overflowed) {
        std::fprintf(stderr, "%s seed %llu: LOG OVERFLOW (harness bug)\n",
                     e.info.name.c_str(),
                     static_cast<unsigned long long>(spec.seed));
        return false;
    }
    const pipeline_result checks = run_checkers(
        res.events, spec.initial, checkers_for(spec), spec.register_name);
    if (!checks.parsed) {
        std::fprintf(stderr, "%s seed %llu: MALFORMED GAMMA: %s\n",
                     e.info.name.c_str(),
                     static_cast<unsigned long long>(spec.seed),
                     checks.parse_error.c_str());
        write_gamma(std::cerr, res.events, spec.initial);
        return false;
    }
    if (checks.all_pass()) return true;
    if (!e.info.expected_atomic) {
        // The broken tournament failing its checkers is the EXPECTED
        // outcome -- count it as evidence the pipeline has teeth.
        ++*tournament_violations;
        return true;
    }
    for (const check_verdict& v : checks.verdicts) {
        if (v.ran && !v.pass) {
            std::fprintf(stderr, "%s seed %llu: %s FAILED: %s\n",
                         e.info.name.c_str(),
                         static_cast<unsigned long long>(spec.seed),
                         checker_name(v.kind).c_str(), v.diagnosis.c_str());
        }
    }
    write_gamma(std::cerr, res.events, spec.initial);
    return false;
}

/// The --fault mode: every round runs each faulty/ composition under one
/// substrate fault class, online verifier attached. Returns the exit code.
int fuzz_faulty(fault_class cls, std::uint64_t rounds,
                std::uint64_t base_seed) {
    const std::vector<std::string> comps = {
        "faulty/seqlock", "faulty/fourslot", "faulty/recording"};
    rng meta(base_seed ^ 0xFA417);
    std::uint64_t runs = 0;
    std::uint64_t detections = 0;
    std::uint64_t injected_total = 0;
    std::uint64_t silent_rounds = 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
        for (const std::string& comp : comps) {
            run_spec spec;
            spec.register_name = comp;
            spec.seed = base_seed * 100000 + runs;
            spec.load.writers = 2;
            spec.load.readers = 1 + meta.below(3);
            spec.load.ops_per_writer = 100 + meta.below(300);
            spec.load.ops_per_reader = 100 + meta.below(300);
            spec.collect = collect_mode::gamma;
            // Seeded: the fault plan and the schedule replay byte for byte,
            // so a reported seed reproduces the round exactly.
            spec.schedule = schedule_mode::seeded;
            spec.fault.cls = cls;
            spec.fault.rate_num = 1;
            spec.fault.rate_den = 64;
            spec.fault.seed = spec.seed;
            spec.online_monitor = true;
            spec.monitor_stride = 32;
            ++runs;

            const run_result res = run(spec);
            if (!res.ok) {
                std::fprintf(stderr, "%s seed %llu: RUN FAILED: %s\n",
                             comp.c_str(),
                             static_cast<unsigned long long>(spec.seed),
                             res.error.c_str());
                return 1;
            }
            const pipeline_result checks = run_checkers(
                res.events, spec.initial,
                {checker_kind::fast, checker_kind::monitor},
                spec.register_name);
            if (!checks.parsed) {
                std::fprintf(stderr, "%s seed %llu: MALFORMED GAMMA: %s\n",
                             comp.c_str(),
                             static_cast<unsigned long long>(spec.seed),
                             checks.parse_error.c_str());
                write_gamma(std::cerr, res.events, spec.initial);
                return 1;
            }
            injected_total += res.faults_injected.total();
            if (corrupts_values(cls)) {
                if (res.online.violation) {
                    ++detections;
                    // The offline pipeline must agree with the verifier --
                    // they check the same prefix-closed property.
                    if (checks.all_pass()) {
                        std::fprintf(stderr,
                                     "%s seed %llu: online verifier and "
                                     "checker pipeline DISAGREE\n",
                                     comp.c_str(),
                                     static_cast<unsigned long long>(
                                         spec.seed));
                        write_gamma(std::cerr, res.events, spec.initial);
                        return 1;
                    }
                } else {
                    ++silent_rounds;
                }
            } else if (!checks.all_pass() || res.online.violation) {
                // Crash-class faults stay inside the paper's fault model:
                // any violation is a real bug.
                std::fprintf(stderr,
                             "%s seed %llu: %s broke atomicity "
                             "(UNEXPECTED)\n",
                             comp.c_str(),
                             static_cast<unsigned long long>(spec.seed),
                             fault_class_name(cls));
                write_gamma(std::cerr, res.events, spec.initial);
                return 1;
            }
        }
    }
    std::printf("fuzz --fault=%s: %llu runs, %llu faults injected, "
                "%llu detected violations, %llu silent\n",
                fault_class_name(cls), static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(injected_total),
                static_cast<unsigned long long>(detections),
                static_cast<unsigned long long>(silent_rounds));
    if (corrupts_values(cls) && detections == 0) {
        std::fprintf(stderr,
                     "every %s round went UNDETECTED -- the monitor lost "
                     "its teeth\n",
                     fault_class_name(cls));
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t rounds = 50;
    std::uint64_t base_seed = 1;
    std::string fault_name{"none"};
    flag_parser parser("fuzz_protocols",
                       "randomized registry-wide torture through the harness");
    parser.add_positional("rounds", "fuzzing rounds", &rounds);
    parser.add_positional("base_seed", "base workload seed", &base_seed);
    parser.add_string("fault",
                      "torture faulty/ compositions under this substrate "
                      "fault class instead of the registry sweep",
                      &fault_name);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (fault_name != "none") {
        const auto cls = parse_fault_class(fault_name);
        if (!cls || *cls == fault_class::none) {
            std::fprintf(stderr, "unknown fault class '%s'\n",
                         fault_name.c_str());
            return 64;
        }
        return fuzz_faulty(*cls, rounds, base_seed);
    }

    rng meta(base_seed);
    std::uint64_t runs = 0;
    std::uint64_t tournament_violations = 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
        for (const registry_entry& e : registry()) {
            const std::uint64_t seed = base_seed * 100000 + runs;
            const run_spec spec = draw_spec(e, meta, seed);
            if (!run_round(e, spec, &tournament_violations)) {
                std::fprintf(stderr,
                             "FUZZING FOUND A FAILURE at round %llu (%s)\n",
                             static_cast<unsigned long long>(round),
                             e.info.name.c_str());
                return 1;
            }
            ++runs;
        }
        if ((round + 1) % 10 == 0) {
            std::printf("fuzz: %llu/%llu rounds clean (%llu runs)\n",
                        static_cast<unsigned long long>(round + 1),
                        static_cast<unsigned long long>(rounds),
                        static_cast<unsigned long long>(runs));
            std::fflush(stdout);
        }
    }
    std::printf(
        "fuzz: all %llu rounds clean (%llu runs; tournament rejected in "
        "%llu)\n",
        static_cast<unsigned long long>(rounds),
        static_cast<unsigned long long>(runs),
        static_cast<unsigned long long>(tournament_violations));
    return 0;
}
