// Tests for src/util: rng determinism and uniformity sanity, bit packing,
// table formatting, synchronization helpers.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

namespace bloom87 {
namespace {

TEST(Rng, DeterministicFromSeed) {
    rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
    rng g(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(g.below(bound), bound);
    }
    EXPECT_EQ(g.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
    rng g(123);
    std::vector<int> buckets(10, 0);
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) ++buckets[g.below(10)];
    for (int count : buckets) {
        EXPECT_GT(count, n / 10 - n / 50);
        EXPECT_LT(count, n / 10 + n / 50);
    }
}

TEST(Rng, RangeIsInclusive) {
    rng g(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(g.range(-2, 2));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_TRUE(seen.contains(-2));
    EXPECT_TRUE(seen.contains(2));
}

TEST(Rng, ShufflePreservesElements) {
    rng g(11);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    g.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
    rng g(5);
    rng child = g.split();
    EXPECT_NE(g(), child());
}

TEST(Bits, PackRoundTripsValueAndTag) {
    for (std::int32_t v : {0, 1, -1, 42, -42, 1 << 30, -(1 << 30)}) {
        for (bool tag : {false, true}) {
            const std::uint64_t w = pack_tagged(v, tag);
            EXPECT_EQ(unpack_value<std::int32_t>(w), v);
            EXPECT_EQ(unpack_tag(w), tag);
        }
    }
}

TEST(Bits, PackSmallTypes) {
    const std::uint64_t w = pack_tagged<std::uint8_t>(0xAB, true);
    EXPECT_EQ(unpack_value<std::uint8_t>(w), 0xAB);
    EXPECT_TRUE(unpack_tag(w));
}

TEST(Bits, TagXorMatchesMod2Sum) {
    EXPECT_FALSE(tag_xor(false, false));
    EXPECT_TRUE(tag_xor(false, true));
    EXPECT_TRUE(tag_xor(true, false));
    EXPECT_FALSE(tag_xor(true, true));
}

TEST(Table, AlignsColumns) {
    table t({"a", "long_header"});
    t.row({"xx", "y"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| a  | long_header |"), std::string::npos);
    EXPECT_NE(s.find("| xx | y           |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
    table t({"a", "b"});
    t.row({"only"});
    EXPECT_NE(t.to_string().find("| only |   |"), std::string::npos);
}

TEST(Table, WithCommas) {
    EXPECT_EQ(with_commas(0), "0");
    EXPECT_EQ(with_commas(999), "999");
    EXPECT_EQ(with_commas(1000), "1,000");
    EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(Table, Fixed) {
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 1), "2.0");
}

TEST(Sync, SpinBarrierSynchronizesRounds) {
    constexpr int threads = 4, rounds = 50;
    spin_barrier barrier(threads);
    std::atomic<int> counter{0};
    std::vector<std::thread> pool;
    std::atomic<bool> failed{false};
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (int r = 0; r < rounds; ++r) {
                counter.fetch_add(1);
                barrier.arrive_and_wait();
                // Between barriers, the counter must be a multiple of
                // `threads` * (r+1): all increments of this round landed.
                if (counter.load() < threads * (r + 1)) failed = true;
                barrier.arrive_and_wait();
            }
        });
    }
    for (auto& th : pool) th.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(counter.load(), threads * rounds);
}

TEST(Sync, StartGateReleasesWaiters) {
    start_gate gate;
    std::atomic<int> released{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < 3; ++t) {
        pool.emplace_back([&] {
            gate.wait();
            released.fetch_add(1);
        });
    }
    EXPECT_EQ(released.load(), 0);
    gate.open();
    for (auto& th : pool) th.join();
    EXPECT_EQ(released.load(), 3);
}

}  // namespace
}  // namespace bloom87
