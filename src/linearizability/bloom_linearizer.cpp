#include "linearizability/bloom_linearizer.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "core/protocol.hpp"

namespace bloom87 {
namespace {

/// Per-register index of real writes, for "tag bit of Reg_j just before
/// position p" queries.
struct register_timeline {
    std::vector<event_pos> positions;  // ascending
    std::vector<bool> tags;

    /// Tag of this register at any instant strictly before `p`
    /// (initial tag 0 if never written before p).
    [[nodiscard]] bool tag_before(event_pos p) const {
        auto it = std::lower_bound(positions.begin(), positions.end(), p);
        if (it == positions.begin()) return false;
        return tags[static_cast<std::size_t>(it - positions.begin()) - 1];
    }

    /// Position of the last write strictly inside (lo, hi), or no_event.
    [[nodiscard]] event_pos last_write_in(event_pos lo, event_pos hi) const {
        auto it = std::lower_bound(positions.begin(), positions.end(), hi);
        if (it == positions.begin()) return no_event;
        const event_pos cand = *(it - 1);
        return cand > lo ? cand : no_event;
    }
};

}  // namespace

bloom_result bloom_linearize(const history& h) {
    bloom_result out;
    auto fail_defect = [&](std::string msg) {
        out.defect = std::move(msg);
        return out;
    };
    auto fail = [&](std::string why) {
        out.atomic = false;
        out.diagnosis = std::move(why);
        return out;
    };

    // ---- index real writes per register, and map positions to sim ops ----
    std::array<register_timeline, 2> regs;
    std::map<event_pos, op_id> write_op_at;  // real-write position -> sim write
    for (event_pos p = 0; p < h.gamma.size(); ++p) {
        const event& e = h.gamma[p];
        if (e.kind != event_kind::real_write) continue;
        regs[e.reg].positions.push_back(p);
        regs[e.reg].tags.push_back(e.tag);
        write_op_at[p] = op_id{e.processor, e.op};
    }

    // ---- analyze writes: structure, potency, prefinishers (Step 0) ----
    std::map<op_id, std::size_t> write_index;  // into out.writes
    for (const operation& op : h.ops) {
        if (op.kind != op_kind::write) continue;
        if (op.id.processor != 0 && op.id.processor != 1) {
            return fail_defect("simulated write by a non-writer processor");
        }
        write_analysis wa;
        wa.id = op.id;
        wa.writer = op.id.processor;

        // Expected access pattern: real read of Reg_{~i}, then real write of
        // Reg_i. Crashed writes may stop after 0 or 1 accesses.
        if (op.real_accesses.size() > 2) {
            return fail_defect("write performed more than two real accesses");
        }
        if (!op.real_accesses.empty()) {
            const event& r = h.gamma[op.real_accesses[0]];
            if (r.kind != event_kind::real_read || r.reg != 1 - wa.writer) {
                return fail_defect("write's first access is not a read of the other register");
            }
            wa.real_read = op.real_accesses[0];
        }
        if (op.real_accesses.size() == 2) {
            const event& w = h.gamma[op.real_accesses[1]];
            if (w.kind != event_kind::real_write || w.reg != wa.writer) {
                return fail_defect("write's second access is not a write of its own register");
            }
            wa.real_write = op.real_accesses[1];
            wa.took_effect = true;
        }
        if (op.complete() && !wa.took_effect) {
            return fail_defect("completed write performed no real write");
        }

        if (wa.took_effect) {
            const bool own_tag = h.gamma[wa.real_write].tag;
            const bool other_tag = regs[1 - wa.writer].tag_before(wa.real_write);
            const bool tag0 = wa.writer == 0 ? own_tag : other_tag;
            const bool tag1 = wa.writer == 0 ? other_tag : own_tag;
            wa.potent = write_is_potent(wa.writer, tag0, tag1);
            ++(wa.potent ? out.potent_count : out.impotent_count);

            if (!wa.potent) {
                const event_pos pf =
                    regs[1 - wa.writer].last_write_in(wa.real_read, wa.real_write);
                if (pf == no_event) {
                    return fail("Lemma 1 violated: impotent write has no prefinisher");
                }
                wa.has_prefinisher = true;
                wa.prefinisher = write_op_at.at(pf);
            }
        }
        write_index[wa.id] = out.writes.size();
        out.writes.push_back(wa);
    }

    // Lemma 2: every prefinisher is potent. Also: no two impotent writes
    // share a prefinisher (their *-action slot must be exclusive).
    std::map<op_id, op_id> prefinisher_used_by;
    for (const write_analysis& wa : out.writes) {
        if (!wa.has_prefinisher) continue;
        auto it = write_index.find(wa.prefinisher);
        if (it == write_index.end()) {
            return fail_defect("prefinisher write has no operation record");
        }
        if (!out.writes[it->second].potent) {
            return fail("Lemma 2 violated: prefinisher is impotent");
        }
        auto [pos, inserted] = prefinisher_used_by.emplace(wa.prefinisher, wa.id);
        if (!inserted) {
            return fail("two impotent writes share one prefinisher");
        }
    }

    // ---- Step 1: *-actions for writes ----
    std::vector<star_action> stars;
    auto write_anchor = [&](const write_analysis& wa) -> star_action {
        if (wa.potent) {
            return {wa.id, wa.real_write, 4, wa.real_write};
        }
        const write_analysis& pf = out.writes[write_index.at(wa.prefinisher)];
        return {wa.id, pf.real_write, 2, wa.real_write};
    };
    for (const write_analysis& wa : out.writes) {
        if (!wa.took_effect) continue;  // crashed before its real write: invisible
        stars.push_back(write_anchor(wa));
    }

    // ---- analyze reads and Steps 2-4 ----
    for (const operation& op : h.ops) {
        if (op.kind != op_kind::read) continue;
        if (!op.complete()) continue;  // a crashed read returns nothing
        if (op.real_accesses.size() != 3) {
            return fail_defect("read did not perform exactly three real reads");
        }
        read_analysis ra;
        ra.id = op.id;
        ra.r0 = op.real_accesses[0];
        ra.r1 = op.real_accesses[1];
        ra.r2 = op.real_accesses[2];
        const event& e0 = h.gamma[ra.r0];
        const event& e1 = h.gamma[ra.r1];
        const event& e2 = h.gamma[ra.r2];
        if (e0.kind != event_kind::real_read || e0.reg != 0 ||
            e1.kind != event_kind::real_read || e1.reg != 1 ||
            e2.kind != event_kind::real_read) {
            return fail_defect("read's real accesses are not (Reg0, Reg1, Reg_r)");
        }
        if (int(e2.reg) != reader_pick(e0.tag, e1.tag)) {
            return fail_defect("read re-read the wrong register for its tags");
        }

        star_action sa;
        sa.id = ra.id;
        sa.tiebreak = op.invoked;
        if (e2.observed_write == no_event) {
            ra.cls = read_class::of_initial;
            ++out.reads_of_initial;
            sa.anchor = ra.r1;  // Step 4
            sa.layer = 5;
        } else {
            auto wit = write_op_at.find(e2.observed_write);
            if (wit == write_op_at.end()) {
                return fail_defect("read observed an unrecorded write");
            }
            ra.source = wit->second;
            const write_analysis& src = out.writes[write_index.at(ra.source)];
            if (src.potent) {
                ra.cls = read_class::of_potent;
                ++out.reads_of_potent;
                const star_action ws = write_anchor(src);
                if (ws.anchor > ra.r0) {  // Step 2: later of r0 and W's *-action
                    sa.anchor = ws.anchor;
                    sa.layer = 5;
                } else {
                    sa.anchor = ra.r0;
                    sa.layer = 5;
                }
            } else {
                ra.cls = read_class::of_impotent;
                ++out.reads_of_impotent;
                const star_action ws = write_anchor(src);
                sa.anchor = ws.anchor;  // Step 3: just after W0, before prefinisher
                sa.layer = 3;
            }
        }
        out.reads.push_back(ra);
        stars.push_back(sa);
    }

    // ---- order the *-actions ----
    std::sort(stars.begin(), stars.end(), [](const star_action& a,
                                             const star_action& b) {
        if (a.anchor != b.anchor) return a.anchor < b.anchor;
        if (a.layer != b.layer) return a.layer < b.layer;
        if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
        return a.id < b.id;
    });

    // ---- verification ----
    // (1) interval containment: each *-action between its op's invocation
    //     and response (Lemma 4 is the nontrivial case).
    for (const star_action& sa : stars) {
        const operation* op = h.find(sa.id);
        if (op == nullptr) return fail_defect("star action for unknown op");
        if (sa.anchor < op->invoked || sa.anchor >= op->responded) {
            std::ostringstream oss;
            oss << "Lemma 4 / containment violated: *-action of proc "
                << sa.id.processor << " op " << sa.id.op
                << " anchored at " << sa.anchor << " outside ["
                << op->invoked << ", " << op->responded << ")";
            return fail(oss.str());
        }
    }
    // (2) program order per processor.
    std::map<processor_id, op_index> last_op_of;
    for (const star_action& sa : stars) {
        auto it = last_op_of.find(sa.id.processor);
        if (it != last_op_of.end() && sa.id.op <= it->second) {
            return fail("program order violated in constructed linearization");
        }
        last_op_of[sa.id.processor] = sa.id.op;
    }
    // (3) the register property.
    value_t current = h.initial_value;
    for (const star_action& sa : stars) {
        const operation* op = h.find(sa.id);
        if (op->kind == op_kind::write) {
            current = op->value;
        } else if (op->value != current) {
            std::ostringstream oss;
            oss << "register property violated: read by proc " << sa.id.processor
                << " op " << sa.id.op << " returned " << op->value
                << " but the register held " << current;
            return fail(oss.str());
        }
    }

    out.atomic = true;
    out.linearization = std::move(stars);
    return out;
}

}  // namespace bloom87
