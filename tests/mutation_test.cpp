// Mutation tests: corrupt known-good recorded executions in targeted ways
// and verify each checker catches exactly what it should. This is how we
// know the verification stack has teeth -- a checker that never fails
// proves nothing.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "histories/event_log.hpp"
#include "histories/history.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/recording.hpp"

namespace bloom87 {
namespace {

/// Produces a known-good gamma: W0(100) potent, W1(200) potent, read(200),
/// W0(300) impotent (overlapped), read(300)... built single-threaded for
/// determinism.
std::vector<event> known_good_gamma() {
    event_log log(128);
    recording_register reg0(tagged<value_t>{0, false}, &log, 0);
    recording_register reg1(tagged<value_t>{0, false}, &log, 1);

    auto sim = [&](event_kind k, processor_id p, op_index op, value_t v = 0) {
        event e;
        e.kind = k;
        e.processor = p;
        e.op = op;
        e.value = v;
        log.append(e);
    };
    auto full_write = [&](int w, op_index op, value_t v) {
        sim(event_kind::sim_invoke_write, static_cast<processor_id>(w), op, v);
        const bool t = writer_tag_choice(
            w, (w == 0 ? reg1 : reg0).read({static_cast<processor_id>(w), op}).tag);
        (w == 0 ? reg0 : reg1)
            .write(tagged<value_t>{v, t}, {static_cast<processor_id>(w), op});
        sim(event_kind::sim_respond_write, static_cast<processor_id>(w), op);
    };
    auto full_read = [&](processor_id p, op_index op) {
        sim(event_kind::sim_invoke_read, p, op);
        const bool t0 = reg0.read({p, op}).tag;
        const bool t1 = reg1.read({p, op}).tag;
        const value_t v =
            (reader_pick(t0, t1) == 0 ? reg0 : reg1).read({p, op}).value;
        sim(event_kind::sim_respond_read, p, op, v);
    };

    full_write(0, 0, 100);  // tags (0,0): potent
    full_read(2, 0);        // returns 100

    // An impotent write: from tag state (0,0), W0 samples Reg1's tag, W1's
    // complete write flips it, then W0 lands with stale information.
    sim(event_kind::sim_invoke_write, 0, 1, 300);
    const bool stale = reg1.read({0, 1}).tag;  // sees 0
    full_write(1, 0, 200);                     // flips Reg1's tag: (0,1)
    reg0.write(tagged<value_t>{300, writer_tag_choice(0, stale)}, {0, 1});
    sim(event_kind::sim_respond_write, 0, 1);  // tags still (0,1): impotent

    full_read(2, 1);        // picks Reg1: returns 200
    full_write(1, 1, 400);  // potent
    full_read(3, 0);        // returns 400
    return log.snapshot();
}

history parse_ok(const std::vector<event>& g) {
    parse_result res = parse_history(g, 0);
    EXPECT_TRUE(res.ok()) << (res.ok() ? "" : res.error->message);
    return std::move(res.hist);
}

TEST(Mutation, BaselineIsAccepted) {
    const history h = parse_ok(known_good_gamma());
    const bloom_result c = bloom_linearize(h);
    ASSERT_TRUE(c.ok()) << *c.defect;
    EXPECT_TRUE(c.atomic) << c.diagnosis;
    EXPECT_EQ(c.impotent_count, 1u);
    EXPECT_TRUE(check_fast(h.ops, 0).linearizable);
    EXPECT_TRUE(check_exhaustive(h.ops, 0).linearizable);
}

TEST(Mutation, StaleReadValueCaughtByAllCheckers) {
    std::vector<event> g = known_good_gamma();
    // The second read (op 1 of proc 2) returned 200; claim it returned the
    // long-overwritten 100 instead. External-level corruption: patch the
    // response event only (gamma's real accesses stay consistent, so this
    // models a protocol that RETURNS the wrong value).
    bool patched = false;
    for (event& e : g) {
        if (e.kind == event_kind::sim_respond_read && e.processor == 2 &&
            e.op == 1) {
            e.value = 100;
            patched = true;
        }
    }
    ASSERT_TRUE(patched);
    const history h = parse_ok(g);
    EXPECT_FALSE(check_fast(h.ops, 0).linearizable);
    EXPECT_FALSE(check_exhaustive(h.ops, 0).linearizable);
    // The constructive linearizer sees the real reads disagree with the
    // response -- its register-property verification fails.
    const bloom_result c = bloom_linearize(h);
    ASSERT_TRUE(c.ok());
    EXPECT_FALSE(c.atomic);
}

TEST(Mutation, ValueFromNowhereRejected) {
    std::vector<event> g = known_good_gamma();
    for (event& e : g) {
        if (e.kind == event_kind::sim_respond_read && e.processor == 3) {
            e.value = 98765;
        }
    }
    const history h = parse_ok(g);
    // Both checkers flag it during normalization, with a clear message
    // rather than a bare "not linearizable".
    const auto fast = check_fast(h.ops, 0);
    EXPECT_FALSE(fast.ok());
    EXPECT_NE(fast.defect->find("no write produced"), std::string::npos);
    const auto slow = check_exhaustive(h.ops, 0);
    EXPECT_FALSE(slow.ok());
}

TEST(Mutation, WrongThirdReadRegisterIsAProtocolDefect) {
    std::vector<event> g = known_good_gamma();
    // Flip the register of some read's FINAL real access: the linearizer
    // must flag the gamma as not protocol-shaped (reader_pick mismatch).
    for (std::size_t i = 2; i < g.size(); ++i) {
        if (g[i].kind == event_kind::real_read && g[i].processor == 2 &&
            g[i - 1].kind == event_kind::real_read &&
            g[i - 2].kind == event_kind::real_read) {
            g[i].reg = static_cast<std::uint8_t>(1 - g[i].reg);
            // Keep parse-level invariants believable: cite no observed
            // write on the other register if there was none... simplest is
            // to point at initial; parse may reject, which also counts.
            g[i].observed_write = no_event;
            break;
        }
    }
    parse_result parsed = parse_history(g, 0);
    if (!parsed.ok()) {
        SUCCEED() << "caught at parse level: " << parsed.error->message;
        return;
    }
    EXPECT_FALSE(bloom_linearize(parsed.hist).ok());
}

TEST(Mutation, CorruptedObservedWriteCaughtAtParse) {
    std::vector<event> g = known_good_gamma();
    // Point a read's observed_write at an older write of the same register:
    // the recording invariant ("reads observe the latest write") breaks.
    event_pos first_w0 = no_event, second_r2_on_reg0 = no_event;
    for (event_pos p = 0; p < g.size(); ++p) {
        if (g[p].kind == event_kind::real_write && g[p].reg == 0 &&
            first_w0 == no_event) {
            first_w0 = p;
        }
    }
    for (event_pos p = g.size(); p-- > 0;) {
        if (g[p].kind == event_kind::real_read && g[p].reg == 0 &&
            g[p].observed_write != no_event && g[p].observed_write != first_w0) {
            second_r2_on_reg0 = p;
            break;
        }
    }
    ASSERT_NE(first_w0, no_event);
    ASSERT_NE(second_r2_on_reg0, no_event);
    g[second_r2_on_reg0].observed_write = first_w0;
    EXPECT_FALSE(parse_history(g, 0).ok());
}

TEST(Mutation, FlippedTagBitBreaksTheProofMachinery) {
    std::vector<event> g = known_good_gamma();
    // Flip the tag bit of the FIRST real write. Downstream reads recorded
    // the original tag, so the recording becomes inconsistent -- the
    // constructive linearizer (or the parse validation) must notice;
    // at minimum the verdict machinery must not silently succeed with a
    // different linearization than the unmutated gamma.
    for (event& e : g) {
        if (e.kind == event_kind::real_write) {
            e.tag = !e.tag;
            break;
        }
    }
    parse_result parsed = parse_history(g, 0);
    if (!parsed.ok()) {
        SUCCEED();
        return;
    }
    const bloom_result res = bloom_linearize(parsed.hist);
    // Either the access-shape validation trips (defect), or the potency
    // analysis diverges and some verification step fails.
    EXPECT_TRUE(!res.ok() || !res.atomic)
        << "flipped tag bit must not yield a clean ATOMIC verdict";
}

TEST(Mutation, DroppedResponseMakesOpPendingButHistoryStaysAtomic) {
    std::vector<event> g = known_good_gamma();
    // Remove the LAST response event: that operation becomes pending
    // (crashed); the history must still check out.
    for (std::size_t i = g.size(); i-- > 0;) {
        if (is_response(g[i].kind)) {
            g.erase(g.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    const history h = parse_ok(g);
    EXPECT_TRUE(check_fast(h.ops, 0).linearizable);
    EXPECT_TRUE(check_exhaustive(h.ops, 0).linearizable);
}

TEST(Mutation, ReorderedRealWritePairCaught) {
    std::vector<event> g = known_good_gamma();
    // Swap a write's real_read and real_write events (protocol order
    // violation): the linearizer's access-shape validation must trip.
    for (std::size_t i = 0; i + 1 < g.size(); ++i) {
        if (g[i].kind == event_kind::real_read &&
            g[i + 1].kind == event_kind::real_write &&
            g[i].processor == g[i + 1].processor) {
            std::swap(g[i], g[i + 1]);
            break;
        }
    }
    parse_result parsed = parse_history(g, 0);
    if (!parsed.ok()) {
        SUCCEED();
        return;
    }
    EXPECT_FALSE(bloom_linearize(parsed.hist).ok());
}

}  // namespace
}  // namespace bloom87
