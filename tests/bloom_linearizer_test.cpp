// Tests for the executable Section 7 proof: deterministic protocol
// scenarios driven step-by-step against recording registers, checking
// potency classification, prefinisher discovery, read classes, *-action
// placement, and the linearizer's defect/diagnosis reporting.
#include <gtest/gtest.h>

#include <array>

#include "core/protocol.hpp"
#include "histories/event_log.hpp"
#include "histories/history.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "registers/recording.hpp"

namespace bloom87 {
namespace {

/// Single-threaded scenario driver: performs the writer/reader protocols of
/// the paper one real access at a time, under test-controlled interleaving.
class scenario {
public:
    scenario()
        : log_(512), reg0_(tagged<value_t>{0, false}, &log_, 0),
          reg1_(tagged<value_t>{0, false}, &log_, 1) {}

    recording_register& reg(std::size_t i) { return i == 0 ? reg0_ : reg1_; }

    /// A simulated write, split into its protocol steps.
    struct write_op {
        scenario* s;
        int writer;
        op_index op;
        value_t value;
        bool tag{};

        void invoke() {
            event e;
            e.kind = event_kind::sim_invoke_write;
            e.processor = static_cast<processor_id>(writer);
            e.op = op;
            e.value = value;
            s->log_.append(e);
        }
        void real_read() {
            const auto other = s->reg(static_cast<std::size_t>(1 - writer)).read(
                {static_cast<processor_id>(writer), op});
            tag = writer_tag_choice(writer, other.tag);
        }
        void real_write() {
            s->reg(static_cast<std::size_t>(writer)).write(
                tagged<value_t>{value, tag},
                {static_cast<processor_id>(writer), op});
        }
        void respond() {
            event e;
            e.kind = event_kind::sim_respond_write;
            e.processor = static_cast<processor_id>(writer);
            e.op = op;
            s->log_.append(e);
        }
        void run_all() {
            invoke();
            real_read();
            real_write();
            respond();
        }
    };

    /// A simulated read, split into its protocol steps.
    struct read_op {
        scenario* s;
        processor_id proc;
        op_index op;
        bool t0{}, t1{};
        value_t result{};

        void invoke() {
            event e;
            e.kind = event_kind::sim_invoke_read;
            e.processor = proc;
            e.op = op;
            s->log_.append(e);
        }
        void read_r0() { t0 = s->reg(0).read({proc, op}).tag; }
        void read_r1() { t1 = s->reg(1).read({proc, op}).tag; }
        void read_r2() {
            result = s->reg(static_cast<std::size_t>(reader_pick(t0, t1)))
                         .read({proc, op})
                         .value;
        }
        void respond() {
            event e;
            e.kind = event_kind::sim_respond_read;
            e.processor = proc;
            e.op = op;
            e.value = result;
            s->log_.append(e);
        }
        void run_all() {
            invoke();
            read_r0();
            read_r1();
            read_r2();
            respond();
        }
    };

    write_op writer(int w, op_index op, value_t v) { return {this, w, op, v}; }
    read_op reader(processor_id proc, op_index op) { return {this, proc, op}; }

    history parsed() {
        parse_result res = parse_history(log_.snapshot(), 0);
        EXPECT_TRUE(res.ok()) << res.error->message;
        return std::move(res.hist);
    }

private:
    event_log log_;
    recording_register reg0_;
    recording_register reg1_;
};

// ---------------------------------------------------------------------------

TEST(Scenario, SoloWritesArePotent) {
    scenario s;
    s.writer(0, 0, 100).run_all();
    s.writer(1, 0, 200).run_all();
    s.writer(0, 1, 300).run_all();

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    EXPECT_EQ(res.potent_count, 3u);
    EXPECT_EQ(res.impotent_count, 0u);
}

TEST(Scenario, OverlappedWriteIsImpotentWithPotentPrefinisher) {
    scenario s;
    // W0 (by Wr0) reads Reg1's tag, then sleeps; W1 (by Wr1) completes a
    // full write; W0 wakes and writes. W0's tag information is stale: it is
    // impotent and W1 prefinishes it.
    auto w0 = s.writer(0, 0, 100);
    w0.invoke();
    w0.real_read();
    auto w1 = s.writer(1, 0, 200);
    w1.run_all();
    w0.real_write();
    w0.respond();

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    EXPECT_EQ(res.potent_count, 1u);
    EXPECT_EQ(res.impotent_count, 1u);

    const write_analysis* impotent = nullptr;
    for (const auto& wa : res.writes) {
        if (!wa.potent) impotent = &wa;
    }
    ASSERT_NE(impotent, nullptr);
    EXPECT_EQ(impotent->id, (op_id{0, 0}));
    ASSERT_TRUE(impotent->has_prefinisher);
    EXPECT_EQ(impotent->prefinisher, (op_id{1, 0}));

    // Step 1 places the impotent write's *-action immediately before its
    // prefinisher's: W0 linearizes before W1, so W1's value survives --
    // which is what a subsequent read must see.
    ASSERT_EQ(res.linearization.size(), 2u);
    EXPECT_EQ(res.linearization[0].id, (op_id{0, 0}));
    EXPECT_EQ(res.linearization[1].id, (op_id{1, 0}));
}

TEST(Scenario, SlowReaderReadsImpotentWrite) {
    scenario s;
    // Reader samples both tags (0,0), then stalls. W1 writes (tags 0,1);
    // W0 starts, reads Reg1's tag, W1's second write lands, W0 finishes
    // impotent. The reader wakes, picks Reg0 (its stale tags sum to 0) and
    // returns the IMPOTENT write's value -- the paper's "very slow reader"
    // (Section 7.2). Step 3 must anchor the read right after that write.
    auto r = s.reader(2, 0);
    r.invoke();
    r.read_r0();
    r.read_r1();

    auto w0 = s.writer(0, 0, 100);
    w0.invoke();
    w0.real_read();       // sees Reg1's tag 0
    auto w1 = s.writer(1, 0, 200);
    w1.run_all();         // flips Reg1's tag: tags now (0, 1)
    w0.real_write();      // writes stale tag 0: sum stays 1 -> impotent
    w0.respond();

    r.read_r2();          // stale tags (0,0) pick Reg0: the impotent value
    r.respond();
    EXPECT_EQ(r.result, 100);

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    EXPECT_EQ(res.impotent_count, 1u);
    EXPECT_EQ(res.reads_of_impotent, 1u);

    // Step 1 + Step 3: W0 just before its prefinisher W1, the read right
    // after W0 -- so the final order is W0, R, W1.
    std::vector<op_id> order;
    for (const auto& sa : res.linearization) order.push_back(sa.id);
    const std::vector<op_id> expected{op_id{0, 0}, op_id{2, 0}, op_id{1, 0}};
    EXPECT_EQ(order, expected);
}

TEST(Scenario, ReadOfInitialValue) {
    scenario s;
    auto r = s.reader(2, 0);
    r.run_all();
    EXPECT_EQ(r.result, 0);

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.atomic);
    EXPECT_EQ(res.reads_of_initial, 1u);
}

TEST(Scenario, ReadOverlappingWriteClassifiedByWhatItSaw) {
    scenario s;
    // Read starts before the write's real write but its final real read
    // lands after: it returns the new value (read of a potent write).
    auto r = s.reader(2, 0);
    r.invoke();
    r.read_r0();
    auto w = s.writer(0, 0, 100);
    w.run_all();
    r.read_r1();
    r.read_r2();
    r.respond();

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    // Tags seen: t0 = 0 (before write), t1 = 0 -> picks Reg0, which now
    // holds the write: a read of a potent write.
    EXPECT_EQ(res.reads_of_potent, 1u);
    EXPECT_EQ(r.result, 100);
}

TEST(Scenario, CrashedWriteObservedByReader) {
    scenario s;
    // Writer performs its real write but never responds (crash). A reader
    // still sees the value; the linearizer treats the crashed write as
    // having taken effect.
    auto w = s.writer(0, 0, 100);
    w.invoke();
    w.real_read();
    w.real_write();
    // no respond(): crashed.
    auto r = s.reader(2, 0);
    r.run_all();
    EXPECT_EQ(r.result, 100);

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
}

TEST(Scenario, CrashedWriteBeforeRealWriteIsInvisible) {
    scenario s;
    auto w = s.writer(0, 0, 100);
    w.invoke();
    w.real_read();
    // crash before the real write
    auto r = s.reader(2, 0);
    r.run_all();
    EXPECT_EQ(r.result, 0);

    const bloom_result res = bloom_linearize(s.parsed());
    ASSERT_TRUE(res.ok());
    EXPECT_TRUE(res.atomic);
    // The crashed write got no linearization point.
    EXPECT_EQ(res.linearization.size(), 1u);
}

// ---------------------------------------------------------------------------
// Defect reporting: structurally broken gammas are rejected with clear
// messages rather than bogus verdicts.
// ---------------------------------------------------------------------------

TEST(Defects, WriteWithWrongAccessPattern) {
    // Hand-build a gamma where the "write" reads its OWN register.
    std::vector<event> g;
    {
        event e;
        e.kind = event_kind::sim_invoke_write;
        e.processor = 0;
        e.op = 0;
        e.value = 100;
        g.push_back(e);
    }
    {
        event e;
        e.kind = event_kind::real_read;
        e.reg = 0;  // wrong: writer 0 must read register 1
        e.processor = 0;
        e.op = 0;
        g.push_back(e);
    }
    {
        event e;
        e.kind = event_kind::real_write;
        e.reg = 0;
        e.processor = 0;
        e.op = 0;
        e.value = 100;
        g.push_back(e);
    }
    {
        event e;
        e.kind = event_kind::sim_respond_write;
        e.processor = 0;
        e.op = 0;
        g.push_back(e);
    }
    parse_result parsed = parse_history(g, 0);
    ASSERT_TRUE(parsed.ok());
    const bloom_result res = bloom_linearize(parsed.hist);
    EXPECT_FALSE(res.ok());
}

TEST(Defects, WriteByNonWriterProcessor) {
    std::vector<event> g;
    event e;
    e.kind = event_kind::sim_invoke_write;
    e.processor = 5;
    e.op = 0;
    g.push_back(e);
    e.kind = event_kind::sim_respond_write;
    g.push_back(e);
    parse_result parsed = parse_history(g, 0);
    // The completed write performed no real accesses AND came from a
    // non-writer: the linearizer must flag it.
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(bloom_linearize(parsed.hist).ok());
}

}  // namespace
}  // namespace bloom87
