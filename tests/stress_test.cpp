// Scale stress: large histories, long-running contention, and many reader
// threads. Kept to tens of seconds total; the point is to shake out races
// and scale limits the small tests cannot reach.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

TEST(Stress, QuarterMillionOpsCheckedEndToEnd) {
    // 2 writers x 50k writes + 4 readers x 40k reads, recorded and verified
    // by BOTH the constructive linearizer and the fast checker.
    constexpr std::uint32_t writes_each = 50000;
    constexpr int reads_each = 40000;
    event_log log(4u * (2 * writes_each * 4 + 4 * reads_each * 5) / 3);
    two_writer_register<value_t, recording_register> reg(0, &log);
    start_gate gate;

    std::vector<std::thread> pool;
    for (int w = 0; w < 2; ++w) {
        pool.emplace_back([&, w] {
            gate.wait();
            auto& wr = w == 0 ? reg.writer0() : reg.writer1();
            for (std::uint32_t i = 0; i < writes_each; ++i) {
                wr.write(unique_value(static_cast<processor_id>(w), i));
            }
        });
    }
    for (int r = 0; r < 4; ++r) {
        pool.emplace_back([&, r] {
            gate.wait();
            auto rd = reg.make_reader(static_cast<processor_id>(2 + r));
            for (int i = 0; i < reads_each; ++i) (void)rd.read();
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    ASSERT_FALSE(log.overflowed());
    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    EXPECT_EQ(parsed.hist.ops.size(), 2u * writes_each + 4u * reads_each);

    const bloom_result constructive = bloom_linearize(parsed.hist);
    ASSERT_TRUE(constructive.ok()) << *constructive.defect;
    EXPECT_TRUE(constructive.atomic) << constructive.diagnosis;

    const auto fast = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(fast.ok()) << *fast.defect;
    EXPECT_TRUE(fast.linearizable) << fast.diagnosis;
}

TEST(Stress, ManyReaderThreadsOnPackedSubstrate) {
    // 12 reader threads against both writers on the lock-free substrate;
    // every reader's view must be monotone in each writer's own sequence
    // (per-writer values encode their order; last-write-wins between
    // writers is covered by the checker tests).
    two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>>
        reg(0);
    start_gate gate;
    std::atomic<bool> done{false};
    std::atomic<int> violations{0};

    std::vector<std::thread> pool;
    for (int w = 0; w < 2; ++w) {
        pool.emplace_back([&, w] {
            gate.wait();
            // values: writer in the high bit-range, counter below.
            for (std::int32_t i = 1; i <= 400000; ++i) {
                (w == 0 ? reg.writer0() : reg.writer1())
                    .write((w << 24) | i);
            }
            done.store(true, std::memory_order_release);
        });
    }
    for (int r = 0; r < 12; ++r) {
        pool.emplace_back([&, r] {
            auto rd = reg.make_reader(static_cast<processor_id>(2 + r));
            gate.wait();
            std::int32_t last_per_writer[2] = {0, 0};
            while (!done.load(std::memory_order_acquire)) {
                const std::int32_t v = rd.read();
                const int w = (v >> 24) & 1;
                const std::int32_t seq = v & 0xFFFFFF;
                // A writer's own values can never go backwards.
                if (seq < last_per_writer[w]) {
                    // Re-check: an OLD value of writer w may legitimately
                    // reappear only if... it cannot: w's register only
                    // moves forward and the protocol never resurrects it.
                    violations.fetch_add(1);
                }
                last_per_writer[w] = std::max(last_per_writer[w], seq);
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();
    EXPECT_EQ(violations.load(), 0);
}

TEST(Stress, PacedContentionKeepsLemmasTrue) {
    // Long paced run maximizing impotent writes; the linearizer revalidates
    // Lemmas 1/2/4 on every one of them.
    event_log log(1 << 20);
    two_writer_register<value_t, recording_register> reg(0, &log);
    start_gate gate;
    auto writer_loop = [&](int index) {
        rng pace(1234 + static_cast<std::uint64_t>(index));
        auto& wr = index == 0 ? reg.writer0() : reg.writer1();
        for (std::uint32_t i = 0; i < 12000; ++i) {
            const bool stall = pace.chance(1, 12);
            wr.write_paced(unique_value(static_cast<processor_id>(index), i),
                           [&] {
                               if (stall) {
                                   std::this_thread::sleep_for(
                                       std::chrono::microseconds(20));
                               }
                           });
        }
    };
    std::thread a([&] { gate.wait(); writer_loop(0); });
    std::thread b([&] { gate.wait(); writer_loop(1); });
    std::thread c([&] {
        gate.wait();
        auto rd = reg.make_reader(2);
        rng pace(999);
        for (int i = 0; i < 15000; ++i) {
            (void)rd.read_paced([&] {
                if (pace.chance(1, 8)) {
                    std::this_thread::sleep_for(std::chrono::microseconds(15));
                }
            });
        }
    });
    gate.open();
    a.join();
    b.join();
    c.join();

    ASSERT_FALSE(log.overflowed());
    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const bloom_result res = bloom_linearize(parsed.hist);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    EXPECT_GT(res.impotent_count, 0u);
}

}  // namespace
}  // namespace bloom87
