#include "analysis/contracts.hpp"

namespace bloom87::analysis {
namespace {

// ----------------------------------------------------- per-file contracts --
//
// One row per (receiver, operation) pair; `orders` lists every order the
// contract allows at such sites. The lint also fails on rows that match NO
// call site, so the table cannot silently rot when a header changes.

constexpr site_contract packed_atomic_sites[] = {
    // The packed word IS the register: both operations are the
    // linearization point and must stay seq_cst.
    {"word_", "load", "seq_cst"},
    {"word_", "store", "seq_cst"},
};

constexpr site_contract seqlock_sites[] = {
    // Readers enter with an acquire load and re-check relaxed behind an
    // acquire fence; the writer's odd/even bumps are relaxed+release
    // around the fence-published payload.
    {"seq_", "load", "acquire,relaxed"},
    {"seq_", "store", "relaxed,release"},
    {"words_", "load", "relaxed"},
    {"words_", "store", "relaxed"},
    {"retries_", "fetch_add", "relaxed"},
    {"retries_", "load", "relaxed"},
    {"", "fence", "acquire,release"},
};

constexpr site_contract fourslot_sites[] = {
    // Control bits carry the reader/writer handshake: seq_cst only. The
    // data slots are relaxed words published by the release fence in
    // store_slot (receiver `slots` inside the static helpers).
    {"reading_", "load", "seq_cst"},
    {"reading_", "store", "seq_cst"},
    {"slot_", "load", "seq_cst"},
    {"slot_", "store", "seq_cst"},
    {"latest_", "load", "seq_cst"},
    {"latest_", "store", "seq_cst"},
    {"slots", "load", "relaxed"},
    {"slots", "store", "relaxed"},
    {"", "fence", "acquire,release"},
};

constexpr site_contract recording_sites[] = {
    // The spinlock serializing every access: classic acquire/release.
    {"locked_", "exchange", "acquire"},
    {"locked_", "store", "release"},
};

constexpr site_contract faulty_sites[] = {
    // The fault plan's own spinlock plus the sticky crash flags (set with
    // release so a crashed port's last write is visible to observers).
    {"locked_", "exchange", "acquire"},
    {"locked_", "store", "release"},
    {"crashed_", "load", "acquire"},
    {"crashed_", "store", "relaxed,release"},
};

constexpr site_contract instrumented_sites[] = {
    // Pure statistics counters; never used for synchronization.
    {"reads_", "fetch_add", "relaxed"},
    {"reads_", "load", "relaxed"},
    {"reads_", "store", "relaxed"},
    {"writes_", "fetch_add", "relaxed"},
    {"writes_", "load", "relaxed"},
    {"writes_", "store", "relaxed"},
};

constexpr site_contract event_log_sites[] = {
    // The shared gamma log: slot reservation is a relaxed fetch_add (slot
    // index IS the serialization), payloads publish through the per-slot
    // ready flag's release store / acquire load. clear() is single-thread
    // (relaxed flags, release counter reset).
    {"next_", "fetch_add", "relaxed"},
    {"next_", "load", "acquire"},
    {"next_", "store", "release"},
    {"overflowed_", "load", "acquire"},
    {"overflowed_", "store", "relaxed,release"},
    {"value", "load", "acquire"},
    {"value", "store", "relaxed,release"},
};

constexpr site_contract thread_log_sites[] = {
    // Per-thread SPSC rings: the producer publishes records with one
    // release store of head_ (acquired by the merger's peek); the
    // backpressure check acquires tail_. The global seq stamp is a relaxed
    // fetch_add -- the only cross-thread write on the record path.
    {"next_", "fetch_add", "relaxed"},
    {"next_", "load", "relaxed"},
    {"head_", "load", "acquire,relaxed"},
    {"head_", "store", "release"},
    {"tail_", "load", "acquire,relaxed"},
    {"tail_", "store", "release"},
    {"done_", "load", "acquire"},
    {"done_", "store", "release"},
};

constexpr file_contract contracts[] = {
    {"packed_atomic.hpp", packed_atomic_sites},
    {"seqlock.hpp", seqlock_sites},
    {"fourslot.hpp", fourslot_sites},
    {"recording.hpp", recording_sites},
    {"faulty.hpp", faulty_sites},
    {"instrumented.hpp", instrumented_sites},
    // plain.hpp is audited as having NO atomic call sites: it is the
    // intentionally unsynchronized register the race checker must flag.
    {"plain.hpp", {}},
    // The harness's own collection structures are audited like any
    // register: their memory orders carry the recorded history's validity.
    {"event_log.hpp", event_log_sites, "histories"},
    {"thread_log.hpp", thread_log_sites, "histories"},
};

struct registry_class {
    std::string_view name;
    sync_class cls;
};

// Real-access synchronization class per harness registry composition.
// Everything production-grade synchronizes its real accesses; bloom/plain
// is the declared-unsynchronized fixture.
constexpr registry_class registry_classes[] = {
    {"bloom/packed", sync_class::sync},
    {"bloom/seqlock", sync_class::sync},
    {"bloom/fourslot", sync_class::sync},
    {"bloom/recording", sync_class::sync},
    {"bloom/plain", sync_class::plain},
    {"faulty/seqlock", sync_class::sync},
    {"faulty/fourslot", sync_class::sync},
    {"faulty/recording", sync_class::sync},
    {"swmr/fourslot", sync_class::sync},
    {"va/seqlock", sync_class::sync},
    {"tournament/native", sync_class::sync},
    {"baseline/mutex", sync_class::sync},
    {"baseline/rwlock", sync_class::sync},
    {"baseline/native", sync_class::sync},
};

}  // namespace

const char* sync_class_name(sync_class c) noexcept {
    switch (c) {
        case sync_class::plain: return "plain";
        case sync_class::relaxed: return "relaxed";
        case sync_class::sync: return "sync";
    }
    return "?";
}

std::span<const file_contract> register_contracts() noexcept {
    return contracts;
}

const file_contract* find_file_contract(std::string_view file) noexcept {
    for (const file_contract& fc : contracts) {
        if (fc.file == file) return &fc;
    }
    return nullptr;
}

std::optional<sync_class> registry_sync_class(
    std::string_view register_name) noexcept {
    for (const registry_class& rc : registry_classes) {
        if (rc.name == register_name) return rc.cls;
    }
    return std::nullopt;
}

}  // namespace bloom87::analysis
