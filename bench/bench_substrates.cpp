// [TAB-F] Single-thread operation latency for every registered register.
//
// One row per registry entry (src/harness/registry.hpp): median-of-batches
// nanoseconds for a simulated write, a simulated read, and -- where the
// register supports the Section 5 cached-read protocol -- the writer's
// cached read. Every composition pays the same one-virtual-call-per-op
// registry constant, so the RELATIVE ordering across substrates and
// baselines is what this table reports.
//
//   bench_substrates [--writers N] [--readers N] [--json BENCH_substrates.json]
#include <fstream>
#include <iostream>
#include <string>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::harness;

int main(int argc, char** argv) {
    common_flags flags;
    flag_parser parser("bench_substrates",
                       "single-thread op latency across the register registry");
    std::uint64_t iters = 400000;
    parser.add_uint64("iters", "iterations per timing batch", &iters);
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-F",
                 "Operation latency per registered register (single thread)");

    table t({"register", "writers", "write ns", "read ns",
             "cached writer-read ns"});
    bool all_ok = true;
    for (const registry_entry& e : registry()) {
        if (e.info.requires_log) continue;  // recording: measured by TAB-E
        // Clamp the requested writer count into the entry's supported range.
        std::size_t writers = flags.writers;
        if (writers < e.info.min_writers) writers = e.info.min_writers;
        if (writers > e.info.max_writers) writers = e.info.max_writers;
        const latency_result res =
            measure_latency(e.info.name, writers, flags.readers, iters);
        if (!res.ok) {
            std::cerr << e.info.name << ": " << res.error << "\n";
            all_ok = false;
            continue;
        }
        t.row({e.info.name, std::to_string(writers), fixed(res.write_ns, 1),
               fixed(res.read_ns, 1),
               res.cached_read_ns >= 0 ? fixed(res.cached_read_ns, 1) : "-"});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: bloom/packed within a small constant of\n"
              << "baseline/native (3 real reads per simulated read); the\n"
              << "depth-2 fourslot ladder multiplies cost by its fan-out;\n"
              << "blocking baselines are cheap uncontended -- TAB-B and\n"
              << "TAB-C show what contention and stalls do to them.\n";

    if (!flags.json_path.empty()) {
        std::ofstream os(flags.json_path);
        if (!os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        report_writer rep(os, "substrates");
        rep.add_table("latency", t);
        rep.finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return all_ok ? 0 : 1;
}
