// bloom87: counting wrapper around any substrate register.
//
// Reproduces the paper's Section 5 cost accounting: a simulated write is one
// real read plus one real write; a simulated read is three real reads (one
// or two for a caching writer). bench_access_counts wraps the substrates in
// this and prints the measured table.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "analysis/observer.hpp"
#include "registers/concepts.hpp"

namespace bloom87 {

/// Per-register access counters. Shared accesses are the paper's cost unit.
struct access_counts {
    std::uint64_t reads{0};
    std::uint64_t writes{0};

    [[nodiscard]] std::uint64_t total() const noexcept { return reads + writes; }

    friend access_counts operator+(access_counts a, access_counts b) noexcept {
        return {a.reads + b.reads, a.writes + b.writes};
    }
};

/// Wraps a substrate register, counting every real read and write.
template <typename Inner>
class instrumented_register {
public:
    template <typename... Args>
    explicit instrumented_register(Args&&... args)
        : inner_(std::forward<Args>(args)...) {}

    [[nodiscard]] auto read(access_context ctx = {}) {
        reads_.fetch_add(1, std::memory_order_relaxed);
        if (observer_ != nullptr) {
            observer_->on_real_access(ctx.processor, location_, false);
        }
        return inner_.read(ctx);
    }

    template <typename V>
    void write(V v, access_context ctx = {}) {
        writes_.fetch_add(1, std::memory_order_relaxed);
        if (observer_ != nullptr) {
            observer_->on_real_access(ctx.processor, location_, true);
        }
        inner_.write(v, ctx);
    }

    /// Streams every access (before it executes) to an analysis observer --
    /// the bridge into the happens-before race detector. `location`
    /// identifies this register in the observer's location space. The
    /// observer must serialize its own state if accesses are concurrent.
    void set_observer(analysis::access_observer* obs,
                      std::uint32_t location = 0) noexcept {
        observer_ = obs;
        location_ = location;
    }

    [[nodiscard]] access_counts counts() const noexcept {
        return {reads_.load(std::memory_order_relaxed),
                writes_.load(std::memory_order_relaxed)};
    }

    void reset_counts() noexcept {
        reads_.store(0, std::memory_order_relaxed);
        writes_.store(0, std::memory_order_relaxed);
    }

    [[nodiscard]] Inner& inner() noexcept { return inner_; }

private:
    Inner inner_;
    std::atomic<std::uint64_t> reads_{0};
    std::atomic<std::uint64_t> writes_{0};
    analysis::access_observer* observer_{nullptr};
    std::uint32_t location_{0};
};

}  // namespace bloom87
