// Tests for the runtime atomicity monitor: correct registers pass, broken
// ones are caught, pending operations and misuse are handled.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/native_atomic.hpp"
#include "core/two_writer.hpp"
#include "linearizability/monitor.hpp"
#include "registers/packed_atomic.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

TEST(Monitor, EmptyHistoryIsAtomic) {
    atomicity_monitor mon(0);
    const auto v = mon.verify();
    EXPECT_TRUE(v.atomic);
    EXPECT_EQ(v.operations, 0u);
}

TEST(Monitor, SequentialOpsPass) {
    atomicity_monitor mon(5);
    auto w = mon.make_port(0);
    auto r = mon.make_port(2);
    r.begin_read();
    r.end_read(5);
    w.begin_write(9);
    w.end_write();
    r.begin_read();
    r.end_read(9);
    const auto v = mon.verify();
    EXPECT_TRUE(v.atomic) << v.diagnosis;
    EXPECT_EQ(v.operations, 3u);
}

TEST(Monitor, CatchesStaleRead) {
    atomicity_monitor mon(0);
    auto w = mon.make_port(0);
    auto r = mon.make_port(2);
    w.begin_write(7);
    w.end_write();
    r.begin_read();
    r.end_read(0);  // stale: the write completed before this read began
    const auto v = mon.verify();
    EXPECT_FALSE(v.atomic);
    EXPECT_FALSE(v.diagnosis.empty());
}

TEST(Monitor, PendingOperationTreatedAsCrash) {
    atomicity_monitor mon(0);
    auto w = mon.make_port(0);
    auto r = mon.make_port(2);
    w.begin_write(7);  // never ends: pending
    r.begin_read();
    r.end_read(7);  // legal: the pending write may have taken effect
    EXPECT_TRUE(mon.verify().atomic);
}

TEST(Monitor, AbandonAllowsPortReuse) {
    atomicity_monitor mon(0);
    auto w = mon.make_port(0);
    w.begin_write(7);
    w.abandon();  // crashed
    w.begin_write(8);
    w.end_write();
    auto r = mon.make_port(2);
    r.begin_read();
    r.end_read(8);
    EXPECT_TRUE(mon.verify().atomic);
}

TEST(Monitor, WatchesARealRegisterConcurrently) {
    // Put the two-writer register under the monitor with real threads.
    two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>>
        reg(0);
    atomicity_monitor mon(0);
    start_gate gate;

    std::vector<std::thread> pool;
    for (int w = 0; w < 2; ++w) {
        pool.emplace_back([&, w] {
            auto port = mon.make_port(static_cast<processor_id>(w));
            gate.wait();
            for (std::int32_t i = 1; i <= 2000; ++i) {
                const std::int32_t v = (w << 20) | i;
                port.begin_write(v);
                (w == 0 ? reg.writer0() : reg.writer1()).write(v);
                port.end_write();
            }
        });
    }
    for (int r = 0; r < 2; ++r) {
        pool.emplace_back([&, r] {
            auto port = mon.make_port(static_cast<processor_id>(2 + r));
            auto rd = reg.make_reader(static_cast<processor_id>(2 + r));
            gate.wait();
            for (int i = 0; i < 3000; ++i) {
                port.begin_read();
                const std::int32_t v = rd.read();
                port.end_read(v);
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    const auto v = mon.verify();
    EXPECT_TRUE(v.atomic) << v.diagnosis;
    EXPECT_EQ(v.operations, 2u * 2000 + 2u * 3000);
}

TEST(Monitor, CatchesABrokenRegisterConcurrently) {
    // A deliberately broken "register": plain non-atomic read of two
    // separate words written non-atomically (torn view). The monitor must
    // flag SOME run; to keep the test deterministic we fabricate the
    // classic new-old inversion instead of relying on a data race.
    atomicity_monitor mon(0);
    auto w = mon.make_port(0);
    auto r1 = mon.make_port(2);
    auto r2 = mon.make_port(3);
    w.begin_write(1);     // long write...
    r1.begin_read();
    r1.end_read(1);       // reader 1 sees the new value
    r2.begin_read();
    r2.end_read(0);       // reader 2, starting after r1 ended, sees the old
    w.end_write();
    const auto v = mon.verify();
    EXPECT_FALSE(v.atomic);
}

// --- the online verifier (fault-run watcher) over hand-built logs --------

[[nodiscard]] event sim_event(event_kind k, processor_id p, op_index op,
                              value_t v) {
    event e;
    e.kind = k;
    e.processor = p;
    e.op = op;
    e.value = v;
    return e;
}

void append_write(event_log& log, processor_id p, op_index op, value_t v) {
    log.append(sim_event(event_kind::sim_invoke_write, p, op, v));
    log.append(sim_event(event_kind::sim_respond_write, p, op, v));
}

void append_read(event_log& log, processor_id p, op_index op, value_t v) {
    log.append(sim_event(event_kind::sim_invoke_read, p, op, 0));
    log.append(sim_event(event_kind::sim_respond_read, p, op, v));
}

TEST(OnlineVerifier, CleanLogStaysSilent) {
    event_log log(64);
    online_verifier ver(log, 0, /*stride=*/1);
    append_write(log, 0, 0, 7);
    EXPECT_FALSE(ver.poll());
    append_read(log, 2, 0, 7);
    EXPECT_FALSE(ver.poll());
    EXPECT_FALSE(ver.finish());
    EXPECT_EQ(ver.checked_events(), 4u);
    EXPECT_EQ(ver.locate_culprit(), std::nullopt);
}

// A known-bad recorded history with a known culprit: the second read
// returns a value overwritten strictly before it was invoked. The verifier
// must flag it, shrink to the minimal violating prefix, and name the read.
TEST(OnlineVerifier, FlagsTheViolationAtTheRightOp) {
    event_log log(64);
    online_verifier ver(log, 0, /*stride=*/1);
    append_write(log, 0, 0, 7);   // events 0-1
    append_read(log, 2, 0, 7);    // events 2-3: fine
    EXPECT_FALSE(ver.poll());
    append_write(log, 0, 1, 9);   // events 4-5
    append_read(log, 2, 1, 7);    // events 6-7: STALE -- 9 landed first
    EXPECT_TRUE(ver.poll());
    EXPECT_TRUE(ver.violation_found());
    EXPECT_TRUE(ver.finish());
    EXPECT_FALSE(ver.diagnosis().empty());

    const auto culprit = ver.locate_culprit();
    ASSERT_TRUE(culprit.has_value());
    EXPECT_EQ(culprit->processor, 2);
    EXPECT_EQ(culprit->op, 1u);
    // Minimal violating prefix: everything up to and including the stale
    // read's response (8 events) -- no shorter prefix violates.
    EXPECT_EQ(ver.detection_prefix(), 8u);
}

// Detection is sticky: once flagged, later (even "repairing-looking")
// events cannot unflag it -- linearizability is prefix-closed.
TEST(OnlineVerifier, ViolationIsSticky) {
    event_log log(64);
    online_verifier ver(log, 0, /*stride=*/1);
    append_write(log, 0, 0, 5);
    append_read(log, 2, 0, 0);  // stale: initial value after the write
    EXPECT_TRUE(ver.poll());
    append_read(log, 2, 1, 5);  // a perfectly fine later read
    EXPECT_TRUE(ver.poll());
    EXPECT_TRUE(ver.finish());
}

// A read of a value no write produced (a torn word) surfaces as a checker
// defect on the parsed prefix; the verifier must report it as a violation,
// not an internal error.
TEST(OnlineVerifier, TornValueSurfacesAsViolation) {
    event_log log(64);
    online_verifier ver(log, 0, /*stride=*/1);
    append_write(log, 0, 0, 0x0F);
    append_write(log, 1, 0, 0xF0);
    append_read(log, 2, 0, 0xFF);  // neither write produced 0xFF
    EXPECT_TRUE(ver.poll());
    EXPECT_FALSE(ver.diagnosis().empty());
    const auto culprit = ver.locate_culprit();
    ASSERT_TRUE(culprit.has_value());
    EXPECT_EQ(culprit->processor, 2);
}

TEST(Monitor, ReportsOverflow) {
    atomicity_monitor mon(0, /*capacity=*/4);
    auto w = mon.make_port(0);
    for (int i = 1; i <= 5; ++i) {
        w.begin_write(i);
        w.end_write();
    }
    EXPECT_TRUE(mon.overflowed());
    const auto v = mon.verify();
    EXPECT_FALSE(v.atomic);
    EXPECT_NE(v.diagnosis.find("capacity"), std::string::npos);
}

}  // namespace
}  // namespace bloom87
