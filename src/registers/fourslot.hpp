// bloom87: Simpson's four-slot wait-free SWSR atomic register.
//
// The paper's footnote 3 notes that the 1-writer atomic registers it
// consumes "may be simulated using more primitive regular and safe ...
// registers, using protocols from Lamport and others." This file implements
// the classic four-slot algorithm (H.R. Simpson, 1990, building on that same
// line of work): a 1-writer 1-READER atomic register built from four safe
// data slots and four shared control bits, with BOTH operations wait-free
// (no retries, unlike the seqlock).
//
// Shared state:
//   data[pair][index]  four data slots
//   slot[pair]         which index of each pair was written last
//   latest             which pair was written last
//   reading            which pair the reader is using
//
// Writer(v):  wp = !reading; wi = !slot[wp];
//             data[wp][wi] = v; slot[wp] = wi; latest = wp
// Reader():   rp = latest; reading = rp; ri = slot[rp];
//             return data[rp][ri]
//
// The writer always steers away from the pair the reader announced, so a
// slot is never read and written concurrently; the control-bit handshake
// makes the whole construction linearizable. The bounded model checker in
// tests/modelcheck re-verifies this on all interleavings with SAFE slots.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "registers/concepts.hpp"
#include "util/sync.hpp"

namespace bloom87 {

/// Wait-free 1-writer 1-reader atomic register over tagged<T>.
///
/// Thread contract: write() from exactly one thread, read() from exactly one
/// (other) thread. Data slots are stored as relaxed atomic words -- the
/// algorithm guarantees a slot is never accessed concurrently, the atomics
/// only keep the C++ memory model happy; control bits use seq_cst.
template <typename T>
    requires std::is_trivially_copyable_v<T>
class four_slot_register {
public:
    explicit four_slot_register(tagged<T> initial) noexcept {
        // Both slots of both pairs start holding the initial value, so a
        // read racing nothing at all is trivially correct.
        for (auto& pair : data_) {
            for (auto& s : pair) store_slot(s, initial);
        }
    }

    /// Wait-free write; owning writer only.
    void write(tagged<T> v, access_context = {}) noexcept {
        const bool wp = !reading_.load(std::memory_order_seq_cst);
        const bool wi = !slot_[wp].load(std::memory_order_seq_cst);
        store_slot(data_[wp][wi], v);
        slot_[wp].store(wi, std::memory_order_seq_cst);
        latest_.store(wp, std::memory_order_seq_cst);
    }

    /// Wait-free read; owning reader only.
    [[nodiscard]] tagged<T> read(access_context = {}) noexcept {
        const bool rp = latest_.load(std::memory_order_seq_cst);
        reading_.store(rp, std::memory_order_seq_cst);
        const bool ri = slot_[rp].load(std::memory_order_seq_cst);
        return load_slot(data_[rp][ri]);
    }

private:
    static constexpr std::size_t word_count =
        (sizeof(tagged<T>) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);
    using slot_words = std::array<std::atomic<std::uint64_t>, word_count>;

    static void store_slot(slot_words& slots, const tagged<T>& v) noexcept {
        std::array<std::uint64_t, word_count> staging{};
        std::memcpy(staging.data(), static_cast<const void*>(&v),
                    sizeof(tagged<T>));
        for (std::size_t i = 0; i < word_count; ++i) {
            slots[i].store(staging[i], std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_release);
    }

    static tagged<T> load_slot(const slot_words& slots) noexcept {
        std::atomic_thread_fence(std::memory_order_acquire);
        std::array<std::uint64_t, word_count> staging;
        for (std::size_t i = 0; i < word_count; ++i) {
            staging[i] = slots[i].load(std::memory_order_relaxed);
        }
        tagged<T> out;
        std::memcpy(static_cast<void*>(&out), staging.data(), sizeof(tagged<T>));
        return out;
    }

    alignas(cacheline_size) std::array<std::array<slot_words, 2>, 2> data_{};
    std::array<std::atomic<bool>, 2> slot_{};
    std::atomic<bool> latest_{false};
    std::atomic<bool> reading_{false};
};

static_assert(tagged_substrate<four_slot_register<std::int64_t>, std::int64_t>);

}  // namespace bloom87
