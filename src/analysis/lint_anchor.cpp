// bloom87: static-analysis anchor translation unit.
//
// The registers library is header-only, so nothing would hand its headers
// to clang-tidy or the compiler's -Wall/-Wextra/-Werror pass on their own
// terms. This TU includes and instantiates every register header once;
// building the analysis library therefore type-checks, warning-checks, and
// (via compile_commands.json) clang-tidy-checks all of src/registers/ and
// src/util/ -- the scope the CI lint job audits.
#include <cstdint>

#include "registers/concepts.hpp"
#include "registers/faulty.hpp"
#include "registers/fourslot.hpp"
#include "registers/instrumented.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/plain.hpp"
#include "registers/recording.hpp"
#include "registers/seqlock.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "registers/tagged.hpp"
#include "registers/va_register.hpp"
#include "util/bits.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

// Explicit instantiations force full template checking of the header-only
// registers (template member functions excepted; the test suite covers
// those through use).
template class bloom87::plain_register<std::int64_t>;
template class bloom87::seqlock_register<std::int64_t>;
template class bloom87::four_slot_register<std::int64_t>;
template class bloom87::packed_atomic_register<std::int32_t>;
template class bloom87::instrumented_register<
    bloom87::plain_register<bloom87::tagged<std::int64_t>>>;
