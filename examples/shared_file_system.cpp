// shared_file_system: the paper's motivating scenario (Section 1).
//
//   "Consider a collection of computers, each permitted to read all the
//    others' file systems, but only able to write on their own.
//    Multi-writer register algorithms could allow them to simulate a
//    shared file system."
//
// Two nodes each own a local "file" nobody else can write. Running Bloom's
// protocol over those files yields one SHARED file both nodes can write and
// any number of observers can read -- atomically, although no file is ever
// written by more than one node.
//
// The local files are modeled as fixed-size records behind the seqlock
// substrate (any trivially-copyable payload works; a disk-backed file with
// an advisory read protocol would slot in the same way).
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "registers/seqlock.hpp"
#include "util/sync.hpp"

namespace {

// One "file": a fixed-size record, trivially copyable so any substrate can
// hold it.
struct file_record {
    char text[120]{};
    std::int64_t revision{0};
};

file_record make_record(const std::string& text, std::int64_t rev) {
    file_record r;
    std::snprintf(r.text, sizeof(r.text), "%s", text.c_str());
    r.revision = rev;
    return r;
}

}  // namespace

int main() {
    using shared_file =
        bloom87::two_writer_register<file_record,
                                     bloom87::seqlock_register<file_record>>;

    shared_file config(make_record("cluster.conf: initial", 0));

    // Node A and node B both publish new revisions of the shared config,
    // each through its OWN write port (= its own local file system).
    bloom87::start_gate gate;
    bloom87::stop_flag done;
    std::thread node_a([&] {
        gate.wait();
        for (std::int64_t rev = 1; rev <= 500; ++rev) {
            config.writer0().write(
                make_record("cluster.conf: nodeA rev " + std::to_string(rev),
                            rev * 2));
            std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
    });
    std::thread node_b([&] {
        gate.wait();
        for (std::int64_t rev = 1; rev <= 500; ++rev) {
            config.writer1().write(
                make_record("cluster.conf: nodeB rev " + std::to_string(rev),
                            rev * 2 + 1));
            std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
    });

    // Observers poll the shared file; each must see revisions that are
    // internally consistent (the record is read atomically -- text always
    // matches revision) and, per observer, need never go backwards more
    // than concurrency allows.
    std::vector<std::thread> observers;
    for (int o = 0; o < 3; ++o) {
        observers.emplace_back([&, o] {
            auto port = config.make_reader(static_cast<bloom87::processor_id>(2 + o));
            gate.wait();
            file_record last{};
            int observed = 0;
            while (!done.stop_requested()) {
                const file_record now = port.read();
                // Consistency: the text embeds the same revision parity the
                // writer put in `revision`.
                const bool from_a = now.revision % 2 == 0;
                if (now.revision != 0 &&
                    std::strstr(now.text, from_a ? "nodeA" : "nodeB") == nullptr) {
                    std::printf("observer %d: TORN RECORD! rev=%lld text=%s\n",
                                o, static_cast<long long>(now.revision), now.text);
                    return;
                }
                if (now.revision != last.revision) ++observed;
                last = now;
            }
            std::printf("observer %d: saw %d distinct revisions, last: \"%s\"\n",
                        o, observed, last.text);
        });
    }

    gate.open();
    node_a.join();
    node_b.join();
    done.request_stop();
    for (auto& t : observers) t.join();

    auto port = config.make_reader(7);
    const file_record final_rec = port.read();
    std::printf("final shared file: \"%s\" (revision %lld)\n", final_rec.text,
                static_cast<long long>(final_rec.revision));
    std::printf("no node ever wrote another node's file; the shared file is "
                "a protocol illusion.\n");
    return 0;
}
