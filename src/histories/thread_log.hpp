// bloom87: per-thread lock-free event logs + the deterministic seq merge.
//
// The shared MPMC event_log (event_log.hpp) costs every recorded event one
// contended fetch_add, one store into a shared slot array, and one shared
// ready-flag publish. This header is the contention-free alternative the
// harness's per-thread collection mode runs on:
//
//  * a global `seq_source` hands out 64-bit sequence numbers with a single
//    relaxed fetch_add -- the ONLY shared write on the record path. The
//    fetch_add order is a legal serialization of the recording instants
//    (each stamp is drawn inside its operation's invocation..response
//    window), so sorting by seq reconstructs a valid external schedule;
//  * each worker owns one `event_ring`: a fixed-capacity single-producer/
//    single-consumer ring of {seq, event} records. Appends are plain
//    stores plus one release publish of the head index; no allocation
//    after construction. With capacity covering a scripted run the ring
//    doubles as a flat slab (nothing is popped until the merge);
//  * `ring_merger` stitches the rings back into one gamma-ordered stream
//    by ascending seq. Per-ring seqs are strictly increasing (a producer
//    draws stamps in program order), so the merger can emit the minimum
//    head as soon as every unfinished ring is non-empty -- which makes the
//    same merger work post-run (all rings finished) and LIVE, chasing the
//    producers while they append.
//
// Determinism: under the seeded single-thread schedule, seq assignment is
// a pure function of the spec, so the merged history is byte-identical
// across runs -- the property tests/streaming_test.cpp pins.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "histories/events.hpp"

namespace bloom87 {

/// Global sequence stamps: one relaxed fetch_add per record. Shared by all
/// producers of one run; the total order of draws is consistent with each
/// thread's program order and with cross-thread real time.
class seq_source {
public:
    [[nodiscard]] std::uint64_t draw() noexcept {
        return next_.fetch_add(1, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t issued() const noexcept {
        return next_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> next_{0};
};

/// One seq-stamped gamma event.
struct stamped_event {
    std::uint64_t seq{0};
    event e{};
};

/// Fixed-capacity SPSC ring of stamped events. The producer never
/// allocates; when the ring is full it yields until the consumer drains
/// (backpressure -- counted in stalls() so saturation is visible, not
/// silent). Sized to cover the whole run, push never blocks and the ring
/// behaves as an append-only slab.
class event_ring {
public:
    explicit event_ring(std::size_t capacity) {
        std::size_t cap = 16;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    event_ring(const event_ring&) = delete;
    event_ring& operator=(const event_ring&) = delete;

    // ---- producer side (one thread) ----

    void push(std::uint64_t seq, const event& e) noexcept {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        while (h - tail_.load(std::memory_order_acquire) > mask_) {
            ++stalls_;
            std::this_thread::yield();
        }
        slots_[h & mask_] = {seq, e};
        head_.store(h + 1, std::memory_order_release);
    }

    /// Waits until at least `n` slots are free. Recorders call this at
    /// OPERATION boundaries (before invoking), so the pushes inside an
    /// operation never block: a producer stalled mid-operation would keep
    /// that operation open in the merged stream, pinning the streaming
    /// checker's quiescent cut for the whole stall -- checker slows,
    /// backpressure worsens, retention grows, a feedback loop. Stalling
    /// between operations pins nothing.
    void reserve(std::size_t n) noexcept {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        while (h + n - tail_.load(std::memory_order_acquire) > mask_ + 1) {
            ++stalls_;
            std::this_thread::yield();
        }
    }

    /// Producer is done; the merger treats empty-and-finished as closed.
    void finish() noexcept { done_.store(true, std::memory_order_release); }

    [[nodiscard]] std::uint64_t stalls() const noexcept { return stalls_; }

    // ---- consumer side (one thread) ----

    [[nodiscard]] bool peek(stamped_event* out) const noexcept {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (head_.load(std::memory_order_acquire) == t) return false;
        *out = slots_[t & mask_];
        return true;
    }

    void pop() noexcept {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        tail_.store(t + 1, std::memory_order_release);
    }

    [[nodiscard]] bool finished() const noexcept {
        return done_.load(std::memory_order_acquire);
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

private:
    std::vector<stamped_event> slots_;
    std::size_t mask_{0};
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> tail_{0};
    std::atomic<bool> done_{false};
    std::uint64_t stalls_{0};  ///< producer-private backpressure counter
};

/// K-way merge of event rings by ascending seq. Single consumer thread.
/// next() blocks (yielding) while any unfinished ring is empty -- an empty
/// live ring may still publish a smaller seq than every current head, so
/// emitting early would break the global order. Liveness holds because
/// producers publish each record immediately after drawing its stamp.
class ring_merger {
public:
    explicit ring_merger(std::span<event_ring* const> rings)
        : rings_(rings.begin(), rings.end()) {}

    /// Emits the next event in global seq order; false when every ring is
    /// finished and drained.
    bool next(stamped_event* out) {
        for (;;) {
            bool waiting = false;
            std::size_t best = rings_.size();
            stamped_event best_se{};
            for (std::size_t i = 0; i < rings_.size(); ++i) {
                stamped_event se;
                if (!rings_[i]->peek(&se)) {
                    if (!rings_[i]->finished()) {
                        waiting = true;
                        break;
                    }
                    // finish() is released after the last push: one
                    // re-peek catches a record published just before it.
                    if (!rings_[i]->peek(&se)) continue;
                }
                if (best == rings_.size() || se.seq < best_se.seq) {
                    best = i;
                    best_se = se;
                }
            }
            if (waiting) {
                std::this_thread::yield();
                continue;
            }
            if (best == rings_.size()) return false;  // all drained
            rings_[best]->pop();
            *out = best_se;
            return true;
        }
    }

private:
    std::vector<event_ring*> rings_;
};

}  // namespace bloom87
