#include "linearizability/regularity.hpp"

#include <algorithm>
#include <sstream>

namespace bloom87 {

regularity_result check_regular_swmr(const std::vector<operation>& ops,
                                     value_t initial) {
    regularity_result out;

    std::vector<const operation*> writes;
    for (const operation& op : ops) {
        if (op.kind == op_kind::write) writes.push_back(&op);
    }
    std::sort(writes.begin(), writes.end(),
              [](const operation* a, const operation* b) {
                  return a->invoked < b->invoked;
              });
    for (std::size_t i = 1; i < writes.size(); ++i) {
        if (writes[i]->id.processor != writes[0]->id.processor) {
            out.regular = false;
            out.diagnosis = "check_regular_swmr requires a single writer";
            return out;
        }
    }

    for (const operation& op : ops) {
        if (op.kind != op_kind::read || !op.complete()) continue;

        // Last write that completed before this read began.
        value_t before = initial;
        for (const operation* w : writes) {
            if (w->responded < op.invoked) before = w->value;
        }
        if (op.value == before) continue;

        // Otherwise some overlapping write must have produced the value.
        const bool overlapping_match = std::any_of(
            writes.begin(), writes.end(), [&](const operation* w) {
                const bool w_before_r = w->responded < op.invoked;
                const bool r_before_w = op.responded < w->invoked;
                return !w_before_r && !r_before_w && w->value == op.value;
            });
        if (!overlapping_match) {
            std::ostringstream oss;
            oss << "read by proc " << op.id.processor << " op " << op.id.op
                << " returned " << op.value
                << ", but the preceding value was " << before
                << " and no overlapping write wrote it";
            out.regular = false;
            out.diagnosis = oss.str();
            return out;
        }
    }
    return out;
}

regularity_result check_safe_swmr(const std::vector<operation>& ops,
                                  value_t initial) {
    regularity_result out;

    std::vector<const operation*> writes;
    for (const operation& op : ops) {
        if (op.kind == op_kind::write) writes.push_back(&op);
    }
    std::sort(writes.begin(), writes.end(),
              [](const operation* a, const operation* b) {
                  return a->invoked < b->invoked;
              });
    for (std::size_t i = 1; i < writes.size(); ++i) {
        if (writes[i]->id.processor != writes[0]->id.processor) {
            out.regular = false;
            out.diagnosis = "check_safe_swmr requires a single writer";
            return out;
        }
    }

    for (const operation& op : ops) {
        if (op.kind != op_kind::read || !op.complete()) continue;

        const bool overlapped = std::any_of(
            writes.begin(), writes.end(), [&](const operation* w) {
                const bool w_before_r = w->responded < op.invoked;
                const bool r_before_w = op.responded < w->invoked;
                return !w_before_r && !r_before_w;
            });
        if (overlapped) continue;  // anything goes

        value_t before = initial;
        for (const operation* w : writes) {
            if (w->responded < op.invoked) before = w->value;
        }
        if (op.value != before) {
            std::ostringstream oss;
            oss << "non-overlapping read by proc " << op.id.processor << " op "
                << op.id.op << " returned " << op.value << " instead of "
                << before;
            out.regular = false;
            out.diagnosis = oss.str();
            return out;
        }
    }
    return out;
}

}  // namespace bloom87
