// bloom87: log-scale latency histogram for the harness hot path.
//
// Fixed-size, allocation-free, single-writer: each worker thread owns one
// and records nanosecond latencies into power-of-two "octaves" split into
// 16 sub-buckets, giving <= 1/16 (~6%) relative quantile error across the
// whole 1ns .. ~18min range. Histograms merge by bucket-wise addition, so
// the driver can fold every thread's distribution into one p50/p99/p999
// summary without keeping (or sorting) raw samples -- the point: latency
// percentiles at millions of ops/sec cost one array increment per op, not
// one allocation per sample.
//
// Values below 16ns land in exact unit buckets; the tracked maximum is
// exact (the observed value, not a bucket bound).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace bloom87 {

class latency_histogram {
public:
    static constexpr unsigned sub_bits = 4;
    static constexpr unsigned sub_count = 1u << sub_bits;  // 16 per octave
    static constexpr unsigned max_exp = 40;                // ~18 min in ns
    static constexpr std::size_t bucket_count =
        sub_count + (max_exp - sub_bits) * sub_count;

    void record(std::uint64_t ns) noexcept {
        ++counts_[index(ns)];
        ++total_;
        if (ns > max_) max_ = ns;
    }

    void merge(const latency_histogram& other) noexcept {
        for (std::size_t i = 0; i < bucket_count; ++i) {
            counts_[i] += other.counts_[i];
        }
        total_ += other.total_;
        if (other.max_ > max_) max_ = other.max_;
    }

    void clear() noexcept {
        counts_.fill(0);
        total_ = 0;
        max_ = 0;
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_; }

    /// Value (ns) at quantile q in [0, 1]: the midpoint of the covering
    /// bucket, clamped to the exact observed maximum. 0 when empty.
    [[nodiscard]] double quantile(double q) const noexcept {
        if (total_ == 0) return 0;
        if (q < 0) q = 0;
        if (q > 1) q = 1;
        const auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(total_ - 1));
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < bucket_count; ++i) {
            cum += counts_[i];
            if (cum > rank) {
                const double mid =
                    static_cast<double>(bucket_lo(i)) +
                    static_cast<double>(bucket_width(i)) / 2.0;
                const auto cap = static_cast<double>(max_);
                return mid < cap ? mid : cap;
            }
        }
        return static_cast<double>(max_);
    }

private:
    [[nodiscard]] static constexpr std::size_t index(std::uint64_t ns) noexcept {
        if (ns < sub_count) return static_cast<std::size_t>(ns);
        unsigned e = 63u - static_cast<unsigned>(std::countl_zero(ns));
        if (e >= max_exp) {
            e = max_exp - 1;
            ns = (std::uint64_t{1} << max_exp) - 1;
        }
        const std::uint64_t sub = (ns >> (e - sub_bits)) & (sub_count - 1);
        return (e - sub_bits + 1) * sub_count + static_cast<std::size_t>(sub);
    }

    [[nodiscard]] static constexpr std::uint64_t bucket_lo(
        std::size_t idx) noexcept {
        if (idx < sub_count) return idx;
        const auto g = static_cast<unsigned>(idx / sub_count);  // >= 1
        const auto sub = static_cast<std::uint64_t>(idx % sub_count);
        const unsigned e = g + sub_bits - 1;
        return (std::uint64_t{1} << e) + (sub << (e - sub_bits));
    }

    [[nodiscard]] static constexpr std::uint64_t bucket_width(
        std::size_t idx) noexcept {
        if (idx < sub_count) return 1;
        const auto g = static_cast<unsigned>(idx / sub_count);
        return std::uint64_t{1} << (g - 1);
    }

    std::array<std::uint64_t, bucket_count> counts_{};
    std::uint64_t total_{0};
    std::uint64_t max_{0};
};

}  // namespace bloom87
