#include "histories/workload.hpp"

#include "util/rng.hpp"

namespace bloom87 {

workload make_workload(const workload_config& cfg, std::uint64_t seed) {
    rng gen(seed);
    workload w;
    w.writers = cfg.writers;
    w.scripts.resize(cfg.writers + cfg.readers);

    for (std::size_t p = 0; p < cfg.writers; ++p) {
        auto& script = w.scripts[p];
        script.reserve(cfg.ops_per_writer);
        std::uint32_t counter = 0;
        for (std::size_t k = 0; k < cfg.ops_per_writer; ++k) {
            if (gen.chance(cfg.writer_read_num, cfg.writer_read_den)) {
                script.push_back({op_kind::read, 0});
            } else {
                script.push_back(
                    {op_kind::write,
                     unique_value(static_cast<processor_id>(p), counter++)});
            }
        }
    }
    for (std::size_t r = 0; r < cfg.readers; ++r) {
        auto& script = w.scripts[cfg.writers + r];
        script.assign(cfg.ops_per_reader, workload_op{op_kind::read, 0});
    }
    return w;
}

}  // namespace bloom87
