// [TAB-B] Wait-freedom under a stalled processor (paper, Section 4).
//
// The paper rejects mutual-exclusion designs because "one processor could
// crash while reading the register and block all further access." This
// bench stalls one participant for 20 ms -- inside its critical section for
// the lock baselines, between its real read and real write for Bloom's
// protocol, mid-read for a Bloom reader -- and measures reader latency
// during the stall through the harness (measure_stall). The mutex reader's
// worst case tracks the stall; Bloom's readers never notice.
//
//   bench_stall_tolerance [--json BENCH_stall_tolerance.json]
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::harness;

int main(int argc, char** argv) {
    common_flags flags;
    flag_parser parser("bench_stall_tolerance",
                       "reader latency while one processor stalls for 20 ms");
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-B",
                 "Reader latency while one processor stalls for 20 ms");

    struct scenario {
        std::string reg;
        std::string label;
        port_role stalled;
    };
    const std::vector<scenario> scenarios = {
        {"baseline/mutex", "lock holder (crashed in CS)", port_role::writer},
        {"baseline/rwlock", "writer (crashed in CS)", port_role::writer},
        {"bloom/packed", "writer (stalled mid-write)", port_role::writer},
        {"bloom/packed", "reader (crashed mid-read)", port_role::reader},
    };

    table t({"register", "stalled processor", "reads", "p50 (us)", "p99 (us)",
             "max (us)"});
    bool all_ok = true;
    for (const scenario& s : scenarios) {
        stall_spec spec;
        spec.register_name = s.reg;
        spec.stalled_role = s.stalled;
        spec.stall_ms = 20;
        spec.run_ms = 60;
        const stall_result res = measure_stall(spec);
        if (!res.ok) {
            std::cerr << s.reg << ": " << res.error << "\n";
            all_ok = false;
            continue;
        }
        t.row({s.reg, s.label, with_commas(res.reads), fixed(res.p50_us),
               fixed(res.p99_us), fixed(res.max_us)});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: the mutex reader's max latency tracks the\n"
              << "20 ms stall; Bloom's readers stay in the microsecond range\n"
              << "no matter who stalls or crashes (wait-freedom).\n";

    if (!flags.json_path.empty()) {
        std::ofstream os(flags.json_path);
        if (!os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        report_writer rep(os, "stall_tolerance");
        rep.add_table("stall_latency", t);
        rep.finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return all_ok ? 0 : 1;
}
