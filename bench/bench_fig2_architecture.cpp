// [FIG2] Regenerates Figure 2 of the paper: the architecture of the
// simulated register -- n+4 automata (two real registers, two writers, n
// readers) and the channel matrix between them. The matrix is derived from
// the automata's actual signatures, not hard-coded, so it doubles as a
// structural test of the composition.
//
//   bench_fig2_architecture [--json BENCH_fig2.json]
#include <fstream>
#include <iostream>

#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "ioa/protocol_automata.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace bloom87;
    using namespace bloom87::ioa;

    harness::flag_parser parser("bench_fig2_architecture",
                                "architecture of the simulated register");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    constexpr int readers = 3;
    print_banner(std::cout, "FIG2",
                 "Architecture of the simulated register (n = 3 readers)");

    std::vector<env_port> ports;  // empty scripts; we only inspect structure
    ports.push_back({"ext:wr0", {}});
    ports.push_back({"ext:wr1", {}});
    for (int j = 1; j <= readers; ++j) {
        ports.push_back({"ext:rd" + std::to_string(j), {}});
    }
    simulated_register_system sys =
        make_simulated_register(0, readers, std::move(ports));

    std::cout << "Automata (" << sys.system->parts().size()
              << " incl. environment; the paper counts n+4 = " << readers + 4
              << "):\n";
    for (const automaton* a : sys.system->parts()) {
        std::cout << "  " << a->name() << "\n";
    }

    // Channel matrix: for each processor automaton, which register it can
    // read and which it can write -- probed through the signatures.
    std::cout << "\nChannel matrix (derived from automaton signatures):\n\n";
    table t({"Processor", "reads Reg0", "reads Reg1", "writes Reg0",
             "writes Reg1", "external port"});
    auto probe = [&](const std::string& who, const std::string& ext) {
        auto can = [&](const automaton* reg, act kind, const std::string& chan) {
            return reg->in_input(action{kind, chan, 0});
        };
        const automaton* reg0 = sys.reg0;
        const automaton* reg1 = sys.reg1;
        t.row({who,
               can(reg0, act::read_request, who + "->reg0") ? "yes" : "-",
               can(reg1, act::read_request, who + "->reg1") ? "yes" : "-",
               can(reg0, act::write_request, who + "->reg0") ? "yes" : "-",
               can(reg1, act::write_request, who + "->reg1") ? "yes" : "-",
               ext});
    };
    probe("wr0", "ext:wr0");
    probe("wr1", "ext:wr1");
    for (int j = 1; j <= readers; ++j) {
        probe("rd" + std::to_string(j), "ext:rd" + std::to_string(j));
    }
    t.print(std::cout);

    std::cout << "\nAs in the paper: Wr_i writes Reg_i and reads (but cannot\n"
              << "write) Reg_{1-i}; every reader reads both real registers;\n"
              << "each real register is 1-writer, (n+1)-reader.\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fig2_architecture");
        rep.add_table("channel_matrix", t);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
