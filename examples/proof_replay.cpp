// proof_replay: watch the paper's proof run on a live execution.
//
// Records a real multi-threaded execution of the two-writer register
// through the run harness (recording substrate, paced writers so impotent
// writes actually occur, one slow reader), then runs the constructive
// linearizer (Section 7 of the paper, as code) and prints what the proof
// "saw": potency classification, prefinishers, read classes, and the
// final linearization order with every operation's linearization point.
#include <cstdio>

#include "harness/driver.hpp"
#include "linearizability/bloom_linearizer.hpp"

using namespace bloom87;

int main() {
    // A handful of operations each -- small enough to print whole.
    harness::run_spec spec;
    spec.register_name = "bloom/recording";
    spec.load.writers = 2;
    spec.load.readers = 1;
    spec.load.ops_per_writer = 8;
    spec.load.ops_per_reader = 8;
    spec.load.writer_read_num = 0;  // writers only write here
    spec.seed = 41;
    spec.collect = harness::collect_mode::gamma;
    spec.pace.writer_pace_num = 1;
    spec.pace.writer_pace_den = 2;
    spec.pace.reader_pace_num = 1;
    spec.pace.reader_pace_den = 2;
    spec.pace.pause_yields = 192;
    const harness::run_result run = harness::run(spec);
    if (!run.ok) {
        std::printf("run failed: %s\n", run.error.c_str());
        return 1;
    }

    parse_result parsed = parse_history(run.events, 0);
    if (!parsed.ok()) {
        std::printf("recording malformed: %s\n", parsed.error->message.c_str());
        return 1;
    }
    const history& h = parsed.hist;
    std::printf("recorded %zu gamma events, %zu simulated operations\n\n",
                h.gamma.size(), h.ops.size());

    const bloom_result res = bloom_linearize(h);
    if (!res.ok()) {
        std::printf("gamma structurally broken: %s\n", res.defect->c_str());
        return 1;
    }

    std::printf("--- write classification (paper, Section 7) ---\n");
    for (const write_analysis& wa : res.writes) {
        std::printf("  Wr%d op %u: %s", wa.writer, wa.id.op,
                    wa.potent ? "POTENT" : "impotent");
        if (wa.has_prefinisher) {
            std::printf("  (prefinished by Wr%d op %u)",
                        wa.prefinisher.processor, wa.prefinisher.op);
        }
        std::printf("\n");
    }

    std::printf("\n--- read classification ---\n");
    for (const read_analysis& ra : res.reads) {
        const char* cls = ra.cls == read_class::of_potent    ? "of a potent write"
                          : ra.cls == read_class::of_impotent ? "of an IMPOTENT write"
                                                              : "of the initial value";
        std::printf("  Rd proc %d op %u: read %s", ra.id.processor, ra.id.op, cls);
        if (ra.cls != read_class::of_initial) {
            std::printf(" (Wr%d op %u)", ra.source.processor, ra.source.op);
        }
        std::printf("\n");
    }

    std::printf("\n--- constructed linearization (the *-action order) ---\n");
    if (!res.atomic) {
        std::printf("NOT ATOMIC: %s\n", res.diagnosis.c_str());
        return 2;
    }
    for (const star_action& sa : res.linearization) {
        const operation* op = h.find(sa.id);
        if (op->kind == op_kind::write) {
            std::printf("  Wr%d writes %lld", sa.id.processor,
                        static_cast<long long>(op->value));
        } else {
            std::printf("  proc %d reads %lld", sa.id.processor,
                        static_cast<long long>(op->value));
        }
        std::printf("   [*-action after gamma position %llu]\n",
                    static_cast<unsigned long long>(sa.anchor));
    }
    std::printf("\nverdict: ATOMIC -- the proof terminated with a legal\n"
                "sequential order, exactly as Section 7 promises.\n");
    return 0;
}
