// quickstart: the two-writer atomic register in thirty lines.
//
// Two writer threads and a few reader threads share one register; the
// protocol gives every operation a single linearization point without any
// locking -- exactly the guarantee of Bloom (PODC 1987).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "registers/packed_atomic.hpp"

int main() {
    using reg_t = bloom87::two_writer_register<
        int, bloom87::packed_atomic_register<int>>;
    reg_t reg(0);  // initial value 0

    std::thread writer_a([&] {
        for (int v = 1; v <= 1000; ++v) reg.writer0().write(v * 2);
    });
    std::thread writer_b([&] {
        for (int v = 1; v <= 1000; ++v) reg.writer1().write(v * 2 + 1);
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&, r] {
            auto port = reg.make_reader(static_cast<bloom87::processor_id>(2 + r));
            long long sum = 0;
            int last = 0;
            for (int i = 0; i < 1000; ++i) {
                last = port.read();
                sum += last;
            }
            std::printf("reader %d: last value %d, sum %lld\n", r, last, sum);
        });
    }

    writer_a.join();
    writer_b.join();
    for (auto& t : readers) t.join();

    auto port = reg.make_reader(5);
    std::printf("final value: %d (2000 if writer0 landed last, 2001 if writer1)\n",
                port.read());
    return 0;
}
