// [TAB-G] The register-simulation ladder, priced.
//
// The paper's footnote 3 observes that its "real" 1-writer registers may
// themselves be simulated from weaker registers. This bench builds Bloom's
// two-writer register at three substrate depths and measures the cost of
// each rung:
//
//   depth 0: hardware word          (packed_atomic_register)
//   depth 1: seqlock over words     (arbitrary-size values)
//   depth 2: SWMR simulated from SWSR four-slot registers
//            (Attiya-Welch-style multi-reader construction over Simpson's
//             algorithm -- nothing stronger than safe slots + control bits)
//
// Also reports the SWSR-register budget of depth 2 as readers scale.
#include <chrono>
#include <iostream>

#include "core/two_writer.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/seqlock.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "util/table.hpp"

using namespace bloom87;

namespace {

template <typename Reg, typename MakeReg>
void measure_row(table& t, const std::string& name, MakeReg&& make) {
    auto reg = make();
    auto rd = reg.make_reader(2);
    constexpr int iters = 400000;

    auto time_ns = [&](auto&& op) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i) op(i);
        const auto t1 = std::chrono::steady_clock::now();
        return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
    };

    const double w_ns = time_ns([&](int i) {
        reg.writer0().write(static_cast<std::int64_t>(i));
    });
    const double r_ns = time_ns([&](int) { (void)rd.read(); });
    const double rc_ns =
        time_ns([&](int) { (void)reg.writer0().read_cached(); });

    t.row({name, fixed(w_ns, 1), fixed(r_ns, 1), fixed(rc_ns, 1)});
}

}  // namespace

int main() {
    print_banner(std::cout, "TAB-G",
                 "Two-writer register over progressively weaker substrates");

    table t({"substrate (depth)", "write ns", "read ns", "cached writer-read ns"});

    measure_row<two_writer_register<std::int64_t, seqlock_register<std::int64_t>>>(
        t, "hw word via seqlock (depth 1)", [] {
            return two_writer_register<std::int64_t,
                                       seqlock_register<std::int64_t>>(0);
        });
    measure_row<
        two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>>>(
        t, "hw atomic word (depth 0)", [] {
            return two_writer_register<std::int32_t,
                                       packed_atomic_register<std::int32_t>>(0);
        });
    for (std::size_t readers : {1u, 2u, 4u}) {
        measure_row<
            two_writer_register<std::int64_t, ported_substrate<std::int64_t>>>(
            t,
            "four-slot SWSR stack, n=" + std::to_string(readers) +
                " (depth 2)",
            [readers] {
                return two_writer_register<std::int64_t,
                                           ported_substrate<std::int64_t>>(
                    0, [readers](tagged<std::int64_t> init, int reg_index) {
                        return ported_substrate<std::int64_t>(init, readers,
                                                              reg_index);
                    });
            });
    }
    t.print(std::cout);

    std::cout << "\nSWSR-register budget of the depth-2 stack (per simulated "
              << "register, both real registers):\n\n";
    table b({"simulated readers n", "ports per real reg", "SWSR registers total"});
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
        ported_substrate<std::int64_t> probe(tagged<std::int64_t>{0, false}, n, 0);
        b.row({std::to_string(n), std::to_string(n + 2),
               with_commas(2 * probe.swsr_register_count())});
    }
    b.print(std::cout);

    std::cout << "\nExpected shape: each simulation rung multiplies the cost\n"
              << "roughly by its fan-out (depth 2 read = n+1 SWSR reads + n\n"
              << "SWSR writes per real-register read, three real reads per\n"
              << "simulated read), while preserving wait-freedom.\n";
    return 0;
}
