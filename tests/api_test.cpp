// API-surface tests: concept conformance of every substrate, value-type
// generality of the two-writer register (integers, floats, enums, structs),
// and compile-time interface guarantees.
#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

#include "core/two_writer.hpp"
#include "registers/concepts.hpp"
#include "registers/fourslot.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/recording.hpp"
#include "registers/seqlock.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "util/bits.hpp"

namespace bloom87 {
namespace {

// ---------------------------------------------------------------------------
// Compile-time interface guarantees.
// ---------------------------------------------------------------------------

// Every substrate satisfies the SWMR register concept over its value type.
static_assert(swmr_register<packed_atomic_register<std::int32_t>,
                            tagged<std::int32_t>>);
static_assert(swmr_register<seqlock_register<double>, tagged<double>>);
static_assert(swmr_register<four_slot_register<std::int64_t>,
                            tagged<std::int64_t>>);
static_assert(swmr_register<recording_register, tagged<value_t>>);
static_assert(swmr_register<ported_substrate<std::int32_t>,
                            tagged<std::int32_t>>);

// word_packable covers exactly the types the packed substrate accepts.
static_assert(word_packable<std::int8_t>);
static_assert(word_packable<std::uint32_t>);
static_assert(word_packable<float>);
static_assert(!word_packable<std::int64_t>);  // needs all 64 bits
static_assert(!word_packable<double>);

// Registers are pinned in memory (no copies or moves that would tear the
// protocol state out from under concurrent users).
static_assert(!std::is_copy_constructible_v<
              two_writer_register<int, packed_atomic_register<int>>>);
static_assert(!std::is_copy_assignable_v<
              two_writer_register<int, packed_atomic_register<int>>>);

enum class color : std::uint8_t { red, green, blue };
static_assert(word_packable<color>);

struct coordinates {
    double x{0}, y{0}, z{0};
    friend bool operator==(const coordinates&, const coordinates&) = default;
};

// ---------------------------------------------------------------------------
// Value-type generality.
// ---------------------------------------------------------------------------

TEST(ValueTypes, FloatOverPackedSubstrate) {
    two_writer_register<float, packed_atomic_register<float>> reg(1.5f);
    auto rd = reg.make_reader(2);
    EXPECT_EQ(rd.read(), 1.5f);
    reg.writer0().write(2.25f);
    EXPECT_EQ(rd.read(), 2.25f);
    reg.writer1().write(-0.125f);
    EXPECT_EQ(rd.read(), -0.125f);
    EXPECT_EQ(reg.writer0().read_cached(), -0.125f);
}

TEST(ValueTypes, EnumOverPackedSubstrate) {
    two_writer_register<color, packed_atomic_register<color>> reg(color::red);
    auto rd = reg.make_reader(2);
    EXPECT_EQ(rd.read(), color::red);
    reg.writer1().write(color::blue);
    EXPECT_EQ(rd.read(), color::blue);
    reg.writer0().write(color::green);
    EXPECT_EQ(reg.writer1().read(), color::green);
}

TEST(ValueTypes, StructOverSeqlockSubstrate) {
    two_writer_register<coordinates, seqlock_register<coordinates>> reg(
        coordinates{1, 2, 3});
    auto rd = reg.make_reader(2);
    EXPECT_EQ(rd.read(), (coordinates{1, 2, 3}));
    reg.writer0().write(coordinates{4, 5, 6});
    EXPECT_EQ(rd.read(), (coordinates{4, 5, 6}));
    reg.writer1().write(coordinates{7, 8, 9});
    EXPECT_EQ(reg.writer0().read_cached(), (coordinates{7, 8, 9}));
}

TEST(ValueTypes, DoubleOverFourSlotStack) {
    // The whole simulation ladder with a floating-point payload.
    using stack = two_writer_register<double, ported_substrate<double>>;
    stack reg(0.5, [](tagged<double> init, int reg_index) {
        return ported_substrate<double>(init, /*sim_readers=*/1, reg_index);
    });
    auto rd = reg.make_reader(2);
    EXPECT_EQ(rd.read(), 0.5);
    reg.writer1().write(3.125);
    EXPECT_EQ(rd.read(), 3.125);
    reg.writer0().write(-2.5);
    EXPECT_EQ(rd.read(), -2.5);
}

TEST(ValueTypes, NegativeValuesPackCorrectly) {
    // Bit 63 carries the tag; negative small ints must survive the round
    // trip through the packed word.
    two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>>
        reg(-1);
    auto rd = reg.make_reader(2);
    EXPECT_EQ(rd.read(), -1);
    reg.writer0().write(std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(rd.read(), std::numeric_limits<std::int32_t>::min());
    reg.writer1().write(std::numeric_limits<std::int32_t>::max());
    EXPECT_EQ(rd.read(), std::numeric_limits<std::int32_t>::max());
}

// ---------------------------------------------------------------------------
// Port/handle semantics.
// ---------------------------------------------------------------------------

TEST(Ports, ReaderHandlesAreIndependent) {
    two_writer_register<int, packed_atomic_register<int>> reg(0);
    auto r1 = reg.make_reader(2);
    auto r2 = reg.make_reader(3);
    reg.writer0().write(5);
    EXPECT_EQ(r1.read(), 5);
    EXPECT_EQ(r2.read(), 5);
    EXPECT_EQ(r1.processor(), 2);
    EXPECT_EQ(r2.processor(), 3);
}

TEST(Ports, WriterIndicesAreFixed) {
    two_writer_register<int, packed_atomic_register<int>> reg(0);
    EXPECT_EQ(reg.writer0().index(), 0);
    EXPECT_EQ(reg.writer1().index(), 1);
}

}  // namespace
}  // namespace bloom87
