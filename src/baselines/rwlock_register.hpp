// bloom87: readers-writers lock baseline (the paper's [CHP] reference).
//
// Courtois, Heymans & Parnas's readers-writers problem is the classic
// mutual-exclusion approach to the same resource-sharing shape: many
// readers OR one writer. Modern C++ packages it as std::shared_mutex. Like
// the plain mutex baseline it provides atomicity by BLOCKING -- readers
// scale better than a plain mutex when writes are rare, but a stalled
// writer still wedges every reader, which is exactly the failure mode the
// paper's wait-free protocol exists to avoid (Section 4).
#pragma once

#include <map>
#include <mutex>
#include <shared_mutex>

#include "histories/event_log.hpp"
#include "histories/events.hpp"

namespace bloom87 {

/// MRMW atomic register via a readers-writers lock. Reads share the lock;
/// writes take it exclusively. Blocking; not wait-free.
template <typename T>
class rwlock_register {
public:
    explicit rwlock_register(T initial, event_log* log = nullptr)
        : value_(initial), log_(log) {}

    [[nodiscard]] T read(processor_id proc = 0) {
        const op_index op = next_op(proc);
        log_event(event_kind::sim_invoke_read, proc, op, 0);
        T out;
        {
            std::shared_lock lock(mutex_);
            out = value_;
        }
        log_event(event_kind::sim_respond_read, proc, op,
                  static_cast<value_t>(out));
        return out;
    }

    void write(T v, processor_id proc = 0) {
        const op_index op = next_op(proc);
        log_event(event_kind::sim_invoke_write, proc, op, static_cast<value_t>(v));
        {
            std::unique_lock lock(mutex_);
            value_ = v;
        }
        log_event(event_kind::sim_respond_write, proc, op, 0);
    }

    /// Simulates a writer stalled (or crashed) inside its critical section;
    /// used by bench_stall_tolerance.
    [[nodiscard]] std::unique_lock<std::shared_mutex> stall_writer() {
        return std::unique_lock<std::shared_mutex>(mutex_);
    }

private:
    op_index next_op(processor_id proc) {
        std::scoped_lock lock(op_mutex_);
        return op_counters_[proc]++;
    }

    void log_event(event_kind kind, processor_id proc, op_index op, value_t v) {
        if (log_ == nullptr) return;
        event e;
        e.kind = kind;
        e.processor = proc;
        e.op = op;
        e.value = v;
        log_->append(e);
    }

    std::shared_mutex mutex_;
    T value_;
    event_log* log_;
    std::mutex op_mutex_;
    std::map<processor_id, op_index> op_counters_;
};

}  // namespace bloom87
