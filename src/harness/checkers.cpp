#include "harness/checkers.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "analysis/contracts.hpp"
#include "analysis/race_detector.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "linearizability/monitor.hpp"
#include "linearizability/regularity.hpp"

namespace bloom87::harness {
namespace {

using steady = std::chrono::steady_clock;

[[nodiscard]] double ms_since(steady::time_point t0) {
    return std::chrono::duration<double, std::milli>(steady::now() - t0)
        .count();
}

/// Exhaustive search is sound only up to this many operations.
constexpr std::size_t exhaustive_limit = 62;

[[nodiscard]] std::size_t writing_processors(const history& h) {
    std::set<processor_id> procs;
    for (const operation& op : h.ops) {
        if (op.kind == op_kind::write) procs.insert(op.id.processor);
    }
    return procs.size();
}

[[nodiscard]] bool has_real_accesses(const history& h) {
    for (const event& e : h.gamma) {
        if (is_real(e.kind)) return true;
    }
    return false;
}

/// Replays the external schedule through the runtime monitor, exactly as an
/// application embedding it would: one port per processor, begin/end around
/// every operation, abandon() when a processor recovered from a crash.
[[nodiscard]] monitor_verdict replay_monitor(const history& h,
                                             value_t initial) {
    atomicity_monitor mon(initial, h.gamma.size() + 16);
    std::map<processor_id, atomicity_monitor::port> ports;
    std::map<processor_id, bool> open;
    for (const event& e : h.gamma) {
        if (is_real(e.kind)) continue;
        auto it = ports.find(e.processor);
        if (it == ports.end()) {
            it = ports.emplace(e.processor, mon.make_port(e.processor)).first;
        }
        atomicity_monitor::port& port = it->second;
        switch (e.kind) {
            case event_kind::sim_invoke_write:
                if (open[e.processor]) port.abandon();
                port.begin_write(e.value);
                open[e.processor] = true;
                break;
            case event_kind::sim_invoke_read:
                if (open[e.processor]) port.abandon();
                port.begin_read();
                open[e.processor] = true;
                break;
            case event_kind::sim_respond_write:
                port.end_write();
                open[e.processor] = false;
                break;
            case event_kind::sim_respond_read:
                port.end_read(e.value);
                open[e.processor] = false;
                break;
            default:
                break;
        }
    }
    return mon.verify();
}

check_verdict run_one(checker_kind kind, const history& h, value_t initial,
                      const std::string& register_name) {
    check_verdict v;
    v.kind = kind;
    const steady::time_point t0 = steady::now();
    switch (kind) {
        case checker_kind::bloom: {
            if (!has_real_accesses(h)) {
                v.skip_reason =
                    "needs real-register accesses (record through "
                    "bloom/recording)";
                return v;
            }
            const bloom_result r = bloom_linearize(h);
            v.ran = true;
            v.pass = r.ok() && r.atomic;
            if (!v.pass) {
                v.diagnosis = r.defect.has_value() ? *r.defect : r.diagnosis;
            }
            v.impotent_writes = r.impotent_count;
            v.potent_writes = r.potent_count;
            v.reads_of_potent = r.reads_of_potent;
            v.reads_of_impotent = r.reads_of_impotent;
            v.reads_of_initial = r.reads_of_initial;
            break;
        }
        case checker_kind::fast: {
            const fast_check_result r = check_fast(h.ops, initial);
            v.ran = true;
            v.pass = r.ok() && r.linearizable;
            if (!v.pass) {
                v.diagnosis = r.defect.has_value() ? *r.defect : r.diagnosis;
            }
            break;
        }
        case checker_kind::exhaustive: {
            if (h.ops.size() > exhaustive_limit) {
                v.skip_reason = "history has " + std::to_string(h.ops.size()) +
                                " ops (exhaustive limit " +
                                std::to_string(exhaustive_limit) + ")";
                return v;
            }
            const exhaustive_result r = check_exhaustive(h.ops, initial);
            v.ran = true;
            v.pass = r.ok() && r.linearizable;
            if (!v.pass && r.defect.has_value()) v.diagnosis = *r.defect;
            else if (!v.pass) v.diagnosis = "no linearization found";
            break;
        }
        case checker_kind::monitor: {
            const monitor_verdict r = replay_monitor(h, initial);
            v.ran = true;
            v.pass = r.atomic;
            if (!v.pass) v.diagnosis = r.diagnosis;
            break;
        }
        case checker_kind::race: {
            // The detector needs to know how the register class the log came
            // from synchronizes its real accesses: the registry name selects
            // the declared contract (src/analysis/contracts.cpp).
            if (register_name.empty()) {
                v.skip_reason =
                    "needs the recorded register's registry name to select "
                    "its declared synchronization contract";
                return v;
            }
            const std::optional<analysis::sync_class> cls =
                analysis::registry_sync_class(register_name);
            if (!cls.has_value()) {
                v.skip_reason = "register '" + register_name +
                                "' declares no synchronization contract";
                return v;
            }
            if (!has_real_accesses(h)) {
                v.skip_reason =
                    "needs real-register accesses (record through "
                    "bloom/recording)";
                return v;
            }
            v.contract = analysis::sync_class_name(*cls);
            // Dense thread ids: gamma carries sparse processor ids.
            std::map<processor_id, std::size_t> threads;
            std::size_t locations = 0;
            for (const event& e : h.gamma) {
                if (!is_real(e.kind)) continue;
                threads.emplace(e.processor, threads.size());
                locations = std::max(locations,
                                     static_cast<std::size_t>(e.reg) + 1);
            }
            analysis::race_detector det(threads.size(), locations);
            for (const event& e : h.gamma) {
                if (!is_real(e.kind)) continue;
                det.on_access(threads.at(e.processor), e.reg,
                              e.kind == event_kind::real_write, *cls);
            }
            v.ran = true;
            v.races = static_cast<std::size_t>(det.races());
            v.accesses_checked = static_cast<std::size_t>(det.accesses());
            v.pass = det.races() == 0;
            if (!v.pass && det.first_race().has_value()) {
                v.diagnosis = det.first_race()->describe("register");
            }
            break;
        }
        case checker_kind::regular:
        case checker_kind::safe: {
            if (writing_processors(h) > 1) {
                v.skip_reason = "regularity/safety are single-writer notions";
                return v;
            }
            const regularity_result r = kind == checker_kind::regular
                                            ? check_regular_swmr(h.ops, initial)
                                            : check_safe_swmr(h.ops, initial);
            v.ran = true;
            v.pass = r.regular;
            if (!v.pass) v.diagnosis = r.diagnosis;
            break;
        }
    }
    v.millis = ms_since(t0);
    return v;
}

}  // namespace

std::string checker_name(checker_kind k) {
    switch (k) {
        case checker_kind::bloom: return "bloom";
        case checker_kind::fast: return "fast";
        case checker_kind::exhaustive: return "exhaustive";
        case checker_kind::monitor: return "monitor";
        case checker_kind::regular: return "regular";
        case checker_kind::safe: return "safe";
        case checker_kind::race: return "race";
    }
    return "?";
}

std::optional<checker_kind> parse_checker(std::string_view name) {
    if (name == "bloom") return checker_kind::bloom;
    if (name == "fast") return checker_kind::fast;
    if (name == "exhaustive") return checker_kind::exhaustive;
    if (name == "monitor") return checker_kind::monitor;
    if (name == "regular") return checker_kind::regular;
    if (name == "safe") return checker_kind::safe;
    if (name == "race") return checker_kind::race;
    return std::nullopt;
}

std::optional<std::vector<checker_kind>> parse_checker_list(
    std::string_view list, std::string* error) {
    std::vector<checker_kind> kinds;
    if (list.empty() || list == "none") return kinds;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string_view name =
            list.substr(start, comma == std::string_view::npos
                                   ? std::string_view::npos
                                   : comma - start);
        const std::optional<checker_kind> k = parse_checker(name);
        if (!k.has_value()) {
            if (error != nullptr) {
                *error = "unknown checker '" + std::string(name) +
                         "' (bloom, fast, exhaustive, monitor, regular, "
                         "safe, race, none)";
            }
            return std::nullopt;
        }
        kinds.push_back(*k);
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    return kinds;
}

pipeline_result run_checkers(const std::vector<event>& events, value_t initial,
                             const std::vector<checker_kind>& kinds,
                             const std::string& register_name) {
    pipeline_result out;
    parse_result parsed = parse_history(events, initial);
    if (!parsed.ok()) {
        out.parse_error = parsed.error->message + " (gamma position " +
                          std::to_string(parsed.error->position) + ")";
        return out;
    }
    out.parsed = true;
    out.operations = parsed.hist.ops.size();
    out.verdicts.reserve(kinds.size());
    for (const checker_kind k : kinds) {
        out.verdicts.push_back(run_one(k, parsed.hist, initial, register_name));
    }
    return out;
}

}  // namespace bloom87::harness
