// [FIG3] Regenerates the content of Figure 3 of the paper: the timing
// structure behind Lemma 2 ("the prefinisher of an impotent write is
// potent"). Two parts:
//
//  1. A deterministic replay of the impotent-write interleaving, printing
//     the tag-bit timeline in the style of the paper's figure.
//  2. Randomized validation through the run harness: thousands of paced
//     concurrent executions on bloom/recording; every write is classified
//     potent/impotent, every impotent write's prefinisher is located
//     (Lemma 1) and checked potent (Lemma 2). The constructive linearizer
//     aborts with the lemma's name if either ever fails, so the run
//     doubles as a statistical test of the lemmas.
//
//   bench_fig3_lemma2 [--json BENCH_fig3.json]
#include <fstream>
#include <iostream>
#include <string>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "registers/recording.hpp"
#include "util/table.hpp"

using namespace bloom87;
namespace harness = bloom87::harness;

namespace {

table deterministic_replay() {
    event_log log(64);
    recording_register reg0(tagged<value_t>{0, false}, &log, 0);
    recording_register reg1(tagged<value_t>{0, false}, &log, 1);

    table t({"Time", "Event", "Reg0 tag", "Reg1 tag", "note"});
    bool t0 = false, t1 = false;
    auto row = [&](const std::string& when, const std::string& what,
                   const std::string& note) {
        t.row({when, what, t0 ? "1" : "0", t1 ? "1" : "0", note});
    };

    row("-", "initial", "both tags 0, sum 0");

    // W0 by Wr0: real read at T0r, then it stalls.
    const bool w0_saw = reg1.read({0, 0}).tag;  // T0r
    row("T0r", "Wr0 reads Reg1", "W0 sees tag " + std::string(w0_saw ? "1" : "0"));

    // W1 by Wr1: full write within W0's window.
    const bool w1_saw = reg0.read({1, 0}).tag;  // T1r
    row("T1r", "Wr1 reads Reg0", "W1 sees tag " + std::string(w1_saw ? "1" : "0"));
    const bool w1_tag = writer_tag_choice(1, w1_saw);
    reg1.write(tagged<value_t>{200, w1_tag}, {1, 0});  // T1w
    t1 = w1_tag;
    row("T1w", "Wr1 writes Reg1", "sum now 1: W1 is POTENT");

    // W0 resumes with stale information.
    const bool w0_tag = writer_tag_choice(0, w0_saw);
    reg0.write(tagged<value_t>{100, w0_tag}, {0, 0});  // T0w
    t0 = w0_tag;
    row("T0w", "Wr0 writes Reg0",
        "sum still 1 != 0: W0 is IMPOTENT, prefinished by W1");
    t.print(std::cout);

    std::cout
        << "\nLemma 2's proof shows the five times of a hypothetical\n"
        << "impotent prefinisher would have to satisfy T1r < T1w' < T0r <\n"
        << "T1w < T0w -- forcing an earlier impotent write without a potent\n"
        << "prefinisher, a contradiction. Above, W1 read Reg0 BEFORE W0's\n"
        << "write and wrote within W0's window, so W1 is potent and\n"
        << "prefinishes W0.\n";
    return t;
}

// Paced writer-only harness runs on the recording substrate; the pipeline's
// Bloom checker classifies every write and revalidates Lemmas 1/2 on each
// impotent one.
[[nodiscard]] bool randomized_validation(table* out) {
    std::size_t potent = 0, impotent = 0, histories = 0;
    for (std::uint64_t seed = 0; seed < 24; ++seed) {
        harness::run_spec spec;
        spec.register_name = "bloom/recording";
        spec.load.writers = 2;
        spec.load.readers = 0;
        spec.load.ops_per_writer = 2000;
        spec.load.ops_per_reader = 0;
        spec.load.writer_read_num = 0;  // writes only, as in the figure
        spec.seed = seed + 1;
        spec.collect = harness::collect_mode::gamma;
        spec.pace.writer_pace_num = 1;
        spec.pace.writer_pace_den = 10;
        spec.pace.pause_yields = 256;
        const harness::run_result res = harness::run(spec);
        if (!res.ok) {
            std::cout << "RUN FAILED: " << res.error << "\n";
            return false;
        }
        const harness::pipeline_result checks = harness::run_checkers(
            res.events, spec.initial, {harness::checker_kind::bloom},
            spec.register_name);
        if (!checks.parsed) {
            std::cout << "RECORDING DEFECT: " << checks.parse_error << "\n";
            return false;
        }
        const harness::check_verdict& v = checks.verdicts.front();
        if (!v.ran || !v.pass) {
            std::cout << "LEMMA VIOLATION: "
                      << (v.ran ? v.diagnosis : v.skip_reason) << "\n";
            return false;
        }
        potent += v.potent_writes;
        impotent += v.impotent_writes;
        ++histories;
    }

    table t({"histories", "writes", "potent", "impotent", "impotent %",
             "Lemma 1", "Lemma 2"});
    const std::size_t writes = potent + impotent;
    t.row({std::to_string(histories), with_commas(writes), with_commas(potent),
           with_commas(impotent),
           fixed(100.0 * static_cast<double>(impotent) /
                     static_cast<double>(writes),
                 3),
           "every impotent write has a unique prefinisher: HOLDS",
           "every prefinisher is potent: HOLDS"});
    t.print(std::cout);
    *out = t;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    harness::flag_parser parser(
        "bench_fig3_lemma2",
        "Lemma 2 timing: impotent writes and their prefinishers");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    print_banner(std::cout, "FIG3",
                 "Lemma 2 timing: impotent writes and their prefinishers");
    std::cout << "--- deterministic replay of the impotence interleaving ---\n\n";
    const table timeline = deterministic_replay();
    std::cout << "\n--- randomized validation over paced harness runs ---\n\n";
    table validation({"histories"});
    if (!randomized_validation(&validation)) return 1;

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fig3_lemma2");
        rep.add_table("impotence_timeline", timeline);
        rep.add_table("lemma_validation", validation);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
