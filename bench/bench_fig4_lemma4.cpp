// [FIG4] Regenerates the content of Figure 4 of the paper: the timing of a
// read of an impotent write (Lemma 4: the *-action assigned to the impotent
// write falls INSIDE the read's interval, so Step 3's placement is legal).
//
//  1. A deterministic replay of the paper's "very slow reader" (Section
//     7.2): the reader samples stale tags, sleeps through two writes, and
//     returns the impotent write's value; the report prints where each
//     *-action lands relative to the read's interval.
//  2. Randomized validation through the run harness: paced concurrent
//     executions with slow readers on bloom/recording; the pipeline's Bloom
//     checker counts reads by class and verifies Lemma 4 containment for
//     every read of an impotent write (aborting with a diagnosis naming the
//     lemma if it ever fails).
//
//   bench_fig4_lemma4 [--json BENCH_fig4.json]
#include <fstream>
#include <iostream>
#include <string>

#include "core/protocol.hpp"
#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "registers/recording.hpp"
#include "util/table.hpp"

using namespace bloom87;
namespace harness = bloom87::harness;

namespace {

table deterministic_replay() {
    event_log log(64);
    recording_register reg0(tagged<value_t>{0, false}, &log, 0);
    recording_register reg1(tagged<value_t>{0, false}, &log, 1);

    auto sim_event = [&](event_kind k, processor_id proc, op_index op,
                         value_t v = 0) {
        event e;
        e.kind = k;
        e.processor = proc;
        e.op = op;
        e.value = v;
        log.append(e);
    };

    // Reader (proc 2) starts, samples both tags (0,0), then stalls.
    sim_event(event_kind::sim_invoke_read, 2, 0);
    const bool rt0 = reg0.read({2, 0}).tag;  // T0
    const bool rt1 = reg1.read({2, 0}).tag;  // T1

    // W0 by Wr0 starts, reads Reg1, stalls; W1 by Wr1 completes; W0 writes
    // (impotent, prefinished by W1).
    sim_event(event_kind::sim_invoke_write, 0, 0, 100);
    const bool w0_saw = reg1.read({0, 0}).tag;
    sim_event(event_kind::sim_invoke_write, 1, 0, 200);
    const bool w1_saw = reg0.read({1, 0}).tag;
    reg1.write(tagged<value_t>{200, writer_tag_choice(1, w1_saw)}, {1, 0});
    sim_event(event_kind::sim_respond_write, 1, 0);
    reg0.write(tagged<value_t>{100, writer_tag_choice(0, w0_saw)}, {0, 0});
    sim_event(event_kind::sim_respond_write, 0, 0);

    // The reader wakes: its stale tags pick Reg0 and it returns the
    // impotent write's value.
    const value_t got =
        (reader_pick(rt0, rt1) == 0 ? reg0 : reg1).read({2, 0}).value;  // T2
    sim_event(event_kind::sim_respond_read, 2, 0, got);

    parse_result parsed = parse_history(log.snapshot(), 0);
    const bloom_result res = bloom_linearize(parsed.hist);

    std::cout << "slow reader returned: " << got << " (the IMPOTENT write)\n\n";
    table t({"op", "class / potency", "*-action anchor", "interval [inv,resp)"});
    for (const auto& sa : res.linearization) {
        const operation* op = parsed.hist.find(sa.id);
        std::string who = (sa.id.processor <= 1)
                              ? "Wr" + std::to_string(sa.id.processor)
                              : "Rd" + std::to_string(sa.id.processor - 1);
        std::string cls;
        if (op->kind == op_kind::write) {
            for (const auto& wa : res.writes) {
                if (wa.id == sa.id) cls = wa.potent ? "potent write" : "impotent write";
            }
        } else {
            for (const auto& ra : res.reads) {
                if (ra.id == sa.id) {
                    cls = ra.cls == read_class::of_impotent ? "read of impotent"
                          : ra.cls == read_class::of_potent ? "read of potent"
                                                            : "read of initial";
                }
            }
        }
        t.row({who, cls, "after gamma[" + std::to_string(sa.anchor) + "]",
               "[" + std::to_string(op->invoked) + ", " +
                   std::to_string(op->responded) + ")"});
    }
    t.print(std::cout);
    std::cout << "\nverdict: " << (res.atomic ? "ATOMIC" : res.diagnosis)
              << " -- every *-action lies inside its operation's interval\n"
              << "(the for-contradiction ordering Ts0 < Ts1 < T0 of Figure 4\n"
              << "is impossible, which is exactly Lemma 4).\n";
    return t;
}

// Paced harness runs with slow readers (the paper's Section 7.2 reader,
// injected by the driver's read_paced pacing); the Bloom checker classifies
// every read and verifies containment per read of an impotent write.
[[nodiscard]] bool randomized_validation(table* out) {
    std::size_t of_potent = 0, of_impotent = 0, of_initial = 0, histories = 0;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        harness::run_spec spec;
        spec.register_name = "bloom/recording";
        spec.load.writers = 2;
        spec.load.readers = 2;
        spec.load.ops_per_writer = 1200;
        spec.load.ops_per_reader = 1500;
        spec.load.writer_read_num = 0;  // writers only write, as in the figure
        spec.seed = seed + 100;
        spec.collect = harness::collect_mode::gamma;
        spec.pace.writer_pace_num = 1;
        spec.pace.writer_pace_den = 10;
        spec.pace.reader_pace_num = 1;
        spec.pace.reader_pace_den = 3;  // the very slow reader
        spec.pace.pause_yields = 256;
        const harness::run_result res = harness::run(spec);
        if (!res.ok) {
            std::cout << "RUN FAILED: " << res.error << "\n";
            return false;
        }
        const harness::pipeline_result checks = harness::run_checkers(
            res.events, spec.initial, {harness::checker_kind::bloom},
            spec.register_name);
        if (!checks.parsed) {
            std::cout << "RECORDING DEFECT: " << checks.parse_error << "\n";
            return false;
        }
        const harness::check_verdict& v = checks.verdicts.front();
        if (!v.ran || !v.pass) {
            std::cout << "LEMMA 4 VIOLATION: "
                      << (v.ran ? v.diagnosis : v.skip_reason) << "\n";
            return false;
        }
        of_potent += v.reads_of_potent;
        of_impotent += v.reads_of_impotent;
        of_initial += v.reads_of_initial;
        ++histories;
    }

    table t({"histories", "reads of potent", "reads of impotent",
             "reads of initial", "Lemma 4 containment"});
    t.row({std::to_string(histories), with_commas(of_potent),
           with_commas(of_impotent), with_commas(of_initial),
           "HOLDS for every read (verified per read by the linearizer)"});
    t.print(std::cout);
    *out = t;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    harness::flag_parser parser(
        "bench_fig4_lemma4",
        "Lemma 4 timing: reads of impotent writes stay contained");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    print_banner(std::cout, "FIG4",
                 "Lemma 4 timing: reads of impotent writes stay contained");
    std::cout << "--- deterministic replay: the very slow reader ---\n\n";
    const table replay = deterministic_replay();
    std::cout << "\n--- randomized validation through the harness ---\n\n";
    table validation({"histories"});
    if (!randomized_validation(&validation)) return 1;

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fig4_lemma4");
        rep.add_table("slow_reader_linearization", replay);
        rep.add_table("read_class_validation", validation);
        rep.finish();
        std::cout << "\nwrote " << json_path << "\n";
    }
    return 0;
}
