// bloom87: the protocol automata of the simulated register (paper, Fig. 2).
//
// The simulated register is the composition of n+4 automata: Reg0 and Reg1
// (register_automaton instances), the writers Wr0 and Wr1, and the readers
// Rd1..Rdn. Each writer/reader has one external channel (the simulated
// register's port) and channels to the real registers: writer i writes
// Reg_i and reads Reg_{1-i}; readers read both.
//
// Channel naming convention (used by tests and the Figure 2 report):
//   external ports:   "ext:wr0", "ext:wr1", "ext:rd<j>"
//   register access:  "wr0->reg1" (Wr0's read channel to Reg1),
//                      "wr0->reg0" (its write channel), "rd<j>->reg<i>", ...
//
// Values on register channels are tagged pairs encoded as value*2+tag.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ioa/automaton.hpp"
#include "ioa/register_automaton.hpp"

namespace bloom87::ioa {

[[nodiscard]] constexpr value_t encode_tagged_value(value_t v, bool tag) noexcept {
    return v * 2 + (tag ? 1 : 0);
}
[[nodiscard]] constexpr value_t decode_tagged_value(value_t enc) noexcept {
    return enc >= 0 ? enc / 2 : -((-enc) / 2);
}
[[nodiscard]] constexpr bool decode_tagged_bit(value_t enc) noexcept {
    return (enc % 2) != 0;
}

/// Writer automaton Wr_i (paper, Section 5 write protocol).
[[nodiscard]] std::unique_ptr<automaton> make_writer_automaton(int writer_index);

/// Reader automaton Rd_j (three-real-read protocol).
[[nodiscard]] std::unique_ptr<automaton> make_reader_automaton(int reader_number);

/// Environment automaton: drives scripted operations into the external
/// ports and consumes the acknowledgments. Scripts are (port, op) lists.
struct env_op {
    bool is_write{false};
    value_t value{0};
};
struct env_port {
    std::string channel;               ///< e.g. "ext:wr0"
    std::vector<env_op> script;
};
[[nodiscard]] std::unique_ptr<automaton> make_environment(
    std::vector<env_port> ports);

/// Convenience: builds the full simulated-register system of the paper's
/// Figure 2 -- two register automata, two writers, `num_readers` readers,
/// and an environment running the given scripts. Returns owning storage plus
/// a composition view over it.
struct simulated_register_system {
    std::vector<std::unique_ptr<automaton>> owned;
    std::unique_ptr<composition> system;
    register_automaton* reg0{nullptr};
    register_automaton* reg1{nullptr};
};
[[nodiscard]] simulated_register_system make_simulated_register(
    value_t initial, int num_readers, std::vector<env_port> env_ports);

}  // namespace bloom87::ioa
