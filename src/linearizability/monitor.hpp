// bloom87: runtime atomicity monitoring for any register implementation.
//
// A thin, thread-safe facade over the event log + checkers: application
// code reports each operation's boundaries through a per-processor port,
// and verify() renders a verdict over everything recorded so far. Use it
// to put ANY register implementation (including ones outside this
// repository) under the same verification regime as the built-in ones:
//
//   atomicity_monitor mon(0);
//   auto port = mon.make_port(2);
//   port.begin_read();
//   value_t v = my_register.read();
//   port.end_read(v);
//   ...
//   auto verdict = mon.verify();   // after the run
//
// Monitoring only observes invocation/response order (it cannot see the
// register's internals), so it checks exactly what linearizability is
// defined over: the external history.
#pragma once

#include <memory>
#include <string>

#include "histories/event_log.hpp"
#include "histories/events.hpp"

namespace bloom87 {

struct monitor_verdict {
    bool atomic{false};
    std::size_t operations{0};
    std::string diagnosis;  ///< empty when atomic; else what broke
};

class atomicity_monitor {
public:
    /// `capacity` bounds the number of recorded events (2 per operation).
    explicit atomicity_monitor(value_t initial, std::size_t capacity = 1 << 20);

    atomicity_monitor(const atomicity_monitor&) = delete;
    atomicity_monitor& operator=(const atomicity_monitor&) = delete;

    /// One port per processor; each port must be driven by one thread at a
    /// time (operations on a port are sequential, as the model requires).
    class port {
    public:
        void begin_write(value_t v);
        void end_write();
        void begin_read();
        void end_read(value_t result);

        /// Report a crashed operation: begin_* was called but the op never
        /// finished. (Optional -- an un-ended op is treated as pending
        /// anyway; this just lets the port be reused afterwards.)
        void abandon();

    private:
        friend class atomicity_monitor;
        port(atomicity_monitor& owner, processor_id processor)
            : owner_(&owner), processor_(processor) {}

        atomicity_monitor* owner_;
        processor_id processor_;
        op_index next_op_{0};
        bool open_{false};
        op_index open_op_{0};
        bool open_is_write_{false};
    };

    [[nodiscard]] port make_port(processor_id processor) {
        return port{*this, processor};
    }

    /// Checks everything recorded so far. Call after the threads driving
    /// ports are quiescent (typically joined); in-flight operations are
    /// treated as pending (crashed).
    [[nodiscard]] monitor_verdict verify() const;

    /// True if the monitor ran out of capacity (verify() also reports it).
    [[nodiscard]] bool overflowed() const noexcept { return log_.overflowed(); }

private:
    value_t initial_;
    event_log log_;
};

}  // namespace bloom87
