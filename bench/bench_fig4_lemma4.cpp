// [FIG4] Regenerates the content of Figure 4 of the paper: the timing of a
// read of an impotent write (Lemma 4: the *-action assigned to the impotent
// write falls INSIDE the read's interval, so Step 3's placement is legal).
//
//  1. A deterministic replay of the paper's "very slow reader" (Section
//     7.2): the reader samples stale tags, sleeps through two writes, and
//     returns the impotent write's value; the report prints where each
//     *-action lands relative to the read's interval.
//  2. Randomized validation: over many paced concurrent executions with
//     slow readers, count reads by class and confirm containment (the
//     linearizer verifies Lemma 4 for every read of an impotent write and
//     aborts with a diagnosis naming the lemma if it ever fails).
#include <iostream>
#include <thread>

#include "core/protocol.hpp"
#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

using namespace bloom87;

namespace {

void deterministic_replay() {
    event_log log(64);
    recording_register reg0(tagged<value_t>{0, false}, &log, 0);
    recording_register reg1(tagged<value_t>{0, false}, &log, 1);

    auto sim_event = [&](event_kind k, processor_id proc, op_index op,
                         value_t v = 0) {
        event e;
        e.kind = k;
        e.processor = proc;
        e.op = op;
        e.value = v;
        log.append(e);
    };

    // Reader (proc 2) starts, samples both tags (0,0), then stalls.
    sim_event(event_kind::sim_invoke_read, 2, 0);
    const bool rt0 = reg0.read({2, 0}).tag;  // T0
    const bool rt1 = reg1.read({2, 0}).tag;  // T1

    // W0 by Wr0 starts, reads Reg1, stalls; W1 by Wr1 completes; W0 writes
    // (impotent, prefinished by W1).
    sim_event(event_kind::sim_invoke_write, 0, 0, 100);
    const bool w0_saw = reg1.read({0, 0}).tag;
    sim_event(event_kind::sim_invoke_write, 1, 0, 200);
    const bool w1_saw = reg0.read({1, 0}).tag;
    reg1.write(tagged<value_t>{200, writer_tag_choice(1, w1_saw)}, {1, 0});
    sim_event(event_kind::sim_respond_write, 1, 0);
    reg0.write(tagged<value_t>{100, writer_tag_choice(0, w0_saw)}, {0, 0});
    sim_event(event_kind::sim_respond_write, 0, 0);

    // The reader wakes: its stale tags pick Reg0 and it returns the
    // impotent write's value.
    const value_t got =
        (reader_pick(rt0, rt1) == 0 ? reg0 : reg1).read({2, 0}).value;  // T2
    sim_event(event_kind::sim_respond_read, 2, 0, got);

    parse_result parsed = parse_history(log.snapshot(), 0);
    const bloom_result res = bloom_linearize(parsed.hist);

    std::cout << "slow reader returned: " << got << " (the IMPOTENT write)\n\n";
    table t({"op", "class / potency", "*-action anchor", "interval [inv,resp)"});
    for (const auto& sa : res.linearization) {
        const operation* op = parsed.hist.find(sa.id);
        std::string who = (sa.id.processor <= 1)
                              ? "Wr" + std::to_string(sa.id.processor)
                              : "Rd" + std::to_string(sa.id.processor - 1);
        std::string cls;
        if (op->kind == op_kind::write) {
            for (const auto& wa : res.writes) {
                if (wa.id == sa.id) cls = wa.potent ? "potent write" : "impotent write";
            }
        } else {
            for (const auto& ra : res.reads) {
                if (ra.id == sa.id) {
                    cls = ra.cls == read_class::of_impotent ? "read of impotent"
                          : ra.cls == read_class::of_potent ? "read of potent"
                                                            : "read of initial";
                }
            }
        }
        t.row({who, cls, "after gamma[" + std::to_string(sa.anchor) + "]",
               "[" + std::to_string(op->invoked) + ", " +
                   std::to_string(op->responded) + ")"});
    }
    t.print(std::cout);
    std::cout << "\nverdict: " << (res.atomic ? "ATOMIC" : res.diagnosis)
              << " -- every *-action lies inside its operation's interval\n"
              << "(the for-contradiction ordering Ts0 < Ts1 < T0 of Figure 4\n"
              << "is impossible, which is exactly Lemma 4).\n";
}

void randomized_validation() {
    std::size_t of_potent = 0, of_impotent = 0, of_initial = 0, histories = 0;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        event_log log(1 << 17);
        two_writer_register<value_t, recording_register> reg(0, &log);
        start_gate gate;
        stop_flag writers_done;
        auto writer_loop = [&](int index) {
            rng pace(seed * 3 + static_cast<std::uint64_t>(index));
            auto& wr = index == 0 ? reg.writer0() : reg.writer1();
            for (std::uint32_t i = 0; i < 1200; ++i) {
                const bool stall = pace.chance(1, 10);
                wr.write_paced(unique_value(static_cast<processor_id>(index), i),
                               [&] {
                                   if (stall) {
                                       std::this_thread::sleep_for(
                                           std::chrono::microseconds(30));
                                   }
                               });
            }
        };
        std::thread a([&] { gate.wait(); writer_loop(0); });
        std::thread b([&] { gate.wait(); writer_loop(1); });
        // Slow readers: stall between the tag sample and the final real
        // read -- the paper's "very slow reader" -- so they sometimes
        // return impotent writes' values.
        std::vector<std::thread> rs;
        for (int r = 0; r < 2; ++r) {
            rs.emplace_back([&, r] {
                gate.wait();
                auto rd = reg.make_reader(static_cast<processor_id>(2 + r));
                rng pace(seed * 7 + static_cast<std::uint64_t>(r) + 100);
                while (!writers_done.stop_requested()) {
                    const bool stall = pace.chance(1, 3);
                    (void)rd.read_paced([&] {
                        if (stall) {
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(40));
                        }
                    });
                }
            });
        }
        gate.open();
        a.join();
        b.join();
        writers_done.request_stop();
        for (auto& t : rs) t.join();

        parse_result parsed = parse_history(log.snapshot(), 0);
        if (!parsed.ok()) {
            std::cout << "RECORDING DEFECT: " << parsed.error->message << "\n";
            return;
        }
        const bloom_result res = bloom_linearize(parsed.hist);
        if (!res.ok() || !res.atomic) {
            std::cout << "LEMMA 4 VIOLATION: "
                      << (res.ok() ? res.diagnosis : *res.defect) << "\n";
            return;
        }
        of_potent += res.reads_of_potent;
        of_impotent += res.reads_of_impotent;
        of_initial += res.reads_of_initial;
        ++histories;
    }

    table t({"histories", "reads of potent", "reads of impotent",
             "reads of initial", "Lemma 4 containment"});
    t.row({std::to_string(histories), with_commas(of_potent),
           with_commas(of_impotent), with_commas(of_initial),
           "HOLDS for every read (verified per read by the linearizer)"});
    t.print(std::cout);
}

}  // namespace

int main() {
    print_banner(std::cout, "FIG4",
                 "Lemma 4 timing: reads of impotent writes stay contained");
    std::cout << "--- deterministic replay: the very slow reader ---\n\n";
    deterministic_replay();
    std::cout << "\n--- randomized validation ---\n\n";
    randomized_validation();
    return 0;
}
