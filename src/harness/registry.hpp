// bloom87: the run-harness register registry.
//
// Every register composition the repository can build -- Bloom's two-writer
// construction over each substrate, the SWMR-from-SWSR ladder, the
// timestamp-based multi-writer register, the Section 8 tournament, and the
// blocking/native baselines -- is constructible from a NAME STRING
// ("bloom/packed", "baseline/mutex", ...) behind one type-erased interface.
// The driver (driver.hpp), the benches, the examples, and the fuzzer all go
// through this map, so opening a new register to every workload and checker
// is one registry entry.
//
// Type erasure costs one virtual call per operation. That overhead is
// uniform across every registered register, so relative comparisons stay
// honest; absolute numbers are a nanosecond or two above the template-level
// figures (docs/HARNESS.md discusses this).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/two_writer.hpp"  // crash_point
#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "registers/faulty.hpp"  // fault_spec, fault_counts

namespace bloom87::harness {

/// A scheduling hook run in the middle of an operation (adversarial pacing).
using pause_fn = std::function<void()>;

/// Which side of the register a port drives.
enum class port_role : std::uint8_t { writer, reader };

/// One processor's handle on a type-erased register. A port must be driven
/// by at most one thread at a time (the paper's sequential-processor model).
class any_port {
public:
    virtual ~any_port() = default;

    /// Simulated atomic read.
    [[nodiscard]] virtual value_t read() = 0;
    /// Simulated atomic write (writer ports only).
    virtual void write(value_t v) = 0;

    /// Read with an adversarial pause at the protocol's vulnerable point.
    /// Registers without an internal pacing point run the pause first and
    /// then the whole operation (a processor that is slow to start).
    [[nodiscard]] virtual value_t read_paced(const pause_fn& pause) {
        pause();
        return read();
    }
    /// Write with an adversarial pause; same fallback convention.
    virtual void write_paced(value_t v, const pause_fn& pause) {
        pause();
        write(v);
    }

    /// Crash injection: run the write protocol but die at `cp`. Returns
    /// false when the register has no crash machinery (callers fall back to
    /// a plain write).
    virtual bool write_crashed(value_t /*v*/, crash_point /*cp*/) { return false; }

    /// The writer's cached read (paper Section 5, 1-2 real reads). Returns
    /// false when unsupported; `out` is untouched then.
    virtual bool read_cached(value_t& /*out*/) { return false; }

    /// One operation stalled mid-flight for the duration of `during` --
    /// a lock holder asleep in its critical section, a Bloom writer asleep
    /// between its real read and real write. Returns false if the register
    /// has nothing to stall (then nothing happened).
    virtual bool stall(const pause_fn& /*during*/) { return false; }

    /// True once the port has been killed by a port_crash fault: the
    /// operation that triggered it never responds (pending), and every
    /// later operation is a no-op. Drivers stop stepping a crashed port.
    [[nodiscard]] virtual bool crashed() const { return false; }
};

/// Static facts about a registered composition.
struct register_info {
    std::string name;         ///< registry key, e.g. "bloom/packed"
    std::string family;       ///< text before the '/', e.g. "bloom"
    std::string description;  ///< one line for --list and reports
    std::size_t min_writers{1};
    std::size_t max_writers{1};
    bool wait_free{true};
    /// Accesses to the real registers appear in the gamma log, so the
    /// constructive (Section 7) checker can run on recorded histories.
    bool records_real_accesses{false};
    /// Must be constructed with a shared gamma log (recording substrate).
    bool requires_log{false};
    /// Known NOT to be atomic (the Section 8 tournament) -- checkers are
    /// expected to fail it.
    bool expected_atomic{true};
    /// Declared synchronization contract of the composition's real accesses
    /// ("sync"/"relaxed"/"plain"; src/analysis/contracts.cpp), "" when the
    /// entry declares none. The race checker keys off this; build_registry
    /// fills it from analysis::registry_sync_class.
    std::string access_contract;
};

/// A type-erased register instance. Ports are created before the run, one
/// per participating processor: writer ports for processors [0, writers),
/// reader ports for processors [writers, writers + readers).
class any_register {
public:
    virtual ~any_register() = default;
    virtual std::unique_ptr<any_port> make_port(processor_id processor,
                                                port_role role) = 0;

    /// Injection counters of the run so far; all-zero for registers without
    /// a fault plan (everything outside the faulty/ family).
    [[nodiscard]] virtual fault_counts faults() { return {}; }
};

/// Everything a factory needs to build an instance.
struct register_args {
    value_t initial{0};
    std::size_t writers{2};
    std::size_t readers{2};
    /// Shared gamma log, or null for unrecorded runs. When non-null, the
    /// instance (or its adapter) logs every simulated operation's
    /// invocation/response into it; the recording substrate additionally
    /// logs real-register accesses.
    event_log* log{nullptr};
    /// Substrate fault injection; only the faulty/ family reads it (other
    /// entries ignore an active spec -- the driver rejects that combination
    /// up front).
    fault_spec fault{};
};

struct registry_entry {
    register_info info;
    std::function<std::unique_ptr<any_register>(const register_args&)> make;
};

/// The full registry, in presentation order.
[[nodiscard]] const std::vector<registry_entry>& registry();

/// Looks up one entry; null if the name is unknown.
[[nodiscard]] const registry_entry* find_register(std::string_view name);

/// All registered names, in presentation order.
[[nodiscard]] std::vector<std::string> register_names();

/// Constructs a register by name. Returns null and fills `error` when the
/// name is unknown, the writer count is out of the entry's range, or the
/// entry requires a log and none was given.
[[nodiscard]] std::unique_ptr<any_register> make_register(
    std::string_view name, const register_args& args, std::string* error);

}  // namespace bloom87::harness
