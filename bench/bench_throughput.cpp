// [TAB-C] Throughput scaling with reader count.
//
// Reads/sec and writes/sec for Bloom's two-writer register vs the mutex
// baseline vs a native hardware MRMW atomic word, with both writers
// hammering and n ∈ {1, 2, 4, 8} reader threads. The expected shape: Bloom
// tracks the native atomic within a small constant factor (3 real reads per
// simulated read) and scales with readers; the mutex collapses under
// contention.
//
//   bench_throughput [--json BENCH_throughput.json]
//
// --json writes the measured rows machine-readably for cross-PR tracking.
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/mutex_register.hpp"
#include "baselines/native_atomic.hpp"
#include "baselines/rwlock_register.hpp"
#include "core/two_writer.hpp"
#include "registers/packed_atomic.hpp"
#include "util/json.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

using namespace bloom87;

namespace {

struct result {
    double reads_per_sec;
    double writes_per_sec;
};

using bench_value = std::int32_t;

template <typename ReadFn, typename WriteFn>
result run_config(int readers, ReadFn&& make_reader_fn, WriteFn&& write_fn,
                  int duration_ms) {
    start_gate gate;
    stop_flag stop;
    std::atomic<std::uint64_t> reads{0}, writes{0};

    std::vector<std::thread> pool;
    for (int w = 0; w < 2; ++w) {
        pool.emplace_back([&, w] {
            gate.wait();
            std::uint64_t local = 0;
            bench_value v = (w + 1) << 24;
            while (!stop.stop_requested()) {
                write_fn(w, v++);
                ++local;
            }
            writes.fetch_add(local);
        });
    }
    for (int r = 0; r < readers; ++r) {
        pool.emplace_back([&, r] {
            auto read_once = make_reader_fn(r);
            gate.wait();
            std::uint64_t local = 0;
            while (!stop.stop_requested()) {
                read_once();
                ++local;
            }
            reads.fetch_add(local);
        });
    }
    gate.open();
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    stop.request_stop();
    for (auto& t : pool) t.join();
    const double secs = duration_ms / 1000.0;
    return {static_cast<double>(reads.load()) / secs,
            static_cast<double>(writes.load()) / secs};
}

std::string mops(double per_sec) { return fixed(per_sec / 1e6, 2); }

struct record {
    int readers;
    std::string reg;
    result res;
};

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
            return 64;
        }
    }

    print_banner(std::cout, "TAB-C",
                 "Throughput vs reader count (2 writers hammering)");
    constexpr int duration_ms = 150;

    std::vector<record> records;
    table t({"readers", "register", "reads M/s", "writes M/s"});
    for (int n : {1, 2, 4, 8}) {
        {
            two_writer_register<bench_value, packed_atomic_register<bench_value>> reg(0);
            auto res = run_config(
                n,
                [&](int r) {
                    return [&reg, port = reg.make_reader(
                                      static_cast<processor_id>(2 + r))]() mutable {
                        (void)port.read();
                    };
                },
                [&](int w, bench_value v) {
                    (w == 0 ? reg.writer0() : reg.writer1()).write(v);
                },
                duration_ms);
            t.row({std::to_string(n), "Bloom two-writer", mops(res.reads_per_sec),
                   mops(res.writes_per_sec)});
            records.push_back({n, "Bloom two-writer", res});
        }
        {
            mutex_register<bench_value> reg(0);
            auto res = run_config(
                n,
                [&](int r) {
                    return [&reg, p = static_cast<processor_id>(2 + r)]() {
                        (void)reg.read(p);
                    };
                },
                [&](int w, bench_value v) {
                    reg.write(v, static_cast<processor_id>(w));
                },
                duration_ms);
            t.row({std::to_string(n), "mutex baseline", mops(res.reads_per_sec),
                   mops(res.writes_per_sec)});
            records.push_back({n, "mutex baseline", res});
        }
        {
            rwlock_register<bench_value> reg(0);
            auto res = run_config(
                n,
                [&](int r) {
                    return [&reg, p = static_cast<processor_id>(2 + r)]() {
                        (void)reg.read(p);
                    };
                },
                [&](int w, bench_value v) {
                    reg.write(v, static_cast<processor_id>(w));
                },
                duration_ms);
            t.row({std::to_string(n), "rw-lock baseline [CHP]",
                   mops(res.reads_per_sec), mops(res.writes_per_sec)});
            records.push_back({n, "rw-lock baseline [CHP]", res});
        }
        {
            native_atomic_register<bench_value> reg(0);
            auto res = run_config(
                n,
                [&](int r) {
                    return [&reg, p = static_cast<processor_id>(2 + r)]() {
                        (void)reg.read(p);
                    };
                },
                [&](int w, bench_value v) {
                    reg.write(v, static_cast<processor_id>(w));
                },
                duration_ms);
            t.row({std::to_string(n), "native MRMW atomic",
                   mops(res.reads_per_sec), mops(res.writes_per_sec)});
            records.push_back({n, "native MRMW atomic", res});
        }
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: Bloom within a small constant of the native\n"
              << "word (3 real reads per simulated read), both scaling with\n"
              << "readers; the mutex baseline collapses under contention.\n";

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        json_writer w(os);
        w.begin_object();
        w.field("bench", "throughput");
        w.field("duration_ms", duration_ms);
        w.field("hardware_concurrency", std::thread::hardware_concurrency());
        w.key("rows").begin_array();
        for (const record& r : records) {
            w.begin_object();
            w.field("readers", r.readers);
            w.field("register", r.reg);
            w.field("reads_per_sec", r.res.reads_per_sec);
            w.field("writes_per_sec", r.res.writes_per_sec);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        os << "\n";
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
