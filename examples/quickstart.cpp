// quickstart: drive any registered register and check it, in one command.
//
// The harness (src/harness) builds a register by name, runs a scripted
// concurrent workload against it, records the external schedule, and hands
// the history to the checker pipeline -- the guarantee of Bloom (PODC 1987),
// demonstrated end to end:
//
//   ./build/examples/quickstart                          # defaults
//   ./build/examples/quickstart --list                   # what can I run?
//   ./build/examples/quickstart --register baseline/mutex --readers 8
//   ./build/examples/quickstart --check fast,monitor --json BENCH_harness.json
#include <cstdio>
#include <iostream>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"

using namespace bloom87;
using namespace bloom87::harness;

int main(int argc, char** argv) {
    common_flags flags;
    flags.readers = 3;
    flags.ops = 400;
    flag_parser parser("quickstart",
                       "run one register through the harness and check it");
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        print_register_list(std::cout);
        return 0;
    }

    std::string err;
    const auto kinds = parse_checker_list(flags.check, &err);
    if (!kinds) {
        std::cerr << "bad --check list: " << err << "\n";
        return 64;
    }

    run_spec spec = flags.to_spec();
    // Sample every operation unless the user asked for a coarser stride:
    // the quickstart summary prints the merged latency percentiles.
    if (spec.latency_sample_every == 0) spec.latency_sample_every = 1;
    const run_result result = run(spec);
    if (!result.ok) {
        std::cerr << "run failed: " << result.error << "\n";
        return 1;
    }

    std::printf("%s: %llu writes + %llu reads across %zu threads in %.2f ms\n",
                spec.register_name.c_str(),
                static_cast<unsigned long long>(result.total_writes),
                static_cast<unsigned long long>(result.total_reads),
                result.threads.size(), result.measured_s * 1e3);
    if (result.latency.samples > 0) {
        std::printf("  latency    p50 %.1f us, p99 %.1f us, p999 %.1f us "
                    "(max %.1f us, %llu samples)\n",
                    result.latency.p50_us, result.latency.p99_us,
                    result.latency.p999_us, result.latency.max_us,
                    static_cast<unsigned long long>(result.latency.samples));
    }
    if (spec.fault.active()) {
        std::printf("  fault      %s: %llu injected\n",
                    fault_class_name(spec.fault.cls),
                    static_cast<unsigned long long>(
                        result.faults_injected.total()));
    }
    if (result.stream.ran) {
        if (result.stream.violation) {
            std::printf("  streaming  VIOLATION at event %llu "
                        "(latency %llu ops): %s\n",
                        static_cast<unsigned long long>(
                            result.stream.detection_pos),
                        static_cast<unsigned long long>(
                            result.stream.latency_ops),
                        result.stream.diagnosis.c_str());
        } else {
            std::printf("  streaming  clean: %llu events, %llu ops retired, "
                        "retained peak %llu\n",
                        static_cast<unsigned long long>(result.stream.events),
                        static_cast<unsigned long long>(
                            result.stream.ops_retired),
                        static_cast<unsigned long long>(
                            result.stream.retained_peak));
        }
    }
    if (result.online.ran) {
        if (result.online.violation) {
            std::printf("  online     VIOLATION at prefix %llu",
                        static_cast<unsigned long long>(
                            result.online.detection_prefix));
            if (result.online.injection_pos != no_event) {
                std::printf(" (latency %llu ops after injection)",
                            static_cast<unsigned long long>(
                                result.online.latency_ops));
            }
            if (result.online.culprit_known) {
                std::printf(", culprit proc %u op %llu",
                            static_cast<unsigned>(
                                result.online.culprit.processor),
                            static_cast<unsigned long long>(
                                result.online.culprit.op));
            }
            std::printf("\n");
        } else {
            std::printf("  online     clean\n");
        }
    }

    const pipeline_result checks =
        run_checkers(result.events, spec.initial, *kinds, spec.register_name);
    if (!checks.parsed) {
        std::cerr << "recorded history failed to parse: " << checks.parse_error
                  << "\n";
        return 1;
    }
    for (const check_verdict& v : checks.verdicts) {
        if (!v.ran) {
            std::printf("  %-10s skipped: %s\n", checker_name(v.kind).c_str(),
                        v.skip_reason.c_str());
        } else if (v.pass) {
            std::printf("  %-10s %s (%.2f ms)\n", checker_name(v.kind).c_str(),
                        v.kind == checker_kind::race ? "RACE-FREE" : "ATOMIC",
                        v.millis);
        } else {
            std::printf("  %-10s VIOLATION (%.2f ms): %s\n",
                        checker_name(v.kind).c_str(), v.millis,
                        v.diagnosis.c_str());
        }
    }

    if (!flags.json_path.empty() &&
        !write_report_file(flags.json_path, "quickstart", spec, result,
                           &checks)) {
        return 66;
    }

    // The known-broken tournament is EXPECTED to fail its checkers, and a
    // run with an armed value-corrupting fault is expected to be flagged;
    // every other register must pass.
    const bool corruption_armed =
        spec.fault.active() && corrupts_values(spec.fault.cls);
    if (corruption_armed) {
        if (checks.all_pass() && !result.online.violation &&
            !result.stream.violation) {
            std::printf("note: injected %s faults went undetected this run "
                        "(try more ops or a higher rate)\n",
                        fault_class_name(spec.fault.cls));
        }
    } else if (result.info.expected_atomic && !checks.all_pass()) {
        std::printf("UNEXPECTED: %s failed atomicity checking\n",
                    spec.register_name.c_str());
        return 1;
    }
    std::printf("done: history of %zu operations, verdicts as expected\n",
                checks.operations);
    return 0;
}
