// bloom87: recording SWMR atomic register.
//
// The observability substrate. Each access (read or write) happens entirely
// inside a per-register spinlock critical section which also draws the
// event's position in the shared gamma log. Consequences:
//
//  * every access is mutually exclusive and instantaneous at its log draw,
//    so this register is trivially ATOMIC and its recorded *-action order is
//    the true one -- across BOTH real registers, because positions come from
//    one shared log;
//  * each read knows exactly which write it observed (`observed_write`),
//    which is the input the paper's constructive proof needs ("R's final
//    real read reads Reg_j and W's real write is the last real write to
//    Reg_j before it", Section 6).
//
// This substrate is for test/verification builds; performance benches use
// packed_atomic_register / seqlock_register without recording.
#pragma once

#include <atomic>
#include <cassert>
#include <thread>

#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "registers/concepts.hpp"
#include "registers/tagged.hpp"
#include "util/sync.hpp"

namespace bloom87 {

/// SWMR atomic register over tagged<value_t> that logs every access to a
/// shared gamma log.
class recording_register {
public:
    /// `reg_index` is this register's name in recorded events (0 or 1).
    recording_register(tagged<value_t> initial, event_log* log,
                       std::uint8_t reg_index) noexcept
        : log_(log), reg_index_(reg_index), tag_(initial.tag),
          value_(initial.value) {
        assert(log_ != nullptr);
    }

    /// Atomic read; logs a real_read event citing the observed write.
    [[nodiscard]] tagged<value_t> read(access_context ctx = {}) noexcept {
        lock();
        const tagged<value_t> out{value_, tag_};
        event e;
        e.kind = event_kind::real_read;
        e.reg = reg_index_;
        e.processor = ctx.processor;
        e.op = ctx.op;
        e.tag = tag_;
        e.value = value_;
        e.observed_write = last_write_pos_;
        log_->append(e);
        unlock();
        return out;
    }

    /// Atomic write; logs a real_write event.
    void write(tagged<value_t> v, access_context ctx = {}) noexcept {
        lock();
        event e;
        e.kind = event_kind::real_write;
        e.reg = reg_index_;
        e.processor = ctx.processor;
        e.op = ctx.op;
        e.tag = v.tag;
        e.value = v.value;
        const event_pos pos = log_->append(e);
        tag_ = v.tag;
        value_ = v.value;
        last_write_pos_ = pos;
        unlock();
    }

private:
    void lock() noexcept {
        while (locked_.exchange(true, std::memory_order_acquire)) {
            std::this_thread::yield();
        }
    }
    void unlock() noexcept { locked_.store(false, std::memory_order_release); }

    event_log* log_;
    const std::uint8_t reg_index_;
    alignas(cacheline_size) std::atomic<bool> locked_{false};
    bool tag_;
    value_t value_;
    event_pos last_write_pos_{no_event};
};

}  // namespace bloom87
