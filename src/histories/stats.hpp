// bloom87: descriptive statistics over recorded histories.
//
// Concurrency structure is what makes a history interesting -- a fully
// sequential run exercises none of the protocol's hard cases. These
// statistics quantify how adversarial a recorded execution actually was;
// the check_history tool and the fuzz harness print them alongside
// verdicts.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "histories/history.hpp"

namespace bloom87 {

struct history_stats {
    std::size_t operations{0};
    std::size_t writes{0};
    std::size_t reads{0};
    std::size_t pending{0};            ///< crashed / never-responded ops
    std::size_t processors{0};

    /// Concurrency: how many operations were in flight simultaneously.
    std::size_t max_concurrency{0};
    /// Number of operation pairs whose intervals overlap.
    std::size_t overlapping_pairs{0};
    /// Operations overlapping at least one other operation.
    std::size_t contended_ops{0};

    /// Per-processor operation counts.
    std::map<processor_id, std::size_t> ops_per_processor;
};

/// Computes the statistics. O(n log n) in the number of operations.
[[nodiscard]] history_stats compute_stats(const history& h);

/// Multi-line human-readable rendering.
[[nodiscard]] std::string format_stats(const history_stats& s);

}  // namespace bloom87
