// bloom87: register interface concepts.
//
// Terminology (Lamport [L2], paper Section 1):
//
//  * SAFE    - a read not overlapping any write returns the latest written
//              value; a read overlapping a write may return ANY legal value.
//  * REGULAR - a read returns the latest value written before it started, or
//              the value of some overlapping write.
//  * ATOMIC  - all reads and writes behave as if they happened at a single
//              instant each (linearizable).
//
// Bloom's construction consumes two 1-writer (n+1)-reader ATOMIC registers.
// We express "a register you can read and write" as a concept; which
// consistency level an implementation actually provides is part of its
// documented contract (and is what the model-checking tests verify).
#pragma once

#include <concepts>
#include <cstdint>

#include "histories/events.hpp"
#include "registers/tagged.hpp"

namespace bloom87 {

/// Identifies who is performing a register access. Recording substrates put
/// this into the event log; plain substrates ignore it.
struct access_context {
    processor_id processor{0};
    op_index op{0};
};

/// A single-writer multi-reader register holding values of type V.
///
/// Contract expected by the core protocol:
///  * write() is called by exactly one thread (the owning writer), reads may
///    come from any thread;
///  * the register is ATOMIC in Lamport's sense;
///  * both operations are bounded wait-free, or document otherwise
///    (seqlock readers retry only while a write is in flight).
template <typename R, typename V>
concept swmr_register = requires(R r, V v, access_context ctx) {
    { r.read(ctx) } -> std::same_as<V>;
    { r.write(v, ctx) } -> std::same_as<void>;
};

/// A substrate usable by the two-writer construction: an SWMR atomic
/// register over tagged<T>, constructible from an initial tagged value.
template <typename R, typename T>
concept tagged_substrate =
    swmr_register<R, tagged<T>> && std::constructible_from<R, tagged<T>>;

}  // namespace bloom87
