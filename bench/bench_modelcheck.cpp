// [TAB-D] Bounded model checking summary.
//
// States explored, distinct external histories, and the atomicity verdict
// for each protocol configuration the repository verifies exhaustively:
// Bloom's two-writer register (PASS at every bound), the deliberately
// broken tag-rule mutant (FAIL), the four-writer tournament (FAIL, with the
// minimal violating trace printed), and the substrate constructions at
// their exact consistency levels.
#include <chrono>
#include <iostream>

#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::mc;

namespace {

mc_register make_reg(reg_level level, mc_value domain, mc_value committed) {
    mc_register r;
    r.level = level;
    r.domain = domain;
    r.committed = committed;
    return r;
}

struct config_result {
    explore_result res;
    double ms;
};

config_result run(sim_state& s, property prop, value_t initial) {
    explore_config cfg;
    cfg.prop = prop;
    cfg.initial = initial;
    const auto t0 = std::chrono::steady_clock::now();
    explore_result res = explore(s, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    return {std::move(res),
            std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

}  // namespace

int main() {
    print_banner(std::cout, "TAB-D", "Bounded exhaustive verification");

    table t({"configuration", "property", "states", "histories", "verdict",
             "time (ms)"});
    auto add = [&](const std::string& name, const std::string& prop_name,
                   const config_result& r, bool expect_pass) {
        const bool pass = r.res.property_holds;
        t.row({name, prop_name, with_commas(r.res.states_explored),
               with_commas(r.res.distinct_histories),
               std::string(pass ? "PASS" : "FAIL") +
                   (pass == expect_pass ? " (expected)" : "  ** UNEXPECTED **"),
               fixed(r.ms, 1)});
    };

    {
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 12, 0),
                       make_reg(reg_level::atomic, 12, 0)};
        s.procs.push_back(make_bloom_writer(0, {1, 2}));
        s.procs.push_back(make_bloom_writer(1, {3, 4}));
        s.procs.push_back(make_bloom_reader(2, 1));
        auto r = run(s, property::atomic, 0);
        add("Bloom 2x2 writes, 1 reader", "atomic", r, true);
    }
    {
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 6, 0),
                       make_reg(reg_level::atomic, 6, 0)};
        s.procs.push_back(make_bloom_writer(0, {1}));
        s.procs.push_back(make_bloom_writer(1, {2}));
        s.procs.push_back(make_bloom_reader(2, 2));
        s.procs.push_back(make_bloom_reader(3, 1));
        auto r = run(s, property::atomic, 0);
        add("Bloom 1x1 writes, 2 readers", "atomic", r, true);
    }
    {
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 12, 0),
                       make_reg(reg_level::atomic, 12, 0)};
        s.procs.push_back(make_bloom_writer(0, {1, 2}));
        s.procs.push_back(make_bloom_writer_wrong_tag(1, {3, 4}));
        s.procs.push_back(make_bloom_reader(2, 2));
        auto r = run(s, property::atomic, 0);
        add("Bloom MUTANT (wrong tag rule)", "atomic", r, false);
    }
    {
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 12, 0),
                       make_reg(reg_level::atomic, 12, 0)};
        s.procs.push_back(make_bloom_writer(0, {1, 2}));
        s.procs.push_back(make_bloom_writer(1, {3, 4}));
        s.procs.push_back(make_bloom_reader_reversed(2, 2));
        auto r = run(s, property::atomic, 0);
        add("Bloom, reader samples tags reversed (fn. 5)", "atomic", r, true);
    }
    {
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 12, 0),
                       make_reg(reg_level::atomic, 12, 0)};
        s.procs.push_back(make_bloom_writer(0, {1, 2}));
        s.procs.push_back(make_bloom_writer(1, {3, 4}));
        s.procs.push_back(make_bloom_reader_no_reread(2, 2));
        auto r = run(s, property::atomic, 0);
        add("Bloom ABLATION (third read skipped)", "atomic", r, false);
    }
    {
        sim_state s;
        s.registers = {make_reg(reg_level::atomic, 10, encode_tagged(1, false)),
                       make_reg(reg_level::atomic, 10, encode_tagged(1, false))};
        s.procs.push_back(make_tournament_writer(0, {2}));
        s.procs.push_back(make_tournament_writer(1, {3}));
        s.procs.push_back(make_tournament_writer(3, {4}));
        s.procs.push_back(make_tournament_reader(4, 2));
        auto r = run(s, property::atomic, 1);
        add("Tournament 4-writer (Fig. 5)", "atomic", r, false);
        if (r.res.first_violation) {
            std::cout << "  tournament's first violating history:\n";
            std::cout << format_operations(r.res.first_violation->hist);
        }
    }
    {
        sim_state s;
        for (int i = 0; i < 4; ++i) s.registers.push_back(make_reg(reg_level::safe, 3, 0));
        for (int i = 0; i < 4; ++i) s.registers.push_back(make_reg(reg_level::atomic, 2, 0));
        s.procs.push_back(make_fourslot_writer(0, {1, 2}));
        s.procs.push_back(make_fourslot_reader(0, 1, 2));
        auto r = run(s, property::atomic, 0);
        add("Simpson 4-slot, safe data + atomic ctrl", "atomic", r, true);
    }
    {
        sim_state s;
        for (int i = 0; i < 4; ++i) s.registers.push_back(make_reg(reg_level::safe, 3, 0));
        for (int i = 0; i < 4; ++i) s.registers.push_back(make_reg(reg_level::regular, 2, 0));
        s.procs.push_back(make_fourslot_writer(0, {1, 2}));
        s.procs.push_back(make_fourslot_reader(0, 1, 2));
        auto r = run(s, property::atomic, 0);
        add("Simpson 4-slot, regular ctrl bits", "atomic", r, false);
    }
    {
        sim_state s;
        for (int i = 0; i < 2 + 4; ++i) {
            s.registers.push_back(make_reg(reg_level::atomic, 3, 0));
        }
        s.procs.push_back(make_mr_writer(0, 2, {1, 2}));
        s.procs.push_back(make_mr_reader(0, 2, 0, 2, 2, {1, 2}));
        s.procs.push_back(make_mr_reader(0, 2, 1, 3, 1, {1, 2}));
        auto r = run(s, property::atomic, 0);
        add("SWMR-from-SWSR, 2 readers", "atomic", r, true);
    }
    {
        sim_state s;
        for (int i = 0; i < 2 + 4; ++i) {
            s.registers.push_back(make_reg(reg_level::atomic, 3, 0));
        }
        s.procs.push_back(make_mr_writer(0, 2, {1, 2}));
        s.procs.push_back(make_mr_reader_no_report(0, 2, 0, 2, 2, {1, 2}));
        s.procs.push_back(make_mr_reader_no_report(0, 2, 1, 3, 2, {1, 2}));
        auto r = run(s, property::atomic, 0);
        add("SWMR-from-SWSR, report round SKIPPED", "atomic", r, false);
    }
    {
        sim_state s;
        for (int i = 0; i < 3; ++i) {
            s.registers.push_back(make_reg(reg_level::regular, 2, i == 0 ? 1 : 0));
        }
        s.procs.push_back(make_unary_writer(0, 3, {2, 1}));
        s.procs.push_back(make_unary_reader(0, 3, 1, 2));
        auto r = run(s, property::regular_swmr, 0);
        add("Lamport unary (3 regular bits)", "regular", r, true);
        auto r2 = run(s, property::atomic, 0);
        add("Lamport unary (3 regular bits)", "atomic", r2, false);
    }
    {
        sim_state s;
        s.registers.push_back(make_reg(reg_level::safe, 2, 0));
        s.procs.push_back(make_bit_writer(0, {1, 1}, false));
        s.procs.push_back(make_bit_reader(0, 1, 1));
        auto r = run(s, property::regular_swmr, 0);
        add("safe bit, naive writer", "regular", r, false);
        sim_state s2;
        s2.registers.push_back(make_reg(reg_level::safe, 2, 0));
        s2.procs.push_back(make_bit_writer(0, {1, 1, 0, 1}, true));
        s2.procs.push_back(make_bit_reader(0, 1, 2));
        auto r2 = run(s2, property::regular_swmr, 0);
        add("safe bit, write-only-changes writer", "regular", r2, true);
    }
    t.print(std::cout);
    return 0;
}
