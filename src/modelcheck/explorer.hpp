// bloom87: exhaustive bounded interleaving exploration.
//
// Work-sharing parallel search over every schedule (and every
// nondeterministic safe/regular read outcome) of a sim_state. Each worker
// thread runs an explicit-stack DFS over branch nodes -- a (state,
// pending-choices) pair whose state has already been counted and memoized;
// idle workers are fed by frontier splitting: a busy worker donates the
// later choices of its shallowest unexhausted branch node (the largest
// subtrees it still owes) to a shared queue. Interior states are memoized
// by a structural fingerprint held in a sharded hash set -- confluent
// interleavings that produce the same memory, process, and history state
// are explored once, globally, across all workers. Each complete
// execution's external history is checked against the requested property
// (atomicity via the exhaustive checker, or single-writer regularity);
// verdicts are memoized per distinct history.
//
// Determinism: every aggregate verdict and count except states_explored /
// memo_hits under truncation is independent of the thread count, because
// the *set* of states explored (first fingerprint insertion wins) and the
// set of distinct leaf histories are schedule-invariant. `first_violation`
// is any violating trace: deterministic (DFS order) at threads == 1,
// scheduler-dependent above.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "histories/history.hpp"
#include "modelcheck/sim.hpp"

namespace bloom87::mc {

enum class property : std::uint8_t { atomic, regular_swmr, safe_swmr };

struct explore_config {
    property prop{property::atomic};
    value_t initial{0};
    /// Safety valve; exploration reports truncated=true when hit.
    std::uint64_t max_states{20'000'000};
    /// Stop at the first property violation (else count them all).
    bool stop_at_first_violation{true};
    /// Worker threads. 0 (the default) = hardware_concurrency; 1 =
    /// sequential (the classic deterministic DFS order, no locking on the
    /// hot path).
    unsigned threads{0};
};

struct violation {
    std::vector<operation> hist;
    std::string diagnosis;
};

struct explore_result {
    std::uint64_t states_explored{0};
    std::uint64_t memo_hits{0};
    std::uint64_t leaves{0};
    std::uint64_t distinct_histories{0};
    std::uint64_t violations{0};
    bool property_holds{true};
    bool truncated{false};
    /// Some violating trace. With threads > 1 *which* trace is recorded
    /// depends on scheduling; its existence (whenever property_holds is
    /// false) does not.
    std::optional<violation> first_violation;
};

/// Explores all executions of `initial_state`. The state's processes define
/// the protocol; the registers define the memory model.
[[nodiscard]] explore_result explore(const sim_state& initial_state,
                                     const explore_config& cfg);

/// Renders an operation list for diagnostics ("proc 0 write(3) [4,9)" ...).
[[nodiscard]] std::string format_operations(const std::vector<operation>& ops);

}  // namespace bloom87::mc
