// Tests for src/registers: substrate registers (packed atomic, seqlock,
// Simpson four-slot, recording, instrumented) -- sequential semantics plus
// concurrent SWMR/SWSR torture with per-reader monotonicity checks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "histories/event_log.hpp"
#include "registers/concepts.hpp"
#include "registers/fourslot.hpp"
#include "registers/instrumented.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/plain.hpp"
#include "registers/recording.hpp"
#include "registers/seqlock.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

// ---------------------------------------------------------------------------
// Sequential semantics, identical across substrates (typed test).
// ---------------------------------------------------------------------------

template <typename Reg>
class SubstrateSequential : public ::testing::Test {};

struct big_payload {
    std::int64_t a{0};
    std::int64_t b{0};
    std::int64_t c{0};
    friend bool operator==(const big_payload&, const big_payload&) = default;
};

using SmallSubstrates =
    ::testing::Types<packed_atomic_register<std::int32_t>,
                     seqlock_register<std::int32_t>,
                     four_slot_register<std::int32_t>>;
TYPED_TEST_SUITE(SubstrateSequential, SmallSubstrates);

TYPED_TEST(SubstrateSequential, InitialValueReadable) {
    TypeParam reg(tagged<std::int32_t>{41, false});
    const auto got = reg.read();
    EXPECT_EQ(got.value, 41);
    EXPECT_FALSE(got.tag);
}

TYPED_TEST(SubstrateSequential, WriteThenReadRoundTrips) {
    TypeParam reg(tagged<std::int32_t>{0, false});
    for (std::int32_t v : {1, -5, 100, 0}) {
        for (bool t : {true, false}) {
            reg.write(tagged<std::int32_t>{v, t});
            const auto got = reg.read();
            EXPECT_EQ(got.value, v);
            EXPECT_EQ(got.tag, t);
        }
    }
}

TYPED_TEST(SubstrateSequential, TagBitIndependentOfValue) {
    TypeParam reg(tagged<std::int32_t>{7, true});
    EXPECT_TRUE(reg.read().tag);
    reg.write(tagged<std::int32_t>{7, false});
    EXPECT_FALSE(reg.read().tag);
    EXPECT_EQ(reg.read().value, 7);
}

// ---------------------------------------------------------------------------
// Concurrent: single writer streams increasing values; each reader must see
// a monotonically non-decreasing sequence drawn from written values
// (atomicity of an SWMR register implies per-reader monotonicity).
// ---------------------------------------------------------------------------

template <typename Reg, typename V>
void swmr_monotonic_torture(int num_readers, int writes) {
    Reg reg(tagged<V>{0, false});
    std::atomic<bool> done{false};
    start_gate gate;
    std::atomic<int> violations{0};

    std::vector<std::thread> readers;
    for (int r = 0; r < num_readers; ++r) {
        readers.emplace_back([&] {
            gate.wait();
            V last = -1;
            while (!done.load(std::memory_order_acquire)) {
                const auto got = reg.read();
                if (got.value < last) violations.fetch_add(1);
                if (got.value > last) last = got.value;
                // Tag must match parity convention used below.
                if (got.tag != ((got.value & 1) != 0)) violations.fetch_add(1);
            }
        });
    }
    std::thread writer([&] {
        gate.wait();
        for (V v = 1; v <= writes; ++v) {
            reg.write(tagged<V>{v, (v & 1) != 0});
        }
        done.store(true, std::memory_order_release);
    });
    gate.open();
    writer.join();
    for (auto& t : readers) t.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(reg.read().value, writes);
}

TEST(PackedAtomic, SwmrMonotonicTorture) {
    swmr_monotonic_torture<packed_atomic_register<std::int32_t>, std::int32_t>(
        3, 200000);
}

TEST(Seqlock, SwmrMonotonicTorture) {
    swmr_monotonic_torture<seqlock_register<std::int64_t>, std::int64_t>(
        3, 200000);
}

TEST(FourSlot, SwsrMonotonicTorture) {
    // Simpson's algorithm is single-reader: one reader only.
    swmr_monotonic_torture<four_slot_register<std::int64_t>, std::int64_t>(
        1, 200000);
}

TEST(Seqlock, LargePayloadNeverTears) {
    seqlock_register<big_payload> reg(tagged<big_payload>{{0, 0, 0}, false});
    std::atomic<bool> done{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const auto got = reg.read();
            // Writers maintain a = b = c; any divergence is a torn read.
            if (got.value.a != got.value.b || got.value.b != got.value.c) {
                torn.fetch_add(1);
            }
        }
    });
    for (std::int64_t v = 1; v <= 100000; ++v) {
        reg.write(tagged<big_payload>{{v, v, v}, false});
    }
    done.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(torn.load(), 0);
}

TEST(FourSlot, LargePayloadNeverTears) {
    four_slot_register<big_payload> reg(tagged<big_payload>{{0, 0, 0}, false});
    std::atomic<bool> done{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            const auto got = reg.read();
            if (got.value.a != got.value.b || got.value.b != got.value.c) {
                torn.fetch_add(1);
            }
        }
    });
    for (std::int64_t v = 1; v <= 100000; ++v) {
        reg.write(tagged<big_payload>{{v, v, v}, false});
    }
    done.store(true, std::memory_order_release);
    reader.join();
    EXPECT_EQ(torn.load(), 0);
}

// ---------------------------------------------------------------------------
// Recording register.
// ---------------------------------------------------------------------------

TEST(Recording, LogsAccessesWithObservedWrites) {
    event_log log(64);
    recording_register reg(tagged<value_t>{10, false}, &log, 0);

    access_context w_ctx{0, 0};
    access_context r_ctx{2, 0};
    EXPECT_EQ(reg.read(r_ctx).value, 10);
    reg.write(tagged<value_t>{20, true}, w_ctx);
    const auto got = reg.read(r_ctx);
    EXPECT_EQ(got.value, 20);
    EXPECT_TRUE(got.tag);

    const auto snap = log.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].kind, event_kind::real_read);
    EXPECT_EQ(snap[0].observed_write, no_event);  // initial value
    EXPECT_EQ(snap[1].kind, event_kind::real_write);
    EXPECT_EQ(snap[2].kind, event_kind::real_read);
    EXPECT_EQ(snap[2].observed_write, 1u);  // observed the write at position 1
    EXPECT_EQ(snap[2].value, 20);
    EXPECT_TRUE(snap[2].tag);
}

TEST(Recording, ConcurrentAccessesProduceConsistentGamma) {
    event_log log(1 << 16);
    recording_register reg(tagged<value_t>{0, false}, &log, 0);
    std::thread writer([&] {
        for (value_t v = 1; v <= 5000; ++v) {
            reg.write(tagged<value_t>{v, false}, access_context{0, 0});
        }
    });
    std::thread reader([&] {
        for (int i = 0; i < 5000; ++i) {
            (void)reg.read(access_context{2, 0});
        }
    });
    writer.join();
    reader.join();

    // Replay gamma: every read's observed_write must be the latest write.
    const auto snap = log.snapshot();
    event_pos last_write = no_event;
    for (event_pos p = 0; p < snap.size(); ++p) {
        if (snap[p].kind == event_kind::real_write) {
            last_write = p;
        } else {
            ASSERT_EQ(snap[p].observed_write, last_write) << "at position " << p;
        }
    }
}

// ---------------------------------------------------------------------------
// Instrumented wrapper.
// ---------------------------------------------------------------------------

TEST(Instrumented, CountsReadsAndWrites) {
    instrumented_register<packed_atomic_register<std::int32_t>> reg(
        tagged<std::int32_t>{0, false});
    (void)reg.read();
    (void)reg.read();
    reg.write(tagged<std::int32_t>{1, false});
    const access_counts c = reg.counts();
    EXPECT_EQ(c.reads, 2u);
    EXPECT_EQ(c.writes, 1u);
    EXPECT_EQ(c.total(), 3u);
    reg.reset_counts();
    EXPECT_EQ(reg.counts().total(), 0u);
}

TEST(Plain, SingleThreadedSemantics) {
    plain_register<int> reg(3);
    EXPECT_EQ(reg.read(), 3);
    reg.write(9);
    EXPECT_EQ(reg.read(), 9);
}

}  // namespace
}  // namespace bloom87
