#include "ioa/executor.hpp"

#include <array>
#include <cassert>
#include <map>

#include "ioa/protocol_automata.hpp"
#include "util/rng.hpp"

namespace bloom87::ioa {

schedule run_fair(composition& system, std::uint64_t seed,
                  std::size_t max_steps) {
    rng gen(seed);
    schedule out;
    for (std::size_t step = 0; step < max_steps; ++step) {
        auto options = system.enabled();
        if (options.empty()) return out;
        auto& [owner, a] = options[gen.below(options.size())];
        system.apply(owner, a);
        out.push_back(scheduled_action{owner, std::move(a)});
    }
    assert(false && "run_fair exceeded max_steps; system does not quiesce");
    return out;
}

std::vector<action> external_schedule(const schedule& s) {
    std::vector<action> out;
    for (const scheduled_action& sa : s) {
        if (sa.act_taken.channel.starts_with("ext:")) {
            out.push_back(sa.act_taken);
        }
    }
    return out;
}

namespace {

processor_id processor_of_channel(const std::string& chan) {
    // "ext:wr0" -> 0, "ext:wr1" -> 1, "ext:rd<j>" -> 1+j.
    if (chan.starts_with("ext:wr")) {
        return static_cast<processor_id>(std::stoi(chan.substr(6)));
    }
    assert(chan.starts_with("ext:rd"));
    return static_cast<processor_id>(1 + std::stoi(chan.substr(6)));
}

}  // namespace

std::vector<operation> external_history(const schedule& s) {
    std::vector<operation> out;
    std::map<std::string, std::size_t> open;  // channel -> index in out
    std::map<std::string, op_index> counters;
    event_pos clock = 0;
    for (const scheduled_action& sa : s) {
        const action& a = sa.act_taken;
        if (!a.channel.starts_with("ext:")) {
            ++clock;  // internal progress still advances time
            continue;
        }
        if (is_request(a.kind)) {
            operation op;
            op.id = op_id{processor_of_channel(a.channel), counters[a.channel]++};
            op.kind = a.kind == act::write_request ? op_kind::write : op_kind::read;
            op.value = a.value;
            op.invoked = clock++;
            open[a.channel] = out.size();
            out.push_back(op);
        } else if (is_ack(a.kind)) {
            auto it = open.find(a.channel);
            assert(it != open.end());
            operation& op = out[it->second];
            if (op.kind == op_kind::read) op.value = a.value;
            op.responded = clock++;
            open.erase(it);
        }
    }
    return out;
}

std::vector<event> to_gamma(const schedule& s) {
    std::vector<event> out;
    // Per-processor simulated-op counters (bumped on each external request)
    // and per-register last-write positions for observed_write.
    std::map<processor_id, op_index> op_counter;
    std::map<processor_id, op_index> current_op;
    std::array<event_pos, 2> last_write{no_event, no_event};

    auto channel_processor = [](const std::string& chan) -> processor_id {
        // "wr0->reg1" -> 0, "rd3->reg0" -> 1+3.
        if (chan.starts_with("wr")) {
            return static_cast<processor_id>(std::stoi(chan.substr(2)));
        }
        return static_cast<processor_id>(1 + std::stoi(chan.substr(2)));
    };
    auto channel_register = [](const std::string& chan) -> std::uint8_t {
        const auto arrow = chan.find("->reg");
        return static_cast<std::uint8_t>(std::stoi(chan.substr(arrow + 5)));
    };

    for (const scheduled_action& sa : s) {
        const action& a = sa.act_taken;
        if (a.channel.starts_with("ext:")) {
            if (!is_request(a.kind) && !is_ack(a.kind)) continue;
            event e;
            const processor_id proc = [&] {
                const std::string port = a.channel.substr(4);
                if (port.starts_with("wr")) {
                    return static_cast<processor_id>(std::stoi(port.substr(2)));
                }
                return static_cast<processor_id>(1 + std::stoi(port.substr(2)));
            }();
            e.processor = proc;
            if (is_request(a.kind)) {
                current_op[proc] = op_counter[proc]++;
                e.kind = a.kind == act::write_request
                             ? event_kind::sim_invoke_write
                             : event_kind::sim_invoke_read;
                e.value = a.kind == act::write_request ? a.value : 0;
            } else {
                e.kind = a.kind == act::write_ack ? event_kind::sim_respond_write
                                                  : event_kind::sim_respond_read;
                e.value = a.kind == act::read_ack ? a.value : 0;
            }
            e.op = current_op[proc];
            out.push_back(e);
        } else if (is_star(a.kind) && a.channel.find("->reg") != std::string::npos) {
            event e;
            e.processor = channel_processor(a.channel);
            e.op = current_op[e.processor];
            e.reg = channel_register(a.channel);
            // Register channels carry tagged values encoded as value*2+tag.
            e.tag = decode_tagged_bit(a.value);
            e.value = decode_tagged_value(a.value);
            if (a.kind == act::star_write) {
                e.kind = event_kind::real_write;
                last_write[e.reg] = out.size();
            } else {
                e.kind = event_kind::real_read;
                e.observed_write = last_write[e.reg];
            }
            out.push_back(e);
        }
    }
    return out;
}

}  // namespace bloom87::ioa
