// bloom87: bounded-memory STREAMING linearizability checking.
//
// The post-hoc checkers (and PR 4's online_verifier) re-examine the whole
// recorded prefix on every poll: O(n) memory and O(n^2/stride) total work,
// which caps how long a run they can watch. This checker consumes the
// gamma event stream once, keeps only a sliding window of operations, and
// still renders a verdict equivalent to running check_fast over the entire
// history.
//
// How retirement stays sound AND complete:
//
//  * Operations retire only across a QUIESCENT CUT: a stream position c
//    with every retained operation responded before c or invoked at/after
//    c (no operation spans c). Real time then already orders every retired
//    op before every retained one, so any linearization of the full
//    history is a linearization of the retired prefix followed by one of
//    the live suffix -- nothing about the prefix other than its final
//    value can constrain the future.
//  * That final value is not always unique: concurrent retired writes can
//    linearize in either order. The checker therefore carries a CANDIDATE
//    SET V of possible current values. At each retirement it recomputes V
//    by appending a virtual read of each candidate u to the retiring batch
//    and asking check_fast whether some linearization ends with value u
//    (starting from some previous candidate). The live suffix is then
//    accepted iff it checks out against at least one v in V. |V| is
//    bounded by the writes concurrent at the cut, in practice <= writers+1.
//  * A read of a value that is neither live nor in V surfaces through
//    check_fast/normalize as "read returned a value no write produced" --
//    which in this setting is precisely a stale read of a retired,
//    overwritten value. Sound: u not in V means no linearization of the
//    prefix ends with u, and every interleaving puts the whole prefix
//    before the reader.
//  * Pending operations never block the cut. An operation still open
//    `pending_grace` events after its invocation is declared crashed:
//    pending reads are dropped (they constrain nothing), pending writes
//    are carried and presented to every later check (normalize keeps a
//    pending write exactly when some read observed it), so "did that
//    crashed write land?" stays undecided until a reader decides it --
//    at which point the write is materialized into the retiring batch.
//    Carried pendings are bounded by the number of ports. If a declared-
//    crashed operation responds after all (the grace was set shorter than
//    a real stall), the checker reports it as a configuration violation
//    rather than silently mis-judging.
//
// Memory: O(window + ports + |V|) operations, independent of run length.
// Work: one O(retained) incremental check every `stride` events -- the
// checker chases writers at load instead of buffering the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "histories/events.hpp"
#include "histories/history.hpp"

namespace bloom87 {

struct streaming_config {
    /// Completed operations are kept at least this many events behind the
    /// frontier before becoming eligible to retire (diagnosis context).
    std::size_t window{4096};
    /// Events ingested between incremental checks.
    std::size_t stride{256};
    /// An operation still open this many events after its invocation is
    /// declared crashed and stops blocking retirement. 0 = auto
    /// (16 * window + 1024).
    std::size_t pending_grace{0};
};

struct streaming_stats {
    std::uint64_t events{0};          ///< gamma events ingested
    std::uint64_t ops_completed{0};
    std::uint64_t ops_retired{0};
    std::uint64_t checkpoints{0};     ///< incremental checks run
    std::uint64_t retire_batches{0};
    std::size_t retained_ops{0};      ///< live window right now
    std::size_t peak_retained_ops{0};
    std::size_t candidate_values{0};  ///< |V| right now
    std::size_t pending_carried{0};   ///< declared-crashed writes carried
};

class streaming_checker {
public:
    explicit streaming_checker(value_t initial, streaming_config cfg = {});

    streaming_checker(const streaming_checker&) = delete;
    streaming_checker& operator=(const streaming_checker&) = delete;

    /// Feeds the next gamma event. Real-register accesses are skipped --
    /// linearizability is defined over the external schedule only. A found
    /// violation is sticky; further events are ignored.
    void ingest(const event& e);

    /// Forces an incremental check of everything retained right now.
    /// Returns violation_found().
    bool check_now();

    /// Final check after the stream ends; returns violation_found().
    bool finish();

    [[nodiscard]] bool violation_found() const noexcept { return violation_; }
    [[nodiscard]] const std::string& diagnosis() const noexcept {
        return diagnosis_;
    }
    /// Stream position (events ingested) when the violation was flagged.
    [[nodiscard]] std::uint64_t detection_pos() const noexcept {
        return detection_pos_;
    }
    [[nodiscard]] const streaming_stats& stats() const noexcept {
        return stats_;
    }

private:
    void flag(std::string why);
    void on_invocation(const event& e);
    void on_response(const event& e);
    /// One check_fast pass over retained + open + carried-pending ops
    /// against every candidate initial value; flags on total failure.
    void run_check();
    /// Declares overdue open ops crashed, finds the best quiescent cut,
    /// retires the decided prefix, and recomputes the candidate set.
    void maybe_retire();
    void retire_prefix(std::size_t k);

    streaming_config cfg_;
    value_t initial_;

    struct open_op {
        operation op;
    };
    std::vector<open_op> open_;           ///< <= one per processor
    std::vector<operation> retained_;     ///< completed, ascending responded
    std::vector<operation> pending_;      ///< declared-crashed writes carried
    std::vector<op_id> crashed_ids_;      ///< declared-crashed, for late resps
    std::vector<value_t> candidates_;     ///< V: possible current values
    std::size_t last_pass_{0};            ///< index into candidates_: hint

    std::uint64_t since_check_{0};
    op_index vread_seq_{0};               ///< virtual-read op counter

    bool violation_{false};
    std::string diagnosis_;
    std::uint64_t detection_pos_{0};
    streaming_stats stats_{};
};

}  // namespace bloom87
