// bloom87: declared memory-order contracts of the register substrates.
//
// Every substrate register picks its std::memory_order arguments by hand,
// and Bloom's atomicity proof (Section 7) silently assumes those choices
// add up to "the base registers are atomic". This table is the
// machine-checked statement of that intent. Two consumers:
//
//  * the memory-order lint (analysis/mo_lint.hpp, examples/mo_lint.cpp)
//    scans each register header's atomic call sites against the per-file
//    site table below and fails CI on undeclared sites, orders outside the
//    declared set, or stale table rows;
//  * the happens-before race detector (analysis/race_detector.hpp) maps a
//    harness registry composition to the synchronization class of the real
//    accesses it performs: does an access publish/acquire ordering (sync),
//    is it atomic but non-synchronizing (relaxed), or is it not atomic at
//    all (plain -- a data race whenever concurrent and conflicting)?
//
// docs/ANALYSIS.md documents the table format and how the two analyses
// consume it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace bloom87::analysis {

/// How one shared-memory access relates to C++ happens-before.
enum class sync_class : std::uint8_t {
    plain,    ///< non-atomic: concurrent conflicting accesses are a data race
    relaxed,  ///< atomic but non-synchronizing (no happens-before edge)
    sync,     ///< release store / acquire load / seq_cst: creates HB edges
};

[[nodiscard]] const char* sync_class_name(sync_class c) noexcept;

/// One declared atomic call site: the receiving object exactly as written
/// in the source (after stripping a subscript), the operation, and the set
/// of memory_order_* suffixes the contract permits there.
struct site_contract {
    std::string_view object;  ///< receiver text; "" for atomic_thread_fence
    std::string_view op;      ///< load, store, exchange, fetch_add, fence
    std::string_view orders;  ///< comma-separated, e.g. "acquire,relaxed"
};

/// All declared sites of one audited header. A file listed with zero
/// sites declares "no atomic call sites at all" (plain.hpp): any atomic
/// access the lint finds there is a contract violation.
struct file_contract {
    std::string_view file;  ///< bare header name
    std::span<const site_contract> sites;
    /// Directory under the source root ("src") holding the header. Most
    /// audited files are registers; the harness's collection structures
    /// live in histories/.
    std::string_view dir{"registers"};
};

/// The audited headers, one entry per file.
[[nodiscard]] std::span<const file_contract> register_contracts() noexcept;

/// Looks up one file's contract; nullptr when the file is not audited.
[[nodiscard]] const file_contract* find_file_contract(
    std::string_view file) noexcept;

/// Synchronization class of the REAL register accesses a harness registry
/// composition performs, by registry name ("bloom/seqlock"). nullopt when
/// the composition has no declared contract (the race checker then skips
/// with an explicit reason).
[[nodiscard]] std::optional<sync_class> registry_sync_class(
    std::string_view register_name) noexcept;

}  // namespace bloom87::analysis
