// [TAB-G] Race-detection cost: what the analysis layer charges.
//
// The happens-before race detector (src/analysis/race_detector.hpp) runs in
// three places, each with its own cost model, measured here:
//
//  1. synthetic feed -- raw detector throughput (ns/access) per sync class,
//     the lower bound every consumer pays;
//  2. harness replay -- the race checker added to the pipeline on recorded
//     gamma histories of increasing size, against the fast atomicity
//     checker on the same history as the yardstick;
//  3. model check -- the bounded explorer with the detector armed vs off on
//     the same protocol (the armed fingerprint carries the clock digest, so
//     states and time both move).
//
//   bench_analysis [--json BENCH_analysis.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/race_detector.hpp"
#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"
#include "util/table.hpp"

using namespace bloom87;
using namespace bloom87::harness;

namespace {

[[nodiscard]] double now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// Raw detector throughput: threads ping-pong over disjoint locations (no
// races latched, the hot path) for one fixed sync class.
[[nodiscard]] double synthetic_ns_per_access(analysis::sync_class cls,
                                             std::uint64_t accesses) {
    constexpr std::size_t threads = 4;
    analysis::race_detector det(threads, threads);
    const double start = now_ms();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const std::size_t t = i % threads;
        det.on_access(t, t, (i & 4) != 0, cls);
    }
    const double ms = now_ms() - start;
    return ms * 1e6 / static_cast<double>(accesses);
}

}  // namespace

int main(int argc, char** argv) {
    flag_parser parser("bench_analysis",
                       "happens-before race detection cost across its drivers");
    std::string json_path;
    parser.add_string("json", "write a bloom87-harness-v4 report here",
                      &json_path);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;

    print_banner(std::cout, "TAB-G",
                 "Race-detection cost across its three drivers");

    std::unique_ptr<std::ofstream> json_os;
    std::unique_ptr<report_writer> rep;
    if (!json_path.empty()) {
        json_os = std::make_unique<std::ofstream>(json_path);
        if (!*json_os) {
            std::cerr << "cannot write " << json_path << "\n";
            return 66;
        }
        rep = std::make_unique<report_writer>(*json_os, "analysis");
    }

    std::cout << "--- synthetic feed: detector hot path ---\n\n";
    constexpr std::uint64_t feed = 4'000'000;
    table synth({"sync class", "accesses", "ns/access"});
    for (const auto cls :
         {analysis::sync_class::relaxed, analysis::sync_class::sync,
          analysis::sync_class::plain}) {
        synth.row({analysis::sync_class_name(cls), with_commas(feed),
                   fixed(synthetic_ns_per_access(cls, feed), 2)});
    }
    synth.print(std::cout);

    std::cout << "\n--- harness replay: race checker vs fast checker ---\n\n";
    table replay({"ops", "real accesses", "fast (ms)", "race (ms)",
                  "race ns/access", "verdict"});
    bool ok = true;
    for (const std::size_t ops : {100, 500, 2000, 8000}) {
        run_spec spec;
        spec.register_name = "bloom/recording";
        spec.load.readers = 3;
        spec.load.ops_per_writer = ops;
        spec.load.ops_per_reader = ops;
        spec.seed = ops * 17 + 3;
        spec.collect = collect_mode::gamma;
        const run_result res = run(spec);
        if (!res.ok) {
            std::cerr << spec.register_name << ": " << res.error << "\n";
            return 1;
        }
        const pipeline_result checks = run_checkers(
            res.events, 0, {checker_kind::fast, checker_kind::race},
            spec.register_name);
        double fast_ms = 0, race_ms = 0;
        std::size_t accesses = 0;
        bool pass = checks.parsed;
        for (const check_verdict& v : checks.verdicts) {
            if (!v.ran) {
                pass = false;
                continue;
            }
            pass &= v.pass;
            if (v.kind == checker_kind::race) {
                race_ms = v.millis;
                accesses = v.accesses_checked;
            } else {
                fast_ms = v.millis;
            }
        }
        ok &= pass;
        replay.row({with_commas(checks.operations), with_commas(accesses),
                    fixed(fast_ms, 3), fixed(race_ms, 3),
                    fixed(accesses == 0 ? 0.0
                                        : race_ms * 1e6 /
                                              static_cast<double>(accesses),
                          2),
                    pass ? "ATOMIC + RACE-FREE" : "** FAIL **"});
        if (rep) rep->add_run(spec, res, &checks);
    }
    replay.print(std::cout);

    std::cout << "\n--- model check: explorer with the detector armed ---\n\n";
    table mcrow({"substrate", "detector", "states", "ms", "verdict"});
    for (const bool armed : {false, true}) {
        mc::sim_state s;
        for (int i = 0; i < 2; ++i) {
            mc::mc_register r;
            r.domain = 6;
            s.registers.push_back(r);
        }
        s.procs.push_back(mc::make_bloom_writer(0, {1, 2}));
        s.procs.push_back(mc::make_bloom_writer(1, {2, 1}));
        s.procs.push_back(mc::make_bloom_reader(2, 2));
        if (armed) s.enable_race_detection();
        const double start = now_ms();
        const mc::explore_result res = mc::explore(s, {});
        const double ms = now_ms() - start;
        ok &= res.property_holds;
        mcrow.row({"bloom 2+2 writes, 2 reads", armed ? "armed" : "off",
                   with_commas(res.states_explored), fixed(ms, 1),
                   res.property_holds
                       ? (armed ? "ATOMIC + RACE-FREE" : "ATOMIC")
                       : "** FAIL **"});
    }
    mcrow.print(std::cout);

    std::cout << "\nExpected shape: relaxed accesses are near-free, sync\n"
              << "accesses pay a clock assign/join, plain accesses pay the\n"
              << "conflict scan. The replayed race checker stays well under\n"
              << "the fast atomicity checker; arming the detector grows the\n"
              << "explored state space (clock digest joins the fingerprint)\n"
              << "by a bounded factor.\n";

    if (rep) {
        rep->add_table("synthetic_ns_per_access", synth);
        rep->add_table("replay_cost", replay);
        rep->add_table("modelcheck_cost", mcrow);
        rep->finish();
        std::cout << "wrote " << json_path << "\n";
    }
    return ok ? 0 : 1;
}
