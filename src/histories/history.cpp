#include "histories/history.hpp"

#include <array>
#include <sstream>

namespace bloom87 {
namespace {

struct open_op {
    operation op;
    bool open{false};
};

}  // namespace

parse_result parse_history(std::vector<event> gamma, value_t initial_value) {
    parse_result result;
    result.hist.initial_value = initial_value;
    result.hist.gamma = std::move(gamma);
    const auto& g = result.hist.gamma;

    auto fail = [&](std::string msg, event_pos pos) {
        result.error = parse_error{std::move(msg), pos};
        return result;
    };

    // Per-processor currently open operation (input-correctness implies at
    // most one), plus last write position per real register for
    // observed_write validation.
    std::map<processor_id, open_op> open;
    std::array<event_pos, 2> last_real_write{no_event, no_event};

    for (event_pos pos = 0; pos < g.size(); ++pos) {
        const event& e = g[pos];
        switch (e.kind) {
            case event_kind::sim_invoke_read:
            case event_kind::sim_invoke_write: {
                auto& slot = open[e.processor];
                if (slot.open) {
                    // A new invocation while an operation never responded
                    // means the processor crashed mid-operation and
                    // recovered: record the old operation as pending.
                    // (An overlap with a *responding* op is caught below,
                    // because responses always close the slot.)
                    result.hist.index.emplace(slot.op.id, result.hist.ops.size());
                    result.hist.ops.push_back(slot.op);
                }
                slot.open = true;
                slot.op = operation{};
                slot.op.id = op_id{e.processor, e.op};
                slot.op.kind = e.kind == event_kind::sim_invoke_read ? op_kind::read
                                                                     : op_kind::write;
                slot.op.value = e.value;  // write argument; reads fill at response
                slot.op.invoked = pos;
                break;
            }
            case event_kind::sim_respond_read:
            case event_kind::sim_respond_write: {
                auto it = open.find(e.processor);
                if (it == open.end() || !it->second.open) {
                    return fail("response without a matching open invocation", pos);
                }
                operation& op = it->second.op;
                if (op.id.op != e.op) {
                    return fail("response op index does not match open invocation", pos);
                }
                const bool read_resp = e.kind == event_kind::sim_respond_read;
                if ((op.kind == op_kind::read) != read_resp) {
                    return fail("response kind does not match invocation kind", pos);
                }
                if (read_resp) op.value = e.value;
                op.responded = pos;
                result.hist.index.emplace(op.id, result.hist.ops.size());
                result.hist.ops.push_back(op);
                it->second.open = false;
                break;
            }
            case event_kind::real_read: {
                if (e.reg > 1) return fail("real access to register index > 1", pos);
                auto it = open.find(e.processor);
                if (it == open.end() || !it->second.open) {
                    return fail("real access outside any simulated operation", pos);
                }
                if (e.observed_write != no_event) {
                    if (e.observed_write >= pos) {
                        return fail("read observes a write at a later position", pos);
                    }
                    const event& w = g[e.observed_write];
                    if (w.kind != event_kind::real_write || w.reg != e.reg) {
                        return fail("read's observed_write is not a write to this register",
                                    pos);
                    }
                    if (last_real_write[e.reg] != e.observed_write) {
                        return fail("read does not observe the latest write", pos);
                    }
                } else if (last_real_write[e.reg] != no_event) {
                    return fail("read observes initial value after a write", pos);
                }
                it->second.op.real_accesses.push_back(pos);
                break;
            }
            case event_kind::real_write: {
                if (e.reg > 1) return fail("real access to register index > 1", pos);
                auto it = open.find(e.processor);
                if (it == open.end() || !it->second.open) {
                    return fail("real access outside any simulated operation", pos);
                }
                last_real_write[e.reg] = pos;
                it->second.op.real_accesses.push_back(pos);
                break;
            }
        }
    }

    // Crashed / pending operations: recorded with an invocation but no
    // response. They still participate in checking (a crashed write may or
    // may not have taken effect), so keep them.
    for (auto& [proc, slot] : open) {
        if (slot.open) {
            result.hist.index.emplace(slot.op.id, result.hist.ops.size());
            result.hist.ops.push_back(slot.op);
        }
    }
    return result;
}

std::string to_string(event_kind k) {
    switch (k) {
        case event_kind::sim_invoke_read: return "R_start";
        case event_kind::sim_respond_read: return "R_finish";
        case event_kind::sim_invoke_write: return "W_start";
        case event_kind::sim_respond_write: return "W_finish";
        case event_kind::real_read: return "real_read";
        case event_kind::real_write: return "real_write";
    }
    return "?";
}

std::string to_string(const event& e) {
    std::ostringstream oss;
    oss << to_string(e.kind) << " proc=" << e.processor << " op=" << e.op;
    if (is_real(e.kind)) {
        oss << " reg=" << int(e.reg) << " tag=" << int(e.tag) << " value=" << e.value;
        if (e.kind == event_kind::real_read) {
            if (e.observed_write == no_event) {
                oss << " observed=initial";
            } else {
                oss << " observed=" << e.observed_write;
            }
        }
    } else {
        oss << " value=" << e.value;
    }
    return oss.str();
}

std::string format_history(const history& h) {
    std::ostringstream oss;
    for (event_pos pos = 0; pos < h.gamma.size(); ++pos) {
        oss << pos << ": " << to_string(h.gamma[pos]) << "\n";
    }
    return oss.str();
}

std::string format_external_schedule(const history& h) {
    std::ostringstream oss;
    for (event_pos pos = 0; pos < h.gamma.size(); ++pos) {
        if (!is_real(h.gamma[pos].kind)) {
            oss << pos << ": " << to_string(h.gamma[pos]) << "\n";
        }
    }
    return oss.str();
}

}  // namespace bloom87
