// bloom87: small synchronization helpers for tests and benchmarks.
//
// These are *harness* utilities only. The register protocols themselves never
// block; barriers and latches here are used to line threads up at the start
// of stress tests so that contention windows actually overlap.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>

namespace bloom87 {

// A fixed 64 rather than std::hardware_destructive_interference_size: the
// standard constant varies with tuning flags (GCC warns when it leaks into
// ABIs), and 64 is correct for every platform this repository targets.
inline constexpr std::size_t cacheline_size = 64;

/// Pads T to its own cache line to prevent false sharing between the per-slot
/// state of different processors in stress harnesses.
template <typename T>
struct alignas(cacheline_size) padded {
    T value{};
};

/// Sense-reversing spin barrier. Reusable across rounds; wait-free except for
/// the spin itself (appropriate for short test rendezvous, not production).
class spin_barrier {
public:
    explicit spin_barrier(std::size_t parties) noexcept
        : parties_(parties), remaining_(parties) {}

    spin_barrier(const spin_barrier&) = delete;
    spin_barrier& operator=(const spin_barrier&) = delete;

    /// Blocks (spinning) until all parties arrive.
    void arrive_and_wait() noexcept {
        const bool my_sense = !sense_.load(std::memory_order_relaxed);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            remaining_.store(parties_, std::memory_order_relaxed);
            sense_.store(my_sense, std::memory_order_release);
        } else {
            while (sense_.load(std::memory_order_acquire) != my_sense) {
                std::this_thread::yield();
            }
        }
    }

private:
    const std::size_t parties_;
    std::atomic<std::size_t> remaining_;
    std::atomic<bool> sense_{false};
};

/// One-shot start gate: workers spin in wait(); the coordinator calls open().
class start_gate {
public:
    void open() noexcept { open_.store(true, std::memory_order_release); }

    void wait() const noexcept {
        while (!open_.load(std::memory_order_acquire)) {
            std::this_thread::yield();
        }
    }

private:
    std::atomic<bool> open_{false};
};

/// Cooperative stop flag for duration-bounded stress loops.
class stop_flag {
public:
    void request_stop() noexcept { stop_.store(true, std::memory_order_release); }
    [[nodiscard]] bool stop_requested() const noexcept {
        return stop_.load(std::memory_order_acquire);
    }

private:
    std::atomic<bool> stop_{false};
};

}  // namespace bloom87
