// bloom87: deterministic substrate fault injection.
//
// Bloom's construction (paper, Sections 4 and 7) is proven wait-free and
// atomic *assuming the two real registers are atomic*. This header makes
// that assumption dialable: `faulty_register<Inner>` wraps any tagged
// substrate and, driven by a seeded `fault_plan`, makes it misbehave in one
// of five ways:
//
//   * stale_read         -- a read returns the previously committed pair
//                           instead of the latest one (a non-atomic window);
//   * lost_write         -- a write is acknowledged but never lands;
//   * torn_value         -- a write lands with the old value's bits mixed
//                           into the new ones (a non-atomic word);
//   * delayed_visibility -- a write is acknowledged now but becomes visible
//                           only k substrate accesses later;
//   * port_crash         -- one processor halts mid-access; every later
//                           operation on that port is a no-op (the crash
//                           model of Section 7's pending operations).
//
// The first four violate the substrate-atomicity assumption, so the
// construction above them is EXPECTED to produce non-linearizable histories
// (which the checkers must catch). port_crash stays inside the paper's
// fault model, so atomicity must survive it. docs/FAULTS.md tabulates both.
//
// Determinism: every decision comes from one seeded rng inside the plan, and
// one plan-wide spinlock serializes all substrate accesses of the wrapped
// composition. The lock removes real substrate-level races -- acceptable
// here because fault experiments study *value* corruption, not data races,
// and it is what makes `--fault-seed` reproduce a run exactly under the
// seeded schedule.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "registers/concepts.hpp"
#include "registers/tagged.hpp"
#include "util/rng.hpp"

namespace bloom87 {

enum class fault_class : std::uint8_t {
    none,
    stale_read,
    lost_write,
    torn_value,
    delayed_visibility,
    port_crash,
};

[[nodiscard]] constexpr const char* fault_class_name(fault_class c) noexcept {
    switch (c) {
        case fault_class::none: return "none";
        case fault_class::stale_read: return "stale_read";
        case fault_class::lost_write: return "lost_write";
        case fault_class::torn_value: return "torn_value";
        case fault_class::delayed_visibility: return "delayed_visibility";
        case fault_class::port_crash: return "port_crash";
    }
    return "none";
}

/// True for the classes that break the substrate-atomicity assumption (the
/// construction is expected to produce detectable violations under them);
/// false for crash-class faults the paper's proof tolerates.
[[nodiscard]] constexpr bool corrupts_values(fault_class c) noexcept {
    return c != fault_class::none && c != fault_class::port_crash;
}

[[nodiscard]] inline std::optional<fault_class> parse_fault_class(
    std::string_view name) {
    for (fault_class c :
         {fault_class::none, fault_class::stale_read, fault_class::lost_write,
          fault_class::torn_value, fault_class::delayed_visibility,
          fault_class::port_crash}) {
        if (name == fault_class_name(c)) return c;
    }
    return std::nullopt;
}

/// When and how to inject. Triggers count SUBSTRATE accesses (real reads +
/// real writes across both real registers), not simulated operations.
struct fault_spec {
    fault_class cls{fault_class::none};
    /// Probabilistic trigger: each access faults with probability num/den.
    std::uint64_t rate_num{1};
    std::uint64_t rate_den{64};
    /// Seed of the plan's private rng (independent of the workload seed).
    std::uint64_t seed{1};
    /// Scripted trigger: > 0 injects at exactly the at-th access (1-based)
    /// and nowhere else; the rate is then ignored.
    std::uint64_t at{0};
    /// delayed_visibility: the write lands after this many further accesses.
    unsigned delay_accesses{3};

    [[nodiscard]] constexpr bool active() const noexcept {
        return cls != fault_class::none;
    }
};

/// What was actually injected, per class.
struct fault_counts {
    std::uint64_t stale_reads{0};
    std::uint64_t lost_writes{0};
    std::uint64_t torn_values{0};
    std::uint64_t delayed_writes{0};
    std::uint64_t port_crashes{0};
    /// Gamma position at the moment of the first injection (the log's size
    /// right then), or no_event when nothing was injected / no log attached.
    event_pos first_injection{no_event};

    [[nodiscard]] std::uint64_t total() const noexcept {
        return stale_reads + lost_writes + torn_values + delayed_writes +
               port_crashes;
    }
};

/// One plan drives every faulty_register of a composition: a shared access
/// counter (so --fault-at means "the nth substrate access of the run"), a
/// shared seeded rng, the injection counters, and the per-processor crash
/// flags. All mutation happens under the plan's spinlock; the crash flags
/// are additionally readable lock-free (the driver polls them per step).
class fault_plan {
public:
    explicit fault_plan(const fault_spec& spec, const event_log* log = nullptr)
        : spec_(spec), log_(log), gen_(spec.seed) {
        for (std::size_t i = 0; i < crashed_.size(); ++i) {
            crashed_[i].store(false, std::memory_order_relaxed);
        }
    }

    fault_plan(const fault_plan&) = delete;
    fault_plan& operator=(const fault_plan&) = delete;

    [[nodiscard]] const fault_spec& spec() const noexcept { return spec_; }

    void lock() noexcept {
        while (locked_.exchange(true, std::memory_order_acquire)) {}
    }
    void unlock() noexcept { locked_.store(false, std::memory_order_release); }

    struct scoped_lock {
        explicit scoped_lock(fault_plan& p) noexcept : p_(p) { p_.lock(); }
        ~scoped_lock() { p_.unlock(); }
        scoped_lock(const scoped_lock&) = delete;
        scoped_lock& operator=(const scoped_lock&) = delete;
        fault_plan& p_;  // NOLINT(misc-non-private-member-variables-in-classes)
    };

    /// Under the lock: counts this substrate access and decides whether it
    /// faults (spec.at exact trigger, else the probabilistic rate).
    [[nodiscard]] bool trigger() noexcept {
        const std::uint64_t n = ++accesses_;
        if (!spec_.active()) return false;
        if (spec_.at > 0) return n == spec_.at;
        return spec_.rate_num != 0 &&
               gen_.chance(spec_.rate_num, spec_.rate_den);
    }

    /// Under the lock: the plan's rng (torn-value bit masks).
    [[nodiscard]] rng& generator() noexcept { return gen_; }

    /// Under the lock: bump one class counter and stamp the first injection.
    void note(fault_class cls) noexcept {
        if (counts_.total() == 0) {
            counts_.first_injection = log_ != nullptr
                                          ? static_cast<event_pos>(log_->size())
                                          : no_event;
        }
        switch (cls) {
            case fault_class::stale_read: ++counts_.stale_reads; break;
            case fault_class::lost_write: ++counts_.lost_writes; break;
            case fault_class::torn_value: ++counts_.torn_values; break;
            case fault_class::delayed_visibility:
                ++counts_.delayed_writes;
                break;
            case fault_class::port_crash: ++counts_.port_crashes; break;
            case fault_class::none: break;
        }
    }

    /// Lock-free: has processor p's port been crashed?
    [[nodiscard]] bool crashed(processor_id p) const noexcept {
        const auto i = static_cast<std::size_t>(p);
        return i < crashed_.size() &&
               crashed_[i].load(std::memory_order_acquire);
    }

    void crash_port(processor_id p) noexcept {
        const auto i = static_cast<std::size_t>(p);
        if (i < crashed_.size()) {
            crashed_[i].store(true, std::memory_order_release);
        }
    }

    /// Takes the lock; callable any time (benches read it after the run).
    [[nodiscard]] fault_counts counts() {
        scoped_lock guard(*this);
        return counts_;
    }

    /// Under the lock: total substrate accesses seen so far.
    [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

private:
    fault_spec spec_;
    const event_log* log_;
    std::atomic<bool> locked_{false};
    rng gen_;
    std::uint64_t accesses_{0};
    fault_counts counts_{};
    std::array<std::atomic<bool>, 64> crashed_{};
};

/// Wraps a tagged substrate register with the plan's fault model. Satisfies
/// the same concept as the wrapped register, so it drops into
/// two_writer_register<value_t, faulty_register<Inner>> unchanged.
///
/// A shadow copy of the committed pair (current_/previous_) powers
/// stale_read and torn_value without trusting the (possibly lying) inner
/// register; under the plan's serializing lock the shadow is exact.
template <typename Inner>
class faulty_register {
public:
    /// `args...` go to Inner's constructor after the initial value, so one
    /// adapter covers seqlock_register (no extras), recording_register
    /// (log, reg_index) and ported_substrate (sim_readers, reg_index).
    template <typename... Args>
    explicit faulty_register(tagged<value_t> initial, fault_plan* plan,
                             Args&&... args)
        : inner_(initial, std::forward<Args>(args)...),
          plan_(plan),
          current_(initial),
          previous_(initial) {
        assert(plan_ != nullptr);
    }

    faulty_register(const faulty_register&) = delete;
    faulty_register& operator=(const faulty_register&) = delete;

    [[nodiscard]] tagged<value_t> read(access_context ctx) {
        fault_plan::scoped_lock guard(*plan_);
        service_pending(ctx);
        if (plan_->crashed(ctx.processor)) {
            // Dead port: the operation never completes (its response is
            // suppressed upstream), so the value is immaterial.
            return current_;
        }
        const bool fault = plan_->trigger();
        const fault_class cls = plan_->spec().cls;
        if (fault && cls == fault_class::port_crash) {
            plan_->note(cls);
            plan_->crash_port(ctx.processor);
            return current_;
        }
        if (fault && cls == fault_class::stale_read) {
            // Perform the real read anyway (the recording substrate then
            // logs a well-formed gamma) but hand back the PREVIOUS pair.
            (void)inner_.read(ctx);
            plan_->note(cls);
            return previous_;
        }
        return inner_.read(ctx);
    }

    void write(tagged<value_t> v, access_context ctx = {}) {
        fault_plan::scoped_lock guard(*plan_);
        service_pending(ctx);
        if (plan_->crashed(ctx.processor)) return;  // dead port: dropped
        const bool fault = plan_->trigger();
        const fault_class cls = plan_->spec().cls;
        if (fault && cls == fault_class::port_crash) {
            plan_->note(cls);
            plan_->crash_port(ctx.processor);
            return;  // the crashing access itself never lands
        }
        if (fault && cls == fault_class::lost_write) {
            plan_->note(cls);
            return;  // acknowledged upstream, never applied
        }
        if (fault && cls == fault_class::torn_value) {
            const value_t mixed = tear(current_.value, v.value);
            if (mixed != v.value) {
                plan_->note(cls);
                v.value = mixed;  // lands torn; tag bits stay the new ones
            }
            commit(v, ctx);
            return;
        }
        if (fault && cls == fault_class::delayed_visibility) {
            plan_->note(cls);
            // At most one write in flight per substrate register (the SWMR
            // model); a second delayed write flushes the first.
            if (pending_.has_value()) commit(*pending_, ctx);
            pending_ = v;
            countdown_ = plan_->spec().delay_accesses;
            return;
        }
        commit(v, ctx);
    }

    /// Forwards substrate-specific probes (seqlock retries, fourslot round
    /// reports) for tests that want them.
    [[nodiscard]] Inner& inner() noexcept { return inner_; }

private:
    /// Ages and, when due, lands the delayed write -- using the CURRENT
    /// accessor's context, which is legal: its simulated operation is open,
    /// and real writes may appear inside any open operation.
    void service_pending(access_context ctx) {
        if (!pending_.has_value()) return;
        if (countdown_ > 0) {
            --countdown_;
            return;
        }
        commit(*pending_, ctx);
        pending_.reset();
    }

    void commit(tagged<value_t> v, access_context ctx) {
        inner_.write(v, ctx);
        previous_ = current_;
        current_ = v;
    }

    /// Mixes old and new value bits under a random mask; returns something
    /// different from the new value whenever old != new.
    [[nodiscard]] value_t tear(value_t oldv, value_t newv) noexcept {
        if (oldv == newv) return newv;
        rng& gen = plan_->generator();
        for (int tries = 0; tries < 8; ++tries) {
            const auto mask = static_cast<value_t>(gen());
            const value_t mixed = (oldv & mask) | (newv & ~mask);
            if (mixed != newv) return mixed;
        }
        return oldv;  // degenerate masks: the whole old word is "torn in"
    }

    Inner inner_;
    fault_plan* plan_;
    tagged<value_t> current_;
    tagged<value_t> previous_;
    std::optional<tagged<value_t>> pending_;
    unsigned countdown_{0};
};

}  // namespace bloom87
