#include "linearizability/streaming.hpp"

#include <algorithm>
#include <limits>

#include "linearizability/fast_register.hpp"

namespace bloom87 {
namespace {

/// Processor id reserved for the virtual reads appended at retirement;
/// far above anything the harness hands out.
constexpr processor_id vread_processor =
    std::numeric_limits<processor_id>::max();

}  // namespace

streaming_checker::streaming_checker(value_t initial, streaming_config cfg)
    : cfg_(cfg), initial_(initial) {
    if (cfg_.stride == 0) cfg_.stride = 1;
    if (cfg_.pending_grace == 0) {
        cfg_.pending_grace = 16 * cfg_.window + 1024;
    }
    candidates_.push_back(initial_);
    stats_.candidate_values = 1;
}

void streaming_checker::flag(std::string why) {
    violation_ = true;
    detection_pos_ = stats_.events;
    diagnosis_ = std::move(why);
}

void streaming_checker::ingest(const event& e) {
    if (violation_) return;
    ++stats_.events;  // gamma position of e is stats_.events - 1
    if (is_real(e.kind)) return;  // external schedule only
    if (is_invocation(e.kind)) {
        on_invocation(e);
    } else {
        on_response(e);
    }
    if (violation_) return;
    if (++since_check_ >= cfg_.stride) {
        since_check_ = 0;
        run_check();
        if (!violation_) maybe_retire();
    }
}

void streaming_checker::on_invocation(const event& e) {
    for (const open_op& o : open_) {
        if (o.op.id.processor == e.processor) {
            flag("malformed stream: processor " +
                 std::to_string(e.processor) +
                 " invoked an operation while one is open");
            return;
        }
    }
    open_op o;
    o.op.id = {e.processor, e.op};
    o.op.kind = e.kind == event_kind::sim_invoke_write ? op_kind::write
                                                       : op_kind::read;
    o.op.value = e.value;  // write argument; meaningless for reads until resp
    o.op.invoked = stats_.events - 1;
    o.op.responded = no_event;
    open_.push_back(std::move(o));
}

void streaming_checker::on_response(const event& e) {
    const op_id id{e.processor, e.op};
    auto it = std::find_if(open_.begin(), open_.end(), [&](const open_op& o) {
        return o.op.id.processor == e.processor;
    });
    if (it == open_.end() || it->op.id != id) {
        if (std::find(crashed_ids_.begin(), crashed_ids_.end(), id) !=
            crashed_ids_.end()) {
            flag("operation outlived pending_grace (" +
                 std::to_string(cfg_.pending_grace) +
                 " events) and then responded; raise the streaming window "
                 "or grace for this workload");
        } else {
            flag("malformed stream: response without a matching open "
                 "operation on processor " +
                 std::to_string(e.processor));
        }
        return;
    }
    const bool is_write = e.kind == event_kind::sim_respond_write;
    if ((it->op.kind == op_kind::write) != is_write) {
        flag("malformed stream: response kind does not match the open "
             "operation on processor " +
             std::to_string(e.processor));
        return;
    }
    operation op = std::move(it->op);
    open_.erase(it);
    op.responded = stats_.events - 1;
    if (op.kind == op_kind::read) op.value = e.value;
    retained_.push_back(std::move(op));
    ++stats_.ops_completed;
    stats_.retained_ops = retained_.size();
    if (retained_.size() > stats_.peak_retained_ops) {
        stats_.peak_retained_ops = retained_.size();
    }
}

void streaming_checker::run_check() {
    ++stats_.checkpoints;
    if (retained_.empty() && open_.empty() && pending_.empty()) return;
    std::vector<operation> ops;
    ops.reserve(retained_.size() + open_.size() + pending_.size());
    ops.insert(ops.end(), retained_.begin(), retained_.end());
    ops.insert(ops.end(), pending_.begin(), pending_.end());
    for (const open_op& o : open_) ops.push_back(o.op);

    std::string first_failure;
    if (last_pass_ >= candidates_.size()) last_pass_ = 0;
    for (std::size_t k = 0; k < candidates_.size(); ++k) {
        const std::size_t i = (last_pass_ + k) % candidates_.size();
        const fast_check_result res = check_fast(ops, candidates_[i]);
        if (res.ok() && res.linearizable) {
            last_pass_ = i;
            return;
        }
        if (first_failure.empty()) {
            first_failure = res.ok() ? res.diagnosis
                                     : "checker defect: " + *res.defect;
        }
    }
    flag("streaming window not linearizable against any candidate current "
         "value (|V|=" +
         std::to_string(candidates_.size()) + "): " + first_failure);
}

void streaming_checker::maybe_retire() {
    // Declare overdue open operations crashed so an eternally-pending op
    // (a crashed port) cannot pin the window forever.
    for (std::size_t i = 0; i < open_.size();) {
        const operation& op = open_[i].op;
        if (op.invoked + cfg_.pending_grace < stats_.events) {
            crashed_ids_.push_back(op.id);
            if (op.kind == op_kind::write) {
                // Kept: a later read of this value decides the write DID
                // take effect (normalize keeps read-from pending writes).
                pending_.push_back(op);
            }
            open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
    stats_.pending_carried = pending_.size();
    if (retained_.empty()) return;

    // The cut must not split any live operation, and keeps `window` events
    // of context behind the frontier.
    std::uint64_t upper =
        stats_.events > cfg_.window ? stats_.events - cfg_.window : 0;
    for (const open_op& o : open_) {
        upper = std::min(upper, static_cast<std::uint64_t>(o.op.invoked));
    }

    // retained_ is sorted by responded. Retire the longest prefix [0, k)
    // whose last response lands before `upper` and before every later
    // retained invocation -- a quiescent cut in stream position space.
    const std::size_t n = retained_.size();
    std::vector<std::uint64_t> suffix_min_inv(n + 1, no_event);
    for (std::size_t i = n; i > 0; --i) {
        suffix_min_inv[i - 1] =
            std::min(suffix_min_inv[i],
                     static_cast<std::uint64_t>(retained_[i - 1].invoked));
    }
    std::size_t best = 0;
    for (std::size_t k = n; k > 0; --k) {
        const std::uint64_t resp = retained_[k - 1].responded;
        if (resp >= upper) continue;
        if (suffix_min_inv[k] > resp) {
            best = k;
            break;
        }
    }
    if (best > 0) retire_prefix(best);
}

void streaming_checker::retire_prefix(std::size_t k) {
    std::vector<operation> batch(
        retained_.begin(), retained_.begin() + static_cast<std::ptrdiff_t>(k));
    retained_.erase(retained_.begin(),
                    retained_.begin() + static_cast<std::ptrdiff_t>(k));

    // A retiring read that observed a carried pending (crashed) write
    // decides that write: materialize it into the batch.
    for (std::size_t r = 0; r < k; ++r) {
        if (batch[r].kind != op_kind::read) continue;
        auto it = std::find_if(
            pending_.begin(), pending_.end(), [&](const operation& w) {
                return w.value == batch[r].value;
            });
        if (it != pending_.end()) {
            batch.push_back(std::move(*it));
            pending_.erase(it);
        }
    }

    // Recompute the candidate current values: u survives iff some
    // linearization of the batch (from some previous candidate) ends with
    // value u -- probed by appending a virtual read of u after the batch.
    //
    // The universe of possible u is pruned before probing (this is what
    // keeps retirement O(batch), not O(batch^2)): writes are totally
    // ordered among themselves, so a write real-time-followed by another
    // write (some write invoked after its response) can never linearize
    // last -- only the real-time-maximal writes are eligible, and there
    // are at most `writers` of those. And if the batch contains any write,
    // SOME write linearizes last, so the previous candidates (values no
    // batch write produced) cannot survive at all.
    std::vector<value_t> universe;
    std::uint64_t max_write_inv = 0;
    bool batch_has_write = false;
    for (const operation& op : batch) {
        if (op.kind != op_kind::write) continue;
        batch_has_write = true;
        max_write_inv = std::max(
            max_write_inv, static_cast<std::uint64_t>(op.invoked));
    }
    if (!batch_has_write) {
        universe = candidates_;
    } else {
        for (const operation& op : batch) {
            // A write's own invocation precedes its response, so the
            // global max works: followed iff some OTHER write was invoked
            // after this response.
            if (op.kind == op_kind::write &&
                max_write_inv <= static_cast<std::uint64_t>(op.responded)) {
                universe.push_back(op.value);
            }
        }
    }
    std::vector<value_t> next;
    for (const value_t u : universe) {
        operation vread;
        vread.id = {vread_processor, vread_seq_++};
        vread.kind = op_kind::read;
        vread.value = u;
        vread.invoked = stats_.events;
        vread.responded = stats_.events + 1;
        std::vector<operation> probe = batch;
        probe.push_back(vread);
        for (const value_t v : candidates_) {
            const fast_check_result res = check_fast(probe, v);
            if (res.ok() && res.linearizable) {
                next.push_back(u);
                break;
            }
        }
    }
    if (next.empty()) {
        // Unreachable when the pre-retirement check passed (its witness
        // restricted to the batch ends with SOME value); kept as a loud
        // guard rather than a silent soundness hole.
        flag("internal error: no candidate current value survived "
             "retirement");
        return;
    }
    candidates_ = std::move(next);
    last_pass_ = 0;

    stats_.ops_retired += k;
    ++stats_.retire_batches;
    stats_.retained_ops = retained_.size();
    stats_.candidate_values = candidates_.size();
    stats_.pending_carried = pending_.size();
}

bool streaming_checker::check_now() {
    if (violation_) return true;
    since_check_ = 0;
    run_check();
    if (!violation_) maybe_retire();
    return violation_;
}

bool streaming_checker::finish() {
    if (violation_) return true;
    run_check();
    return violation_;
}

}  // namespace bloom87
