// proof_replay: watch the paper's proof run on a live execution.
//
// Records a real multi-threaded execution of the two-writer register
// through the recording substrate, then runs the constructive linearizer
// (Section 7 of the paper, as code) and prints what the proof "saw":
// potency classification, prefinishers, read classes, and the final
// linearization order with every operation's linearization point.
#include <cstdio>
#include <thread>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

using namespace bloom87;

int main() {
    event_log log(1 << 12);
    two_writer_register<value_t, recording_register> reg(0, &log);
    start_gate gate;

    // Two paced writers (so impotent writes actually occur) and one slow
    // reader, a handful of operations each -- small enough to print whole.
    auto writer_loop = [&](int index) {
        rng pace(41 + static_cast<std::uint64_t>(index));
        auto& wr = index == 0 ? reg.writer0() : reg.writer1();
        for (std::uint32_t i = 0; i < 8; ++i) {
            wr.write_paced(unique_value(static_cast<processor_id>(index), i), [&] {
                if (pace.chance(1, 2)) {
                    std::this_thread::sleep_for(std::chrono::microseconds(60));
                }
            });
        }
    };
    std::thread t0([&] { gate.wait(); writer_loop(0); });
    std::thread t1([&] { gate.wait(); writer_loop(1); });
    std::thread t2([&] {
        gate.wait();
        auto rd = reg.make_reader(2);
        rng pace(99);
        for (int i = 0; i < 8; ++i) {
            (void)rd.read_paced([&] {
                if (pace.chance(1, 2)) {
                    std::this_thread::sleep_for(std::chrono::microseconds(80));
                }
            });
        }
    });
    gate.open();
    t0.join();
    t1.join();
    t2.join();

    parse_result parsed = parse_history(log.snapshot(), 0);
    if (!parsed.ok()) {
        std::printf("recording malformed: %s\n", parsed.error->message.c_str());
        return 1;
    }
    const history& h = parsed.hist;
    std::printf("recorded %zu gamma events, %zu simulated operations\n\n",
                h.gamma.size(), h.ops.size());

    const bloom_result res = bloom_linearize(h);
    if (!res.ok()) {
        std::printf("gamma structurally broken: %s\n", res.defect->c_str());
        return 1;
    }

    std::printf("--- write classification (paper, Section 7) ---\n");
    for (const write_analysis& wa : res.writes) {
        std::printf("  Wr%d op %u: %s", wa.writer, wa.id.op,
                    wa.potent ? "POTENT" : "impotent");
        if (wa.has_prefinisher) {
            std::printf("  (prefinished by Wr%d op %u)",
                        wa.prefinisher.processor, wa.prefinisher.op);
        }
        std::printf("\n");
    }

    std::printf("\n--- read classification ---\n");
    for (const read_analysis& ra : res.reads) {
        const char* cls = ra.cls == read_class::of_potent    ? "of a potent write"
                          : ra.cls == read_class::of_impotent ? "of an IMPOTENT write"
                                                              : "of the initial value";
        std::printf("  Rd proc %d op %u: read %s", ra.id.processor, ra.id.op, cls);
        if (ra.cls != read_class::of_initial) {
            std::printf(" (Wr%d op %u)", ra.source.processor, ra.source.op);
        }
        std::printf("\n");
    }

    std::printf("\n--- constructed linearization (the *-action order) ---\n");
    if (!res.atomic) {
        std::printf("NOT ATOMIC: %s\n", res.diagnosis.c_str());
        return 2;
    }
    for (const star_action& sa : res.linearization) {
        const operation* op = h.find(sa.id);
        if (op->kind == op_kind::write) {
            std::printf("  Wr%d writes %lld", sa.id.processor,
                        static_cast<long long>(op->value));
        } else {
            std::printf("  proc %d reads %lld", sa.id.processor,
                        static_cast<long long>(op->value));
        }
        std::printf("   [*-action after gamma position %llu]\n",
                    static_cast<unsigned long long>(sa.anchor));
    }
    std::printf("\nverdict: ATOMIC -- the proof terminated with a legal\n"
                "sequential order, exactly as Section 7 promises.\n");
    return 0;
}
