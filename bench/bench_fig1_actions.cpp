// [FIG1] Regenerates Figure 1 of the paper: the actions of a register
// automaton -- then demonstrates them live by running the I/O-automaton
// system and counting each action kind in the schedule.
#include <iostream>
#include <map>

#include "ioa/executor.hpp"
#include "ioa/protocol_automata.hpp"
#include "util/table.hpp"

int main() {
    using namespace bloom87;
    using namespace bloom87::ioa;

    print_banner(std::cout, "FIG1", "Actions of a register automaton");

    table t({"Action", "Class", "Meaning"});
    t.row({"R_start", "input", "Command to read."});
    t.row({"R*(v)", "internal", "Event marking the instant a read of v occurs."});
    t.row({"R_finish(v)", "output",
           "Read acknowledgment; communicates the value v to the reader."});
    t.row({"W_start(v)", "input", "Command to write value v."});
    t.row({"W*(v)", "internal", "Event marking the instant a write of v occurs."});
    t.row({"W_finish", "output", "Acknowledgment of a write."});
    t.print(std::cout);

    // A live run of the Figure 2 system: count the actions by kind, split
    // into external ports vs real-register channels, and confirm the
    // bookkeeping identities (one star per matched request/ack pair).
    std::vector<env_port> ports;
    ports.push_back({"ext:wr0", std::vector<env_op>(8, env_op{true, 0})});
    ports.push_back({"ext:wr1", std::vector<env_op>(8, env_op{true, 0})});
    ports.push_back({"ext:rd1", std::vector<env_op>(12, env_op{false, 0})});
    ports.push_back({"ext:rd2", std::vector<env_op>(12, env_op{false, 0})});
    for (std::size_t i = 0; i < ports.size(); ++i) {
        for (std::size_t k = 0; k < ports[i].script.size(); ++k) {
            ports[i].script[k].value =
                static_cast<value_t>(100 * (i + 1) + k);
        }
    }
    simulated_register_system sys = make_simulated_register(0, 2, std::move(ports));
    const schedule sched = run_fair(*sys.system, /*seed=*/1987);

    std::map<std::string, std::map<act, std::size_t>> counts;
    for (const scheduled_action& sa : sched) {
        const bool ext = sa.act_taken.channel.starts_with("ext:");
        counts[ext ? "external port" : "register channel"][sa.act_taken.kind]++;
    }

    std::cout << "\nLive schedule of the simulated register "
              << "(8+8 writes, 12+12 reads):\n\n";
    table c({"Where", "R_start", "R*", "R_finish", "W_start", "W*", "W_finish"});
    for (const auto& [where, m] : counts) {
        auto g = [&](act a) {
            auto it = m.find(a);
            return std::to_string(it == m.end() ? 0 : it->second);
        };
        c.row({where, g(act::read_request), g(act::star_read), g(act::read_ack),
               g(act::write_request), g(act::star_write), g(act::write_ack)});
    }
    c.print(std::cout);

    std::cout << "\nIdentities: every request has exactly one star action and\n"
              << "one acknowledgment; a simulated read costs 3 real reads and\n"
              << "a simulated write costs 1 real read + 1 real write, so the\n"
              << "register channels carry 3*24+16 = 88 R_start and 16 W_start.\n";
    return 0;
}
