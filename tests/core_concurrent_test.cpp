// Concurrent verification of the two-writer register: real threads hammer
// the protocol over the recording substrate; every recorded gamma is checked
// three ways -- by the paper's constructive linearizer, by the polynomial
// register checker, and (for small runs) by the exhaustive checker.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/recording.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

using recorded_reg = two_writer_register<value_t, recording_register>;

/// Runs one recorded multi-threaded execution of the given workload and
/// returns its parsed history.
history run_recorded(const workload& w, value_t initial) {
    const std::size_t total = w.total_ops();
    event_log log(total * 8 + 64);
    recorded_reg reg(initial, &log);

    start_gate gate;
    std::vector<std::thread> pool;
    for (std::size_t p = 0; p < w.scripts.size(); ++p) {
        pool.emplace_back([&, p] {
            gate.wait();
            if (p < 2) {
                auto& writer = p == 0 ? reg.writer0() : reg.writer1();
                for (const workload_op& op : w.scripts[p]) {
                    if (op.kind == op_kind::write) {
                        writer.write(op.value);
                    } else {
                        (void)writer.read();
                    }
                }
            } else {
                auto reader = reg.make_reader(static_cast<processor_id>(p));
                for (const workload_op& op : w.scripts[p]) {
                    (void)op;
                    (void)reader.read();
                }
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();

    parse_result parsed = parse_history(log.snapshot(), initial);
    EXPECT_TRUE(parsed.ok()) << parsed.error->message;
    return std::move(parsed.hist);
}

std::vector<operation> complete_ops(const history& h) { return h.ops; }

// ---------------------------------------------------------------------------
// Property sweep: many seeds, three checkers in agreement.
// ---------------------------------------------------------------------------

class RecordedExecution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecordedExecution, ConstructiveLinearizerAcceptsEveryRun) {
    workload_config cfg;
    cfg.readers = 3;
    cfg.ops_per_writer = 150;
    cfg.ops_per_reader = 150;
    const workload w = make_workload(cfg, GetParam());
    const history h = run_recorded(w, 0);

    const bloom_result res = bloom_linearize(h);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    // Every completed op got a linearization point.
    std::size_t complete = 0;
    for (const operation& op : h.ops) complete += op.complete();
    EXPECT_EQ(res.linearization.size(), complete);
}

TEST_P(RecordedExecution, FastCheckerAgrees) {
    workload_config cfg;
    cfg.readers = 3;
    cfg.ops_per_writer = 120;
    cfg.ops_per_reader = 120;
    const workload w = make_workload(cfg, GetParam() + 1000);
    const history h = run_recorded(w, 0);

    const auto fast = check_fast(complete_ops(h), 0);
    ASSERT_TRUE(fast.ok()) << *fast.defect;
    EXPECT_TRUE(fast.linearizable) << fast.diagnosis;
    const auto constructive = bloom_linearize(h);
    ASSERT_TRUE(constructive.ok());
    EXPECT_TRUE(constructive.atomic) << constructive.diagnosis;
}

TEST_P(RecordedExecution, SmallRunsPassExhaustiveChecker) {
    workload_config cfg;
    cfg.readers = 2;
    cfg.ops_per_writer = 6;
    cfg.ops_per_reader = 6;
    const workload w = make_workload(cfg, GetParam() + 2000);
    const history h = run_recorded(w, 0);

    const auto slow = check_exhaustive(complete_ops(h), 0);
    ASSERT_TRUE(slow.ok()) << *slow.defect;
    EXPECT_TRUE(slow.linearizable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordedExecution,
                         ::testing::Range<std::uint64_t>(0, 24));

// ---------------------------------------------------------------------------
// Lemma statistics: impotent writes do occur under contention, and every one
// has a potent prefinisher (Lemmas 1-2 as runtime invariants; the linearizer
// fails loudly if they break, so here we just confirm both classes happen).
// ---------------------------------------------------------------------------

TEST(LemmaStats, BothPotencyClassesOccurUnderContention) {
    // Tight write loops almost never interleave inside the read->write
    // window (cache-line arbitration makes the two writers' access pairs
    // bursty), so pace the writers with random spins to exercise the
    // impotent path. Every history still must linearize.
    std::size_t potent = 0, impotent = 0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        event_log log(1 << 16);
        recorded_reg reg(0, &log);
        start_gate gate;
        auto writer_loop = [&](int index) {
            rng pace(seed * 2 + static_cast<std::uint64_t>(index));
            auto& wr = index == 0 ? reg.writer0() : reg.writer1();
            for (std::uint32_t i = 0; i < 800; ++i) {
                const bool stall = pace.chance(1, 8);
                wr.write_paced(
                    unique_value(static_cast<processor_id>(index), i), [&] {
                        if (stall) {
                            std::this_thread::sleep_for(
                                std::chrono::microseconds(50));
                        }
                    });
            }
        };
        std::thread t0([&] { gate.wait(); writer_loop(0); });
        std::thread t1([&] { gate.wait(); writer_loop(1); });
        gate.open();
        t0.join();
        t1.join();

        parse_result parsed = parse_history(log.snapshot(), 0);
        ASSERT_TRUE(parsed.ok()) << parsed.error->message;
        const bloom_result res = bloom_linearize(parsed.hist);
        ASSERT_TRUE(res.ok());
        ASSERT_TRUE(res.atomic) << res.diagnosis;
        potent += res.potent_count;
        impotent += res.impotent_count;
    }
    EXPECT_GT(potent, 0u);
    EXPECT_GT(impotent, 0u);
}

// ---------------------------------------------------------------------------
// Crash injection: a writer dying at any protocol step leaves an atomic
// history and never blocks the other processors.
// ---------------------------------------------------------------------------

class CrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashSweep, CrashedWritesLeaveHistoryAtomic) {
    rng gen(GetParam());
    event_log log(1 << 16);
    recorded_reg reg(0, &log);
    start_gate gate;

    std::thread t0([&] {
        gate.wait();
        auto& wr = reg.writer0();
        for (std::uint32_t i = 0; i < 120; ++i) {
            const value_t v = unique_value(0, i);
            switch (i % 4) {
                case 0: wr.write_crashed(v, crash_point::before_read); break;
                case 1: wr.write_crashed(v, crash_point::after_read); break;
                case 2: wr.write_crashed(v, crash_point::after_write); break;
                default: wr.write(v); break;
            }
        }
    });
    std::thread t1([&] {
        gate.wait();
        auto& wr = reg.writer1();
        for (std::uint32_t i = 0; i < 120; ++i) wr.write(unique_value(1, i));
    });
    std::thread t2([&] {
        gate.wait();
        auto rd = reg.make_reader(2);
        for (int i = 0; i < 200; ++i) (void)rd.read();
    });
    gate.open();
    t0.join();
    t1.join();
    t2.join();

    parse_result parsed = parse_history(log.snapshot(), 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    const auto fast = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(fast.ok()) << *fast.defect;
    EXPECT_TRUE(fast.linearizable) << fast.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweep, ::testing::Range<std::uint64_t>(0, 8));

// ---------------------------------------------------------------------------
// The cached writer-read variant (Section 5 optimization) under concurrency,
// verified with the generic checker (it performs fewer real reads, so the
// constructive linearizer's three-read shape does not apply).
// ---------------------------------------------------------------------------

TEST(CachedRead, ConcurrentHistoriesAtomic) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        event_log log(1 << 16);
        recorded_reg reg(0, &log);
        start_gate gate;

        std::thread t0([&] {
            gate.wait();
            auto& wr = reg.writer0();
            rng g(seed * 3 + 1);
            for (std::uint32_t i = 0; i < 150; ++i) {
                if (g.chance(1, 3)) {
                    (void)wr.read_cached();
                } else {
                    wr.write(unique_value(0, i));
                }
            }
        });
        std::thread t1([&] {
            gate.wait();
            auto& wr = reg.writer1();
            rng g(seed * 3 + 2);
            for (std::uint32_t i = 0; i < 150; ++i) {
                if (g.chance(1, 3)) {
                    (void)wr.read_cached();
                } else {
                    wr.write(unique_value(1, i));
                }
            }
        });
        std::thread t2([&] {
            gate.wait();
            auto rd = reg.make_reader(2);
            for (int i = 0; i < 150; ++i) (void)rd.read();
        });
        gate.open();
        t0.join();
        t1.join();
        t2.join();

        // Cached reads perform 1-2 real reads, so parse_history's read-shape
        // tolerant path applies; use only the external ops with the fast
        // checker.
        parse_result parsed = parse_history(log.snapshot(), 0);
        ASSERT_TRUE(parsed.ok()) << parsed.error->message;
        const auto fast = check_fast(parsed.hist.ops, 0);
        ASSERT_TRUE(fast.ok()) << *fast.defect;
        EXPECT_TRUE(fast.linearizable) << "seed " << seed << ": " << fast.diagnosis;
    }
}

}  // namespace
}  // namespace bloom87
