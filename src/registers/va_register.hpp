// bloom87: n-writer m-reader atomic register via unbounded timestamps
// (in the style of Vitanyi & Awerbuch [VA], the multi-writer work the
// paper's Section 8 points to).
//
// Bloom's protocol is specifically TWO-writer, and Section 8 proves the
// natural tournament extension fails for any two-writer building block.
// The way forward the paper cites is timestamp-based: give each writer its
// own SWMR atomic register; a writer scans all of them, picks a timestamp
// larger than any it saw, and publishes (value, timestamp, writer-id) in
// its own register; a reader scans all registers and returns the value
// with the lexicographically largest (timestamp, writer-id).
//
//   write by w:  for all j: s_j := R_j.read();  ts := 1 + max_j s_j.ts;
//                R_w.write((v, ts, w))
//   read:        for all j: s_j := R_j.read();  return value of max (ts, id)
//
// Atomic with UNBOUNDED timestamps (64-bit here -- practically unbounded);
// the bounded-timestamp constructions are the hard part the literature
// spent years on and are out of scope. Costs: write = n reads + 1 write;
// read = n reads; space = n SWMR registers of (value + 64-bit ts).
//
// Contrast with Bloom for the 2-writer case: VA pays timestamp space and
// n reads per write, Bloom pays ONE tag bit and one read per write --
// that economy is the paper's contribution. bench_multiwriter prices it.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "registers/concepts.hpp"
#include "registers/seqlock.hpp"
#include "registers/tagged.hpp"

namespace bloom87 {

/// n-writer multi-reader atomic register over T. Each writer must use its
/// own writer_port (single-threaded); reads may come from any thread.
template <typename T, template <typename> class SwmrTmpl = seqlock_register>
class va_register {
    struct stamped {
        T value{};
        std::uint64_t ts{0};   // 0 = initial
        std::uint32_t writer{0};
    };
    using cell = SwmrTmpl<stamped>;

public:
    class writer_port;

    va_register(T initial, std::size_t writers) : writers_(writers) {
        cells_.reserve(writers_);
        for (std::size_t i = 0; i < writers_; ++i) {
            cells_.push_back(std::make_unique<cell>(
                tagged<stamped>{stamped{initial, 0, 0}, false}));
        }
    }

    /// Write port for writer w in [0, writers). One thread per port.
    [[nodiscard]] writer_port make_writer_port(std::size_t w) {
        assert(w < writers_);
        return writer_port{*this, w};
    }

    /// Atomic read, any thread: n SWMR reads, newest (ts, writer) wins.
    [[nodiscard]] T read(access_context = {}) {
        return scan().value;
    }

    class writer_port {
    public:
        /// Atomic write: n SWMR reads + 1 SWMR write.
        void write(T v, access_context = {}) {
            const stamped newest = owner_->scan();
            owner_->cells_[index_]->write(tagged<stamped>{
                stamped{v, newest.ts + 1, static_cast<std::uint32_t>(index_)},
                false});
        }

        /// The port doubles as a read port (any port may read).
        [[nodiscard]] T read(access_context = {}) { return owner_->read(); }

        [[nodiscard]] std::size_t index() const noexcept { return index_; }

    private:
        friend class va_register;
        writer_port(va_register& owner, std::size_t index)
            : owner_(&owner), index_(index) {}

        va_register* owner_;
        std::size_t index_;
    };

    [[nodiscard]] std::size_t writers() const noexcept { return writers_; }

private:
    [[nodiscard]] stamped scan() {
        stamped best = cells_[0]->read().value;
        for (std::size_t j = 1; j < writers_; ++j) {
            const stamped s = cells_[j]->read().value;
            if (s.ts > best.ts || (s.ts == best.ts && s.writer > best.writer)) {
                best = s;
            }
        }
        return best;
    }

    std::size_t writers_;
    std::vector<std::unique_ptr<cell>> cells_;
};

}  // namespace bloom87
