// bloom87: exhaustive linearizability checker (Wing-Gong search with
// memoization, in the style of Lowe's optimization).
//
// Sound and complete for register histories of up to 62 operations. The
// search explores every real-time-consistent order of operations against the
// sequential register spec, memoizing (linearized-set, register-value)
// states. Exponential in the worst case -- used for model-checker leaves,
// scenario tests, and for cross-validating the polynomial checker; large
// stress histories go to fast_register.hpp or the Bloom constructive
// linearizer instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "histories/history.hpp"
#include "linearizability/normalize.hpp"

namespace bloom87 {

struct exhaustive_result {
    bool linearizable{false};
    std::uint64_t states_explored{0};
    /// A witness linearization (indices into the normalized ops) when
    /// linearizable; the point of failure is not reconstructed.
    std::vector<std::size_t> witness;
    std::optional<std::string> defect;  ///< malformed input, size limit, ...

    [[nodiscard]] bool ok() const noexcept { return !defect.has_value(); }
};

/// Checks atomicity of a register history by exhaustive search.
/// `raw` may contain pending (crashed) operations; see normalize_history.
[[nodiscard]] exhaustive_result check_exhaustive(const std::vector<operation>& raw,
                                                 value_t initial);

}  // namespace bloom87
