#include "linearizability/monitor.hpp"

#include <cassert>

#include "histories/history.hpp"
#include "linearizability/fast_register.hpp"

namespace bloom87 {

atomicity_monitor::atomicity_monitor(value_t initial, std::size_t capacity)
    : initial_(initial), log_(capacity) {}

void atomicity_monitor::port::begin_write(value_t v) {
    assert(!open_ && "port already has an operation in flight");
    event e;
    e.kind = event_kind::sim_invoke_write;
    e.processor = processor_;
    e.op = next_op_;
    e.value = v;
    owner_->log_.append(e);
    open_ = true;
    open_op_ = next_op_++;
    open_is_write_ = true;
}

void atomicity_monitor::port::end_write() {
    assert(open_ && open_is_write_);
    event e;
    e.kind = event_kind::sim_respond_write;
    e.processor = processor_;
    e.op = open_op_;
    owner_->log_.append(e);
    open_ = false;
}

void atomicity_monitor::port::begin_read() {
    assert(!open_ && "port already has an operation in flight");
    event e;
    e.kind = event_kind::sim_invoke_read;
    e.processor = processor_;
    e.op = next_op_;
    owner_->log_.append(e);
    open_ = true;
    open_op_ = next_op_++;
    open_is_write_ = false;
}

void atomicity_monitor::port::end_read(value_t result) {
    assert(open_ && !open_is_write_);
    event e;
    e.kind = event_kind::sim_respond_read;
    e.processor = processor_;
    e.op = open_op_;
    e.value = result;
    owner_->log_.append(e);
    open_ = false;
}

void atomicity_monitor::port::abandon() { open_ = false; }

monitor_verdict atomicity_monitor::verify() const {
    monitor_verdict out;
    if (log_.overflowed()) {
        out.diagnosis = "monitor capacity exceeded; history incomplete";
        return out;
    }
    const parse_result parsed = parse_history(log_.snapshot(), initial_);
    if (!parsed.ok()) {
        out.diagnosis = "malformed history: " + parsed.error->message;
        return out;
    }
    out.operations = parsed.hist.ops.size();
    const fast_check_result res = check_fast(parsed.hist.ops, initial_);
    if (!res.ok()) {
        out.diagnosis = "checker defect: " + *res.defect;
        return out;
    }
    out.atomic = res.linearizable;
    if (!out.atomic) out.diagnosis = res.diagnosis;
    return out;
}

}  // namespace bloom87
