// Bounded exhaustive verification (src/modelcheck): every interleaving of
// Bloom's protocol is atomic; the four-writer tournament is not; the
// substrate constructions provide exactly their claimed consistency level.
#include <gtest/gtest.h>

#include "modelcheck/explorer.hpp"
#include "modelcheck/processes.hpp"

namespace bloom87::mc {
namespace {

mc_register atomic_reg(mc_value domain, mc_value committed) {
    mc_register r;
    r.level = reg_level::atomic;
    r.domain = domain;
    r.committed = committed;
    return r;
}

mc_register weak_reg(reg_level level, mc_value domain, mc_value committed) {
    mc_register r;
    r.level = level;
    r.domain = domain;
    r.committed = committed;
    return r;
}

/// Bloom system: initial value 0, writers' scripts given as raw values.
sim_state bloom_system(std::vector<mc_value> w0, std::vector<mc_value> w1,
                       int readers, int reads_each) {
    mc_value max_v = 0;
    for (mc_value v : w0) max_v = std::max(max_v, v);
    for (mc_value v : w1) max_v = std::max(max_v, v);
    const auto domain = static_cast<mc_value>((max_v + 1) * 2);

    sim_state s;
    s.registers.push_back(atomic_reg(domain, encode_tagged(0, false)));
    s.registers.push_back(atomic_reg(domain, encode_tagged(0, false)));
    s.procs.push_back(make_bloom_writer(0, std::move(w0)));
    s.procs.push_back(make_bloom_writer(1, std::move(w1)));
    for (int r = 0; r < readers; ++r) {
        s.procs.push_back(
            make_bloom_reader(static_cast<processor_id>(2 + r), reads_each));
    }
    return s;
}

TEST(BloomModel, TwoWritesEachOneReaderAllSchedulesAtomic) {
    sim_state s = bloom_system({1, 2}, {3, 4}, 1, 1);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
    EXPECT_GT(res.leaves, 0u);
    EXPECT_GT(res.distinct_histories, 100u);
}

TEST(BloomModel, TwoReadersAllSchedulesAtomic) {
    // A second reader catches cross-reader new-old inversions: reader A
    // returning the new value, then reader B (starting after A finished)
    // returning the old one.
    sim_state s = bloom_system({1}, {2}, 1, 2);
    s.procs.push_back(make_bloom_reader(3, 1));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

TEST(BloomModel, DeepWriterContentionAtomic) {
    sim_state s = bloom_system({1, 2, 3}, {4, 5}, 1, 1);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds);
}

// Footnote 5 of the paper: the proof tolerates reordering the reader's
// first two reads. The explorer confirms the reversed-order reader is
// atomic at the same bound that certifies the standard one.
TEST(BloomModel, ReversedTagSamplingStillAtomic) {
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.procs.push_back(make_bloom_writer(0, {1, 2}));
    s.procs.push_back(make_bloom_writer(1, {3, 4}));
    s.procs.push_back(make_bloom_reader_reversed(2, 2));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

// Ablation: the third real read is NECESSARY. A reader returning the value
// it captured alongside the chosen tag can return a value overwritten
// before the read even started (the explorer finds the stale-read trace).
TEST(BloomModel, SkippingTheThirdReadBreaksAtomicity) {
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.procs.push_back(make_bloom_writer(0, {1, 2}));
    s.procs.push_back(make_bloom_writer(1, {3, 4}));
    s.procs.push_back(make_bloom_reader_no_reread(2, 2));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds)
        << "the two-read shortcut should NOT be atomic";
}

// Mutation test: a writer applying the WRONG tag rule (the other writer's)
// must be caught by the explorer -- writer 1 then writes tag t0', so its
// writes never move the tag sum to 1 and readers can miss them entirely
// even after the write completed.
TEST(BloomModel, BrokenTagRuleCaught) {
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.procs.push_back(make_bloom_writer(0, {1, 2}));
    s.procs.push_back(make_bloom_writer_wrong_tag(1, {3, 4}));
    s.procs.push_back(make_bloom_reader(2, 2));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

// Exhaustive crash tolerance: a writer crashing at EVERY possible point of
// EVERY op, under EVERY schedule, leaves an atomic history (paper §5: "the
// write either occurs or does not occur").
class CrashPoints
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(CrashPoints, AllSchedulesAtomicAroundACrash) {
    const auto [crash_op, crash_stage] = GetParam();
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(0, false)));
    s.procs.push_back(
        make_bloom_writer_crashing(0, {1, 2}, crash_op, crash_stage));
    s.procs.push_back(make_bloom_writer(1, {3, 4}));
    s.procs.push_back(make_bloom_reader(2, 1));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << "crash at op " << crash_op << " stage " << crash_stage << "\n"
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

INSTANTIATE_TEST_SUITE_P(
    Points, CrashPoints,
    ::testing::Combine(::testing::Values<std::size_t>(0, 1),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// The four-writer tournament (paper, Section 8).
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Faulty substrate (registers/faulty.hpp, modeled): every value-corrupting
// class has a reachable violating schedule; port_crash does not.
// ---------------------------------------------------------------------------

/// Bloom system over a faulty substrate: both writers and the reader may
/// fault per `cls`, at most once each; registers track the previous commit
/// so modeled stale reads have a value to serve.
sim_state faulty_bloom_system(fault_class cls) {
    sim_state s;
    const auto domain = static_cast<mc_value>((2 * 1 + 1) * 2);
    for (int i = 0; i < 2; ++i) {
        mc_register r = atomic_reg(domain, encode_tagged(0, false));
        r.track_previous = true;
        s.registers.push_back(r);
    }
    s.procs.push_back(make_faulty_bloom_writer(0, {1}, cls, 1));
    s.procs.push_back(make_faulty_bloom_writer(1, {2}, cls, 1));
    s.procs.push_back(make_faulty_bloom_reader(2, 1, cls, 1));
    return s;
}

class CorruptingFaults : public ::testing::TestWithParam<fault_class> {};

TEST_P(CorruptingFaults, HaveAReachableViolatingSchedule) {
    sim_state s = faulty_bloom_system(GetParam());
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds)
        << fault_class_name(GetParam())
        << ": no schedule violated atomicity, but this class corrupts values";
    ASSERT_TRUE(res.first_violation.has_value());
    EXPECT_FALSE(res.first_violation->hist.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllValueCorruptingClasses, CorruptingFaults,
    ::testing::Values(fault_class::stale_read, fault_class::lost_write,
                      fault_class::torn_value,
                      fault_class::delayed_visibility),
    [](const auto& info) { return fault_class_name(info.param); });

TEST(FaultyModel, PortCrashesPreserveAtomicityOnEverySchedule) {
    sim_state s = faulty_bloom_system(fault_class::port_crash);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
    EXPECT_GT(res.leaves, 0u);
}

TEST(TournamentModel, ViolationFoundWithThreeWriters) {
    // The Figure 5 schedule needs Wr00, Wr01 (pair 0) and Wr11 (pair 1),
    // plus a reader taking two reads. The explorer must find a
    // non-linearizable schedule.
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(1, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(1, false)));
    s.procs.push_back(make_tournament_writer(0, {2}));  // Wr00 writes 'x'
    s.procs.push_back(make_tournament_writer(1, {3}));  // Wr01 writes 'd'
    s.procs.push_back(make_tournament_writer(3, {4}));  // Wr11 writes 'c'
    s.procs.push_back(make_tournament_reader(4, 2));
    explore_config cfg;
    cfg.initial = 1;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds)
        << "the tournament register should NOT be atomic";
    ASSERT_TRUE(res.first_violation.has_value());
}

TEST(TournamentModel, SingleWriterPerPairIsAtomic) {
    // With only one writer per pair the tournament degenerates to Bloom's
    // two-writer protocol and must pass.
    sim_state s;
    s.registers.push_back(atomic_reg(16, encode_tagged(1, false)));
    s.registers.push_back(atomic_reg(16, encode_tagged(1, false)));
    s.procs.push_back(make_tournament_writer(0, {2, 3}));
    s.procs.push_back(make_tournament_writer(2, {4, 5}));
    s.procs.push_back(make_tournament_reader(4, 2));
    explore_config cfg;
    cfg.initial = 1;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

// ---------------------------------------------------------------------------
// Simpson's four-slot register over weak slots.
// ---------------------------------------------------------------------------

sim_state fourslot_system(reg_level data_level, reg_level control_level,
                          std::vector<mc_value> writes, int reads) {
    mc_value max_v = 0;
    for (mc_value v : writes) max_v = std::max(max_v, v);
    sim_state s;
    for (int i = 0; i < 4; ++i) {
        s.registers.push_back(
            weak_reg(data_level, static_cast<mc_value>(max_v + 1), 0));
    }
    for (int i = 0; i < 4; ++i) {
        s.registers.push_back(weak_reg(control_level, 2, 0));
    }
    s.procs.push_back(make_fourslot_writer(0, std::move(writes)));
    s.procs.push_back(make_fourslot_reader(0, 1, reads));
    return s;
}

TEST(FourSlotModel, AtomicWithAtomicControlBitsAndSafeSlots) {
    // Simpson's correctness argument assumes atomic control bits; the data
    // slots may be arbitrarily weak (safe).
    sim_state s = fourslot_system(reg_level::safe, reg_level::atomic, {1, 2}, 2);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
    EXPECT_GT(res.distinct_histories, 10u);
}

TEST(FourSlotModel, RegularControlBitsAreNotEnough) {
    // With merely REGULAR control bits a reader can see the new slot index
    // and then an older one, producing a new-old inversion -- the explorer
    // finds it. (This is why the threaded four_slot_register uses atomic
    // control bits.)
    sim_state s = fourslot_system(reg_level::safe, reg_level::regular, {1, 2}, 2);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

TEST(FourSlotModel, ThreeWritesStillAtomic) {
    sim_state s = fourslot_system(reg_level::safe, reg_level::atomic, {1, 2, 3}, 2);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

// ---------------------------------------------------------------------------
// Lamport's unary construction: regular but not atomic.
// ---------------------------------------------------------------------------

sim_state unary_system(int k, std::vector<mc_value> writes, int reads) {
    sim_state s;
    for (int i = 0; i < k; ++i) {
        s.registers.push_back(weak_reg(reg_level::regular, 2, i == 0 ? 1 : 0));
    }
    s.procs.push_back(make_unary_writer(0, k, std::move(writes)));
    s.procs.push_back(make_unary_reader(0, k, 1, reads));
    return s;
}

TEST(UnaryModel, IsRegular) {
    sim_state s = unary_system(3, {2, 1}, 2);
    explore_config cfg;
    cfg.prop = property::regular_swmr;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

TEST(UnaryModel, IsNotAtomic) {
    // Two sequential reads overlapping one write can see new-then-old
    // (the classic regular-but-not-atomic behavior).
    sim_state s = unary_system(3, {2, 1}, 2);
    explore_config cfg;
    cfg.prop = property::atomic;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

// ---------------------------------------------------------------------------
// The SWMR-from-SWSR multi-reader construction.
// ---------------------------------------------------------------------------

sim_state mr_system(int n, std::vector<mc_value> writes,
                    std::vector<int> reads_per_reader, bool with_report) {
    sim_state s;
    const auto domain = static_cast<mc_value>(writes.size() + 1);
    for (int i = 0; i < n + n * n; ++i) {
        s.registers.push_back(atomic_reg(domain, 0));
    }
    s.procs.push_back(make_mr_writer(0, n, writes));
    for (int r = 0; r < n; ++r) {
        auto reader = with_report
                          ? make_mr_reader(0, n, r,
                                           static_cast<processor_id>(2 + r),
                                           reads_per_reader[static_cast<std::size_t>(r)],
                                           writes)
                          : make_mr_reader_no_report(
                                0, n, r, static_cast<processor_id>(2 + r),
                                reads_per_reader[static_cast<std::size_t>(r)],
                                writes);
        s.procs.push_back(std::move(reader));
    }
    return s;
}

TEST(MultiReaderModel, TwoReadersAtomic) {
    sim_state s = mr_system(2, {1, 2}, {2, 1}, true);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
    EXPECT_GT(res.distinct_histories, 50u);
}

TEST(MultiReaderModel, ThreeReadersAtomic) {
    sim_state s = mr_system(3, {1}, {1, 1, 1}, true);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

TEST(MultiReaderModel, SkippingTheReportRoundBreaksAtomicity) {
    // Without the report round, reader A can return the new value while a
    // later read by reader B still returns the old one: the mutation is
    // caught, proving the round is load-bearing.
    sim_state s = mr_system(2, {1, 2}, {2, 2}, false);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

// ---------------------------------------------------------------------------
// Lamport's hierarchy, verified directly on single cells.
// ---------------------------------------------------------------------------

sim_state cell_system(reg_level level, std::vector<mc_value> writes, int readers,
                      int reads_each) {
    mc_value max_v = 0;
    for (mc_value v : writes) max_v = std::max(max_v, v);
    sim_state s;
    s.registers.push_back(weak_reg(level, static_cast<mc_value>(max_v + 1), 0));
    if (level == reg_level::atomic) s.registers[0].level = reg_level::atomic;
    s.procs.push_back(make_cell_writer(0, std::move(writes)));
    for (int r = 0; r < readers; ++r) {
        s.procs.push_back(make_cell_reader(0, static_cast<processor_id>(2 + r),
                                           reads_each));
    }
    return s;
}

TEST(Hierarchy, AtomicCellIsAtomic) {
    sim_state s = cell_system(reg_level::atomic, {1, 2}, 2, 2);
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds);
}

TEST(Hierarchy, RegularCellIsRegularButNotAtomic) {
    {
        sim_state s = cell_system(reg_level::regular, {1, 2}, 1, 2);
        explore_config cfg;
        cfg.prop = property::regular_swmr;
        EXPECT_TRUE(explore(s, cfg).property_holds);
    }
    {
        sim_state s = cell_system(reg_level::regular, {1, 2}, 1, 2);
        explore_config cfg;
        cfg.prop = property::atomic;
        EXPECT_FALSE(explore(s, cfg).property_holds);  // new-old inversion
    }
}

TEST(Hierarchy, SafeCellIsNotEvenRegular) {
    // Rewriting the same value lets an overlapping safe read flicker to a
    // value that is neither the old one nor the written one.
    sim_state s = cell_system(reg_level::safe, {1, 1}, 1, 1);
    explore_config cfg;
    cfg.prop = property::regular_swmr;
    EXPECT_FALSE(explore(s, cfg).property_holds);
}

TEST(Hierarchy, BinaryEncodedRegisterIsSafeButNotRegular) {
    // Lamport: B safe bits give a 2^B-valued SAFE register (construction by
    // binary encoding)...
    {
        sim_state s;
        for (int b = 0; b < 2; ++b) {
            s.registers.push_back(weak_reg(reg_level::safe, 2, 0));
        }
        s.procs.push_back(make_binary_writer(0, 2, {1, 2}));
        s.procs.push_back(make_binary_reader(0, 2, 1, 2));
        explore_config cfg;
        cfg.prop = property::safe_swmr;
        const explore_result res = explore(s, cfg);
        EXPECT_FALSE(res.truncated);
        EXPECT_TRUE(res.property_holds)
            << res.first_violation->diagnosis << "\n"
            << format_operations(res.first_violation->hist);
    }
    // ... but NOT a regular one: an overlapping read can assemble a
    // mixture of old and new bits (e.g. reading 3 while 1 -> 2).
    {
        sim_state s;
        for (int b = 0; b < 2; ++b) {
            s.registers.push_back(weak_reg(reg_level::safe, 2, 0));
        }
        s.procs.push_back(make_binary_writer(0, 2, {1, 2}));
        s.procs.push_back(make_binary_reader(0, 2, 1, 2));
        explore_config cfg;
        cfg.prop = property::regular_swmr;
        const explore_result res = explore(s, cfg);
        EXPECT_FALSE(res.truncated);
        EXPECT_FALSE(res.property_holds);
    }
}

TEST(Hierarchy, BinaryOverRegularBitsIsStillNotRegular) {
    // Even REGULAR bits do not make the binary-encoded register regular:
    // each bit individually returns old-or-new, but the mixture across
    // bits can be a value never written (1 -> 2 read as 3 or 0).
    sim_state s;
    for (int b = 0; b < 2; ++b) {
        s.registers.push_back(weak_reg(reg_level::regular, 2, 0));
    }
    s.procs.push_back(make_binary_writer(0, 2, {1, 2}));
    s.procs.push_back(make_binary_reader(0, 2, 1, 2));
    explore_config cfg;
    cfg.prop = property::regular_swmr;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

TEST(Hierarchy, MonotoneStampsUpgradeRegularToSwsrAtomic) {
    // The classic construction: a single reader keeping the freshest
    // (seq, value) it ever saw turns a REGULAR cell into an ATOMIC SWSR
    // register.
    constexpr mc_value vdom = 4;
    sim_state s;
    // Stamps go up to (writes=2)+1 -> domain (2+1)*vdom.
    s.registers.push_back(weak_reg(reg_level::regular, 3 * vdom, 0));
    s.procs.push_back(make_stamped_cell_writer(0, {1, 2}, vdom));
    s.procs.push_back(make_stamped_cell_reader(0, 2, 3, vdom));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

TEST(Hierarchy, MonotoneStampsDoNotFixTwoReaders) {
    // The same trick is NOT enough for two readers (that is what the
    // report round of swmr_from_swsr exists for).
    constexpr mc_value vdom = 4;
    sim_state s;
    s.registers.push_back(weak_reg(reg_level::regular, 3 * vdom, 0));
    s.procs.push_back(make_stamped_cell_writer(0, {1, 2}, vdom));
    s.procs.push_back(make_stamped_cell_reader(0, 2, 2, vdom));
    s.procs.push_back(make_stamped_cell_reader(0, 3, 2, vdom));
    explore_config cfg;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

// ---------------------------------------------------------------------------
// Safe bit discipline (Lamport).
// ---------------------------------------------------------------------------

sim_state bit_system(bool disciplined, std::vector<mc_value> writes, int reads) {
    sim_state s;
    s.registers.push_back(weak_reg(reg_level::safe, 2, 0));
    s.procs.push_back(make_bit_writer(0, std::move(writes), disciplined));
    s.procs.push_back(make_bit_reader(0, 1, reads));
    return s;
}

TEST(SafeBitModel, UndisciplinedWriterIsNotRegular) {
    // Writing 1 twice: during the second (same-value) write a safe read may
    // flicker to 0, which regularity forbids.
    sim_state s = bit_system(false, {1, 1}, 1);
    explore_config cfg;
    cfg.prop = property::regular_swmr;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_FALSE(res.property_holds);
}

TEST(SafeBitModel, WriteOnlyChangesDisciplineIsRegular) {
    sim_state s = bit_system(true, {1, 1, 0, 0, 1}, 2);
    explore_config cfg;
    cfg.prop = property::regular_swmr;
    const explore_result res = explore(s, cfg);
    EXPECT_FALSE(res.truncated);
    EXPECT_TRUE(res.property_holds)
        << res.first_violation->diagnosis << "\n"
        << format_operations(res.first_violation->hist);
}

}  // namespace
}  // namespace bloom87::mc
