// [TAB-F] Substrate microbenchmarks (google-benchmark).
//
// Read/write latency of each SWMR substrate the two-writer construction can
// run on -- the packed atomic word, the seqlock (8-byte and 64-byte
// payloads), Simpson's four-slot -- plus the simulated operations of the
// two-writer register itself over the packed substrate, and the baselines.
#include <benchmark/benchmark.h>

#include "baselines/mutex_register.hpp"
#include "baselines/native_atomic.hpp"
#include "core/two_writer.hpp"
#include "registers/fourslot.hpp"
#include "registers/packed_atomic.hpp"
#include "registers/seqlock.hpp"

namespace {

using namespace bloom87;

struct big64 {
    std::int64_t lanes[8]{};
};

template <typename Reg, typename V>
void substrate_read(benchmark::State& state) {
    Reg reg(tagged<V>{V{}, false});
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.read());
    }
}

template <typename Reg, typename V>
void substrate_write(benchmark::State& state) {
    Reg reg(tagged<V>{V{}, false});
    V v{};
    bool t = false;
    for (auto _ : state) {
        reg.write(tagged<V>{v, t});
        t = !t;
        benchmark::DoNotOptimize(reg);
    }
}

void two_writer_write(benchmark::State& state) {
    two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>> reg(0);
    std::int32_t v = 0;
    for (auto _ : state) {
        reg.writer0().write(v++);
    }
}

void two_writer_read(benchmark::State& state) {
    two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>> reg(7);
    auto rd = reg.make_reader(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rd.read());
    }
}

void two_writer_read_cached(benchmark::State& state) {
    two_writer_register<std::int32_t, packed_atomic_register<std::int32_t>> reg(7);
    reg.writer0().write(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.writer0().read_cached());
    }
}

void mutex_read(benchmark::State& state) {
    mutex_register<std::int32_t> reg(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.read(1));
    }
}

void mutex_write(benchmark::State& state) {
    mutex_register<std::int32_t> reg(7);
    std::int32_t v = 0;
    for (auto _ : state) {
        reg.write(v++, 0);
    }
}

void native_read(benchmark::State& state) {
    native_atomic_register<std::int32_t> reg(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reg.read(1));
    }
}

void native_write(benchmark::State& state) {
    native_atomic_register<std::int32_t> reg(7);
    std::int32_t v = 0;
    for (auto _ : state) {
        reg.write(v++, 0);
    }
}

}  // namespace

BENCHMARK(substrate_read<bloom87::packed_atomic_register<std::int32_t>, std::int32_t>)
    ->Name("substrate_read/packed_atomic");
BENCHMARK(substrate_write<bloom87::packed_atomic_register<std::int32_t>, std::int32_t>)
    ->Name("substrate_write/packed_atomic");
BENCHMARK(substrate_read<bloom87::seqlock_register<std::int64_t>, std::int64_t>)
    ->Name("substrate_read/seqlock_8B");
BENCHMARK(substrate_write<bloom87::seqlock_register<std::int64_t>, std::int64_t>)
    ->Name("substrate_write/seqlock_8B");
BENCHMARK(substrate_read<bloom87::seqlock_register<big64>, big64>)
    ->Name("substrate_read/seqlock_64B");
BENCHMARK(substrate_write<bloom87::seqlock_register<big64>, big64>)
    ->Name("substrate_write/seqlock_64B");
BENCHMARK(substrate_read<bloom87::four_slot_register<std::int64_t>, std::int64_t>)
    ->Name("substrate_read/four_slot_8B");
BENCHMARK(substrate_write<bloom87::four_slot_register<std::int64_t>, std::int64_t>)
    ->Name("substrate_write/four_slot_8B");
BENCHMARK(two_writer_write)->Name("simulated/two_writer_write");
BENCHMARK(two_writer_read)->Name("simulated/two_writer_read");
BENCHMARK(two_writer_read_cached)->Name("simulated/two_writer_read_cached");
BENCHMARK(native_read)->Name("baseline/native_atomic_read");
BENCHMARK(native_write)->Name("baseline/native_atomic_write");
BENCHMARK(mutex_read)->Name("baseline/mutex_read");
BENCHMARK(mutex_write)->Name("baseline/mutex_write");

BENCHMARK_MAIN();
