#include "modelcheck/sim.hpp"

#include <algorithm>
#include <bit>

namespace bloom87::mc {
namespace {

std::uint64_t full_mask(mc_value domain) {
    return domain >= 64 ? ~0ULL : ((1ULL << domain) - 1);
}

}  // namespace

sim_state::sim_state(const sim_state& other)
    : clock_(other.clock_),
      detector_(other.detector_),
      acting_(other.acting_) {
    // Capacity-preserving clone: the explorer copies states at every branch
    // point and then keeps appending to `hist` -- inheriting the parent's
    // grown capacity spares the child the same reallocation ladder.
    registers = other.registers;
    hist.reserve(other.hist.capacity());
    hist = other.hist;
    procs.reserve(other.procs.size());
    for (const auto& p : other.procs) procs.push_back(p->clone());
}

void sim_state::enable_race_detection() {
    detector_.emplace(procs.size(), registers.size());
}

mc_value sim_state::read_atomic(std::size_t reg) {
    mc_register& r = registers[reg];
    assert(r.level == reg_level::atomic);
    if (detector_.has_value()) {
        detector_->on_access(static_cast<std::size_t>(acting_), reg, false,
                             r.sync);
    }
    return r.committed;
}

void sim_state::write_atomic(std::size_t reg, mc_value v) {
    mc_register& r = registers[reg];
    assert(r.level == reg_level::atomic);
    assert(v >= 0 && v < r.domain);
    if (detector_.has_value()) {
        detector_->on_access(static_cast<std::size_t>(acting_), reg, true,
                             r.sync);
    }
    if (r.track_previous) r.previous = r.committed;
    r.committed = v;
}

void sim_state::begin_read(std::size_t reg, std::int16_t proc) {
    mc_register& r = registers[reg];
    assert(r.level != reg_level::atomic);
    // The access joins/checks happens-before at its BEGIN step: reads
    // record here and writes check recorded reads at begin_write, so any
    // overlap between a split read and a split write is caught from
    // whichever side starts second.
    if (detector_.has_value()) {
        detector_->on_access(static_cast<std::size_t>(proc), reg, false,
                             r.sync);
    }
    std::uint64_t candidates = 1ULL << r.committed;
    if (r.active_write >= 0) {
        candidates = r.level == reg_level::safe ? full_mask(r.domain)
                                                : candidates | (1ULL << r.active_write);
    }
    r.active_reads.emplace_back(proc, candidates);
}

int sim_state::read_candidates(std::size_t reg, std::int16_t proc) const {
    const mc_register& r = registers[reg];
    for (const auto& [p, mask] : r.active_reads) {
        if (p == proc) return std::popcount(mask);
    }
    assert(false && "read_candidates without begin_read");
    return 0;
}

mc_value sim_state::end_read(std::size_t reg, std::int16_t proc, int choice) {
    mc_register& r = registers[reg];
    auto it = std::find_if(r.active_reads.begin(), r.active_reads.end(),
                           [&](const auto& pr) { return pr.first == proc; });
    assert(it != r.active_reads.end());
    std::uint64_t mask = it->second;
    r.active_reads.erase(it);
    // The choice-th set bit, ascending.
    for (int bit = 0; bit < 64; ++bit) {
        if ((mask >> bit) & 1ULL) {
            if (choice == 0) return static_cast<mc_value>(bit);
            --choice;
        }
    }
    assert(false && "end_read choice out of range");
    return 0;
}

void sim_state::begin_write(std::size_t reg, mc_value v) {
    mc_register& r = registers[reg];
    assert(r.level != reg_level::atomic);
    assert(r.active_write < 0 && "concurrent writers on a single-writer register");
    assert(v >= 0 && v < r.domain);
    if (detector_.has_value()) {
        detector_->on_access(static_cast<std::size_t>(acting_), reg, true,
                             r.sync);
    }
    r.active_write = v;
    // The new write overlaps every read in progress.
    for (auto& [p, mask] : r.active_reads) {
        mask = r.level == reg_level::safe ? full_mask(r.domain)
                                          : mask | (1ULL << v);
    }
}

void sim_state::end_write(std::size_t reg) {
    mc_register& r = registers[reg];
    assert(r.active_write >= 0);
    r.committed = r.active_write;
    r.active_write = -1;
}

std::size_t sim_state::begin_op(processor_id proc, op_index op, op_kind kind,
                                value_t v) {
    operation o;
    o.id = op_id{proc, op};
    o.kind = kind;
    o.value = v;
    o.invoked = clock_++;
    hist.push_back(o);
    return hist.size() - 1;
}

void sim_state::end_op(std::size_t hist_index, value_t read_result) {
    operation& o = hist[hist_index];
    if (o.kind == op_kind::read) o.value = read_result;
    o.responded = clock_++;
}

void sim_state::fingerprint(std::vector<std::uint64_t>& out) const {
    // Registers contribute <= 2 + active_reads words each, operations 4,
    // processes a handful; reserving up front makes the (per-state, hot)
    // fingerprint pass allocation-free once the caller reuses the vector.
    out.reserve(out.size() + 2 + registers.size() * 4 + hist.size() * 4 +
                procs.size() * 8);
    out.push_back(registers.size());
    for (const mc_register& r : registers) {
        out.push_back((static_cast<std::uint64_t>(r.committed) << 32) |
                      (static_cast<std::uint64_t>(static_cast<std::uint16_t>(
                           r.active_write))
                       << 8) |
                      static_cast<std::uint64_t>(r.level));
        // Only fault-model explorations pay for the extra word; fingerprints
        // (and so pinned state counts) of everything else are unchanged.
        if (r.track_previous) {
            out.push_back(0xFA417000ULL |
                          static_cast<std::uint64_t>(
                              static_cast<std::uint16_t>(r.previous)));
        }
        out.push_back(r.active_reads.size());
        for (const auto& [p, mask] : r.active_reads) {
            out.push_back((static_cast<std::uint64_t>(static_cast<std::uint16_t>(p))
                           << 48) ^
                          mask);
        }
    }
    out.push_back(hist.size());
    for (const operation& o : hist) {
        out.push_back((static_cast<std::uint64_t>(
                           static_cast<std::uint16_t>(o.id.processor))
                       << 40) |
                      (static_cast<std::uint64_t>(o.id.op) << 8) |
                      static_cast<std::uint64_t>(o.kind));
        out.push_back(static_cast<std::uint64_t>(o.value));
        out.push_back(o.invoked);
        out.push_back(o.responded);
    }
    for (const auto& p : procs) p->fingerprint(out);
    // Armed detectors join the fingerprint (clock vectors only): two states
    // with identical structure but different happens-before knowledge must
    // not be merged, or a race reachable from one could be pruned via the
    // other. Race-free explorations pay nothing.
    if (detector_.has_value()) detector_->fingerprint(out);
}

}  // namespace bloom87::mc
