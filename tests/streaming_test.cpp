// The high-throughput front end: per-thread lock-free collection with the
// deterministic seq merge, and the bounded-memory streaming checker.
//
// Pins the two properties the collection rework promises -- seeded runs
// merge byte-identically, and the streaming verdict matches the post-hoc
// checker on the same history (including known-violating faulty runs) --
// plus the streaming checker's bounded-memory and mid-stream-detection
// behavior, and its quiescent-cut/candidate-set corner cases fed as
// hand-built event sequences.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/checkers.hpp"
#include "harness/driver.hpp"
#include "histories/serialize.hpp"
#include "histories/thread_log.hpp"
#include "linearizability/streaming.hpp"

namespace bloom87 {
namespace {

using namespace bloom87::harness;

// ------------------------------------------------ hand-built event helpers --

[[nodiscard]] event inv_w(processor_id p, op_index op, value_t v) {
    event e;
    e.kind = event_kind::sim_invoke_write;
    e.processor = p;
    e.op = op;
    e.value = v;
    return e;
}
[[nodiscard]] event resp_w(processor_id p, op_index op) {
    event e;
    e.kind = event_kind::sim_respond_write;
    e.processor = p;
    e.op = op;
    return e;
}
[[nodiscard]] event inv_r(processor_id p, op_index op) {
    event e;
    e.kind = event_kind::sim_invoke_read;
    e.processor = p;
    e.op = op;
    return e;
}
[[nodiscard]] event resp_r(processor_id p, op_index op, value_t v) {
    event e;
    e.kind = event_kind::sim_respond_read;
    e.processor = p;
    e.op = op;
    e.value = v;
    return e;
}

void read_of(streaming_checker& chk, processor_id p, op_index op, value_t v) {
    chk.ingest(inv_r(p, op));
    chk.ingest(resp_r(p, op, v));
}

[[nodiscard]] streaming_config tiny_window() {
    streaming_config cfg;
    cfg.window = 2;
    cfg.stride = 1;
    return cfg;
}

// ----------------------------------------------------- seq-merge plumbing --

TEST(ThreadLog, SeqMergeOrdersByStamp) {
    event_ring a(8);
    event_ring b(8);
    seq_source seqs;
    // Interleave stamps across the two rings out of push order.
    a.push(seqs.draw(), inv_w(0, 0, 1));   // seq 0
    b.push(seqs.draw(), inv_w(1, 0, 2));   // seq 1
    b.push(seqs.draw(), resp_w(1, 0));     // seq 2
    a.push(seqs.draw(), resp_w(0, 0));     // seq 3
    a.finish();
    b.finish();
    event_ring* rings[] = {&a, &b};
    ring_merger merger(rings);
    stamped_event se;
    std::uint64_t expect = 0;
    while (merger.next(&se)) {
        EXPECT_EQ(se.seq, expect) << "merge emitted out of seq order";
        ++expect;
    }
    EXPECT_EQ(expect, 4u);
    EXPECT_EQ(seqs.issued(), 4u);
}

// Seeded schedule + per_thread collection: the merged history is a pure
// function of the spec -- byte for byte, across repeated runs, with
// pacing-induced overlap in the schedule.
TEST(PerThreadCollection, SeededMergeIsDeterministic) {
    for (std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
        run_spec spec;
        spec.register_name = "bloom/packed";
        spec.load.writers = 2;
        spec.load.readers = 3;
        spec.load.ops_per_writer = 200;
        spec.load.ops_per_reader = 200;
        spec.seed = seed;
        spec.collect = collect_mode::per_thread;
        spec.schedule = schedule_mode::seeded;
        spec.pace.writer_pace_num = 1;
        spec.pace.writer_pace_den = 4;
        spec.pace.reader_pace_num = 1;
        spec.pace.reader_pace_den = 8;

        const run_result a = run(spec);
        const run_result b = run(spec);
        ASSERT_TRUE(a.ok) << a.error;
        ASSERT_TRUE(b.ok) << b.error;
        ASSERT_FALSE(a.events.empty());
        std::ostringstream ga;
        std::ostringstream gb;
        write_gamma(ga, a.events, 0);
        write_gamma(gb, b.events, 0);
        EXPECT_EQ(ga.str(), gb.str()) << "seed " << seed;

        const pipeline_result checks =
            run_checkers(a.events, spec.initial, {checker_kind::fast});
        ASSERT_TRUE(checks.parsed) << checks.parse_error;
        EXPECT_TRUE(checks.verdicts[0].pass) << checks.verdicts[0].diagnosis;
    }
}

// Real concurrency through the rings: the seq merge of a threads-mode run
// still parses and checks atomic (the fetch_add order is a legal
// serialization of the recording instants).
TEST(PerThreadCollection, ThreadsModeMergeChecksAtomic) {
    run_spec spec;
    spec.register_name = "bloom/packed";
    spec.load.writers = 2;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 400;
    spec.load.ops_per_reader = 400;
    spec.seed = 9;
    spec.collect = collect_mode::per_thread;
    spec.schedule = schedule_mode::threads;
    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.events.size(),
              2 * (res.total_reads + res.total_writes));
    const pipeline_result checks =
        run_checkers(res.events, spec.initial, {checker_kind::fast});
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    EXPECT_TRUE(checks.verdicts[0].pass) << checks.verdicts[0].diagnosis;
}

// ------------------------------------------- streaming vs post-hoc verdict --

// On clean registers the streaming checker must agree with the post-hoc
// fast checker: no violation, and everything eventually retires.
TEST(StreamingChecker, MatchesBatchOnCleanRuns) {
    for (const std::string reg :
         {"bloom/packed", "bloom/seqlock", "bloom/fourslot"}) {
        for (std::uint64_t seed : {2ULL, 5ULL}) {
            run_spec spec;
            spec.register_name = reg;
            spec.load.writers = 2;
            spec.load.readers = 2;
            spec.load.ops_per_writer = 150;
            spec.load.ops_per_reader = 150;
            spec.seed = seed;
            spec.collect = collect_mode::per_thread;
            spec.schedule = schedule_mode::seeded;
            spec.pace.writer_pace_num = 1;
            spec.pace.writer_pace_den = 4;
            spec.streaming_monitor = true;
            spec.stream_window = 64;
            spec.stream_stride = 16;
            const run_result res = run(spec);
            ASSERT_TRUE(res.ok) << reg << ": " << res.error;
            ASSERT_TRUE(res.stream.ran);
            EXPECT_FALSE(res.stream.violation)
                << reg << " seed " << seed << ": " << res.stream.diagnosis;
            EXPECT_GT(res.stream.ops_retired, 0u);

            const pipeline_result checks =
                run_checkers(res.events, spec.initial, {checker_kind::fast});
            ASSERT_TRUE(checks.parsed) << checks.parse_error;
            EXPECT_EQ(checks.verdicts[0].pass, !res.stream.violation)
                << reg << " seed " << seed
                << ": streaming and batch verdicts disagree";
        }
    }
}

[[nodiscard]] run_spec faulty_stream_spec(fault_class cls,
                                          std::uint64_t seed) {
    run_spec spec;
    spec.register_name = "faulty/seqlock";
    spec.load.writers = 2;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 160;
    spec.load.ops_per_reader = 160;
    spec.seed = seed;
    spec.collect = collect_mode::gamma;  // faulty/ records real accesses
    spec.schedule = schedule_mode::seeded;
    spec.fault.cls = cls;
    spec.fault.rate_num = 1;
    spec.fault.rate_den = 32;
    spec.fault.seed = seed;
    spec.streaming_monitor = true;
    spec.stream_window = 64;
    spec.stream_stride = 16;
    return spec;
}

// Known-violating faulty runs: the streaming checker must flag what the
// post-hoc pipeline flags, mid-stream, with a finite op latency between
// injection and detection.
TEST(StreamingChecker, CatchesInjectedFaultsMidStream) {
    for (fault_class cls :
         {fault_class::stale_read, fault_class::lost_write,
          fault_class::torn_value}) {
        const run_spec spec = faulty_stream_spec(cls, 3);
        const run_result res = run(spec);
        ASSERT_TRUE(res.ok) << fault_class_name(cls) << ": " << res.error;
        EXPECT_GT(res.faults_injected.total(), 0u) << fault_class_name(cls);
        ASSERT_TRUE(res.stream.ran);
        EXPECT_TRUE(res.stream.violation)
            << fault_class_name(cls) << ": corruption went unnoticed";
        ASSERT_NE(res.faults_injected.first_injection, no_event);
        EXPECT_GT(res.stream.detection_pos,
                  res.faults_injected.first_injection);
        EXPECT_LT(res.stream.latency_ops,
                  res.total_reads + res.total_writes);

        const pipeline_result checks =
            run_checkers(res.events, spec.initial, {checker_kind::fast});
        ASSERT_TRUE(checks.parsed) << checks.parse_error;
        EXPECT_FALSE(checks.verdicts[0].pass)
            << fault_class_name(cls)
            << ": batch checker disagrees with the streaming verdict";
    }
}

// Bounded memory: a run far larger than the window retains only O(window)
// operations at any instant while retiring nearly everything.
TEST(StreamingChecker, WindowBoundsRetainedOperations) {
    run_spec spec;
    spec.register_name = "bloom/packed";
    spec.load.writers = 2;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 2000;
    spec.load.ops_per_reader = 2000;
    spec.seed = 4;
    spec.collect = collect_mode::per_thread;
    spec.schedule = schedule_mode::seeded;
    spec.streaming_monitor = true;
    spec.stream_window = 256;
    spec.stream_stride = 64;
    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_TRUE(res.stream.ran);
    EXPECT_FALSE(res.stream.violation) << res.stream.diagnosis;
    EXPECT_EQ(res.stream.ops_completed, res.total_reads + res.total_writes);
    // The peak live window must track the configured window, not the run:
    // 8000 ops pass through while at most ~window + stride stay retained.
    EXPECT_LT(res.stream.retained_peak,
              2 * (spec.stream_window + spec.stream_stride));
    EXPECT_GT(res.stream.ops_retired, res.stream.ops_completed / 2);
}

// ----------------------------------- quiescent cut + candidate set corners --

// Two writes that overlap can linearize in either order, so after they
// retire BOTH values are legitimate current values -- until a read decides.
TEST(StreamingChecker, ConcurrentWritesLeaveBothCandidates) {
    for (const value_t chosen : {101LL, 202LL}) {
        streaming_checker chk(7, tiny_window());
        chk.ingest(inv_w(0, 0, 101));
        chk.ingest(inv_w(1, 0, 202));
        chk.ingest(resp_w(0, 0));
        chk.ingest(resp_w(1, 0));
        for (op_index i = 0; i < 4; ++i) read_of(chk, 2, i, chosen);
        EXPECT_FALSE(chk.finish())
            << "reading " << chosen << ": " << chk.diagnosis();
        EXPECT_GT(chk.stats().ops_retired, 0u)
            << "corner never exercised retirement";
    }
}

// ...but once a read commits to one order, the other value is dead: a
// later read of it is a stale read of an overwritten value, and it must be
// caught AFTER the writes have already retired (the candidate set, not the
// retained window, carries the knowledge).
TEST(StreamingChecker, ReadCommitsTheWriteOrderAcrossRetirement) {
    streaming_checker chk(7, tiny_window());
    chk.ingest(inv_w(0, 0, 101));
    chk.ingest(inv_w(1, 0, 202));
    chk.ingest(resp_w(0, 0));
    chk.ingest(resp_w(1, 0));
    for (op_index i = 0; i < 3; ++i) read_of(chk, 2, i, 101);
    EXPECT_FALSE(chk.violation_found());
    EXPECT_GT(chk.stats().ops_retired, 0u);
    read_of(chk, 2, 3, 202);  // 202 was overwritten before the first read
    EXPECT_TRUE(chk.finish()) << "stale read of a retired value survived";
}

// Sequential (non-overlapping) writes leave exactly one candidate; reading
// the overwritten value across the retirement boundary is a violation.
TEST(StreamingChecker, SequentialWritesLeaveOneCandidate) {
    streaming_checker chk(7, tiny_window());
    chk.ingest(inv_w(0, 0, 101));
    chk.ingest(resp_w(0, 0));
    chk.ingest(inv_w(0, 1, 202));
    chk.ingest(resp_w(0, 1));
    for (op_index i = 0; i < 3; ++i) read_of(chk, 2, i, 202);
    EXPECT_FALSE(chk.violation_found());
    EXPECT_GT(chk.stats().ops_retired, 0u);
    read_of(chk, 2, 3, 101);
    EXPECT_TRUE(chk.finish()) << "read of the overwritten value survived";
}

// A write whose port crashed (invocation, never a response) is declared
// crashed after pending_grace events and carried -- undecided -- until a
// read materializes it. Reading the pre-crash value afterwards violates.
TEST(StreamingChecker, PendingWriteDecidedByLaterRead) {
    streaming_config cfg = tiny_window();
    cfg.pending_grace = 4;
    {
        // The crashed write lands: a read observes it, so reads of the old
        // value afterwards are stale.
        streaming_checker chk(7, cfg);
        chk.ingest(inv_w(0, 0, 101));  // never responds
        read_of(chk, 2, 0, 7);
        read_of(chk, 2, 1, 7);
        EXPECT_EQ(chk.stats().pending_carried, 1u)
            << "open write was not declared crashed after the grace";
        read_of(chk, 2, 2, 101);  // the crashed write materializes here
        read_of(chk, 2, 3, 101);
        EXPECT_FALSE(chk.violation_found()) << chk.diagnosis();
        read_of(chk, 2, 4, 7);  // 7 was overwritten by the landed write
        EXPECT_TRUE(chk.finish());
    }
    {
        // The crashed write never lands: reads of the initial value stay
        // valid forever.
        streaming_checker chk(7, cfg);
        chk.ingest(inv_w(0, 0, 101));
        for (op_index i = 0; i < 6; ++i) read_of(chk, 2, i, 7);
        EXPECT_FALSE(chk.finish()) << chk.diagnosis();
    }
}

// A response arriving after its operation was declared crashed means the
// grace was configured shorter than a real stall: an explicit
// configuration violation, never a silent mis-judgment.
TEST(StreamingChecker, LateResponseAfterGraceIsFlagged) {
    streaming_config cfg = tiny_window();
    cfg.pending_grace = 4;
    streaming_checker chk(7, cfg);
    chk.ingest(inv_w(0, 0, 101));
    for (op_index i = 0; i < 3; ++i) read_of(chk, 2, i, 7);
    chk.ingest(resp_w(0, 0));  // outlived the grace
    EXPECT_TRUE(chk.violation_found());
    EXPECT_NE(chk.diagnosis().find("pending_grace"), std::string::npos)
        << chk.diagnosis();
}

// ------------------------------------------------------- spec validation --

TEST(StreamingSpecs, ValidationRules) {
    run_spec base;
    base.register_name = "bloom/packed";
    base.load.writers = 2;
    base.load.readers = 2;

    {
        // Timed + per_thread is allowed ONLY under the streaming checker.
        run_spec s = base;
        s.duration_ms = 10;
        s.collect = collect_mode::per_thread;
        EXPECT_FALSE(run(s).ok);
        s.streaming_monitor = true;
        const run_result res = run(s);
        EXPECT_TRUE(res.ok) << res.error;
        EXPECT_TRUE(res.stream.ran);
        EXPECT_TRUE(res.events.empty())
            << "timed streaming runs must discard, not retain";
    }
    {
        // The streaming checker needs a collector.
        run_spec s = base;
        s.collect = collect_mode::none;
        s.streaming_monitor = true;
        EXPECT_FALSE(run(s).ok);
    }
    {
        // The two monitors are mutually exclusive.
        run_spec s = base;
        s.collect = collect_mode::gamma;
        s.online_monitor = true;
        s.streaming_monitor = true;
        EXPECT_FALSE(run(s).ok);
    }
    {
        // Clients need a timed threads run, and at least one per worker.
        run_spec s = base;
        s.clients = 8;
        EXPECT_FALSE(run(s).ok);
        s.duration_ms = 10;
        s.collect = collect_mode::none;
        s.clients = 2;  // fewer clients than the 4 workers
        EXPECT_FALSE(run(s).ok);
    }
}

// A timed paced-client run produces the v4 latency block: every op is
// measured from its due time, merged across workers.
TEST(StreamingSpecs, PacedClientsProduceLatency) {
    run_spec spec;
    spec.register_name = "bloom/packed";
    spec.load.writers = 2;
    spec.load.readers = 1;
    spec.duration_ms = 60;
    spec.collect = collect_mode::none;
    spec.clients = 8;
    spec.client_pace_ns = 500000;  // 2k req/s per client: far from saturation
    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_GT(res.latency.samples, 0u);
    EXPECT_GT(res.latency.p50_us, 0.0);
    EXPECT_GE(res.latency.p99_us, res.latency.p50_us);
    EXPECT_GE(res.latency.p999_us, res.latency.p99_us);
    EXPECT_GE(res.latency.max_us, res.latency.p999_us);
    EXPECT_GT(res.total_reads + res.total_writes, 0u);
}

}  // namespace
}  // namespace bloom87
