#include "analysis/mo_lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>

namespace bloom87::analysis {
namespace {

constexpr std::array<std::string_view, 7> member_ops = {
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "compare_exchange_weak",
    "compare_exchange_strong",
};

[[nodiscard]] bool ident_char(char c) noexcept {
    return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

/// Strength rank of a memory order; used only to phrase WEAKENED findings.
[[nodiscard]] int order_rank(std::string_view order) noexcept {
    if (order == "relaxed") return 0;
    if (order == "consume") return 1;
    if (order == "acquire" || order == "release") return 2;
    if (order == "acq_rel") return 3;
    return 4;  // seq_cst
}

/// Splits a comma-separated order list ("acquire,relaxed").
[[nodiscard]] std::vector<std::string_view> split_orders(
    std::string_view orders) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (start <= orders.size()) {
        const std::size_t comma = orders.find(',', start);
        const std::string_view item = orders.substr(
            start,
            comma == std::string_view::npos ? std::string_view::npos
                                            : comma - start);
        if (!item.empty()) out.push_back(item);
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    return out;
}

/// 1-based line number of offset `pos` in `content`.
[[nodiscard]] std::size_t line_of(std::string_view content, std::size_t pos) {
    return 1 + static_cast<std::size_t>(
                   std::count(content.begin(),
                              content.begin() + static_cast<std::ptrdiff_t>(pos),
                              '\n'));
}

/// True when `pos` sits inside a // comment on its line.
[[nodiscard]] bool in_line_comment(std::string_view content, std::size_t pos) {
    const std::size_t bol = content.rfind('\n', pos);
    const std::size_t start = bol == std::string_view::npos ? 0 : bol + 1;
    const std::size_t slash = content.find("//", start);
    return slash != std::string_view::npos && slash < pos;
}

/// Receiver identifier ending just before `dot`, with one trailing
/// [subscript] stripped ("words_[i]." yields "words_"). Empty when the
/// receiver is not a simple identifier (e.g. "ports[i].second.").
[[nodiscard]] std::string_view receiver_before(std::string_view content,
                                               std::size_t dot) {
    std::size_t end = dot;
    if (end > 0 && content[end - 1] == ']') {
        // Skip one balanced subscript.
        int depth = 0;
        std::size_t i = end;
        while (i > 0) {
            --i;
            if (content[i] == ']') ++depth;
            if (content[i] == '[') {
                --depth;
                if (depth == 0) break;
            }
        }
        if (depth != 0) return {};
        end = i;
    }
    std::size_t begin = end;
    while (begin > 0 && ident_char(content[begin - 1])) --begin;
    return content.substr(begin, end - begin);
}

/// Offset one past the ')' matching the '(' at `open`; npos if unmatched.
[[nodiscard]] std::size_t matching_paren(std::string_view content,
                                         std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < content.size(); ++i) {
        if (content[i] == '(') ++depth;
        if (content[i] == ')') {
            --depth;
            if (depth == 0) return i + 1;
        }
    }
    return std::string_view::npos;
}

/// memory_order_* suffixes inside an argument span; empty = defaulted.
[[nodiscard]] std::vector<std::string_view> orders_in(std::string_view args) {
    std::vector<std::string_view> out;
    static constexpr std::string_view needle = "memory_order_";
    std::size_t pos = 0;
    while ((pos = args.find(needle, pos)) != std::string_view::npos) {
        std::size_t end = pos + needle.size();
        while (end < args.size() && ident_char(args[end])) ++end;
        out.push_back(args.substr(pos + needle.size(), end - pos - needle.size()));
        pos = end;
    }
    return out;
}

struct found_site {
    std::string_view object;
    std::string_view op;
    std::size_t line;
    std::vector<std::string_view> orders;  ///< empty = implicit seq_cst
};

[[nodiscard]] std::vector<found_site> scan(std::string_view content) {
    std::vector<found_site> sites;
    for (std::size_t pos = 0; pos < content.size(); ++pos) {
        // Fences first (no receiver).
        static constexpr std::string_view fence = "atomic_thread_fence(";
        if (content.compare(pos, fence.size(), fence) == 0) {
            if (in_line_comment(content, pos)) continue;
            const std::size_t open = pos + fence.size() - 1;
            const std::size_t close = matching_paren(content, open);
            if (close == std::string_view::npos) continue;
            found_site s;
            s.op = "fence";
            s.line = line_of(content, pos);
            s.orders = orders_in(content.substr(open, close - open));
            sites.push_back(std::move(s));
            pos = close - 1;
            continue;
        }
        if (content[pos] != '.') continue;
        for (const std::string_view op : member_ops) {
            if (content.compare(pos + 1, op.size(), op) != 0) continue;
            const std::size_t open = pos + 1 + op.size();
            if (open >= content.size() || content[open] != '(') continue;
            // Longest-match guard: ".load(" must not also match inside
            // ".fetch_add(" scans; ops are distinct prefixes except
            // compare_exchange_weak/strong, which differ after '('.
            if (in_line_comment(content, pos)) break;
            const std::string_view object = receiver_before(content, pos);
            if (object.empty()) break;  // not a simple receiver; skip
            const std::size_t close = matching_paren(content, open);
            if (close == std::string_view::npos) break;
            found_site s;
            s.object = object;
            s.op = op;
            s.line = line_of(content, pos);
            s.orders = orders_in(content.substr(open, close - open));
            sites.push_back(std::move(s));
            break;
        }
    }
    return sites;
}

void check_site(const found_site& site, const site_contract& contract,
                std::string_view file, std::vector<lint_finding>& out) {
    const std::vector<std::string_view> allowed =
        split_orders(contract.orders);
    int weakest_allowed = 4;
    for (const std::string_view a : allowed) {
        weakest_allowed = std::min(weakest_allowed, order_rank(a));
    }
    std::vector<std::string_view> orders = site.orders;
    const bool implicit = orders.empty();
    if (implicit) orders.push_back("seq_cst");
    for (const std::string_view order : orders) {
        if (std::find(allowed.begin(), allowed.end(), order) !=
            allowed.end()) {
            continue;
        }
        lint_finding f;
        f.file = std::string(file);
        f.line = site.line;
        f.object = std::string(site.object);
        f.op = std::string(site.op);
        f.order = std::string(order);
        f.message = std::string(site.object.empty() ? "fence" : site.object) +
                    (site.object.empty() ? "" : "." + f.op) + " uses " +
                    (implicit ? "implicit " : "") + "memory_order_" + f.order +
                    "; contract allows {" + std::string(contract.orders) + "}";
        if (order_rank(order) < weakest_allowed) {
            f.message += " -- WEAKENED order";
        }
        out.push_back(std::move(f));
    }
}

}  // namespace

std::vector<lint_finding> lint_source(std::string_view file,
                                      std::string_view content) {
    std::vector<lint_finding> out;
    const file_contract* fc = find_file_contract(file);
    if (fc == nullptr) {
        lint_finding f;
        f.file = std::string(file);
        f.message =
            "file is not in the contract table (src/analysis/contracts.cpp)";
        out.push_back(std::move(f));
        return out;
    }
    const std::vector<found_site> sites = scan(content);
    std::vector<std::size_t> matched(fc->sites.size(), 0);
    for (const found_site& site : sites) {
        const site_contract* row = nullptr;
        for (std::size_t i = 0; i < fc->sites.size(); ++i) {
            if (fc->sites[i].object == site.object &&
                fc->sites[i].op == site.op) {
                row = &fc->sites[i];
                ++matched[i];
                break;
            }
        }
        if (row == nullptr) {
            lint_finding f;
            f.file = std::string(file);
            f.line = site.line;
            f.object = std::string(site.object);
            f.op = std::string(site.op);
            f.message = "undeclared atomic call site " +
                        (site.object.empty() ? std::string("atomic_thread_fence")
                                             : f.object + "." + f.op) +
                        "() -- declare it in src/analysis/contracts.cpp";
            out.push_back(std::move(f));
            continue;
        }
        check_site(site, *row, file, out);
    }
    for (std::size_t i = 0; i < fc->sites.size(); ++i) {
        if (matched[i] != 0) continue;
        lint_finding f;
        f.file = std::string(file);
        f.object = std::string(fc->sites[i].object);
        f.op = std::string(fc->sites[i].op);
        f.message = "stale contract row " +
                    (f.object.empty() ? std::string("fence") : f.object) + "." +
                    f.op + ": no such call site in the file";
        out.push_back(std::move(f));
    }
    return out;
}

std::vector<lint_finding> lint_directory(const std::string& src_root) {
    std::vector<lint_finding> out;
    for (const file_contract& fc : register_contracts()) {
        const std::string path =
            src_root + "/" + std::string(fc.dir) + "/" + std::string(fc.file);
        std::ifstream in(path);
        if (!in) {
            lint_finding f;
            f.file = std::string(fc.file);
            f.message = "cannot read " + path;
            out.push_back(std::move(f));
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string content = buf.str();
        std::vector<lint_finding> file_findings =
            lint_source(fc.file, content);
        out.insert(out.end(),
                   std::make_move_iterator(file_findings.begin()),
                   std::make_move_iterator(file_findings.end()));
    }
    return out;
}

std::string format_findings(const std::vector<lint_finding>& findings) {
    std::string out;
    for (const lint_finding& f : findings) {
        out += f.file;
        if (f.line != 0) {
            out += ":";
            out += std::to_string(f.line);
        }
        out += ": ";
        out += f.message;
        out += "\n";
    }
    return out;
}

}  // namespace bloom87::analysis
