// [TAB-G] The register-simulation ladder, priced.
//
// The paper's footnote 3 observes that its "real" 1-writer registers may
// themselves be simulated from weaker registers. This bench builds Bloom's
// two-writer register at three substrate depths -- all through the harness
// registry, so every rung pays the same virtual-dispatch constant -- and
// measures the cost of each:
//
//   depth 0: hardware word          ("bloom/packed")
//   depth 1: seqlock over words     ("bloom/seqlock", arbitrary-size values)
//   depth 2: SWMR simulated from SWSR four-slot registers
//            ("bloom/fourslot": Attiya-Welch-style multi-reader construction
//             over Simpson's algorithm -- nothing stronger than safe slots +
//             control bits)
//
// Also reports the SWSR-register budget of depth 2 as readers scale.
//
//   bench_fullstack [--json BENCH_fullstack.json]
#include <fstream>
#include <iostream>
#include <string>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "util/table.hpp"

using namespace bloom87;
namespace harness = bloom87::harness;

namespace {

bool measure_row(table& t, const std::string& label,
                 const std::string& reg_name, std::size_t readers,
                 std::uint64_t iters) {
    const harness::latency_result res =
        harness::measure_latency(reg_name, 2, readers, iters);
    if (!res.ok) {
        std::cerr << reg_name << ": " << res.error << "\n";
        return false;
    }
    t.row({label, fixed(res.write_ns, 1), fixed(res.read_ns, 1),
           res.cached_read_ns >= 0 ? fixed(res.cached_read_ns, 1) : "-"});
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    harness::common_flags flags;
    harness::flag_parser parser("bench_fullstack",
                                "the register-simulation ladder, priced");
    flags.add_to(parser);
    if (!parser.parse(argc, argv)) return 64;
    if (parser.help_requested()) return 0;
    if (flags.list) {
        harness::print_register_list(std::cout);
        return 0;
    }

    print_banner(std::cout, "TAB-G",
                 "Two-writer register over progressively weaker substrates");

    constexpr std::uint64_t iters = 400000;
    table t({"substrate (depth)", "write ns", "read ns",
             "cached writer-read ns"});
    bool ok = true;
    ok &= measure_row(t, "hw word via seqlock (depth 1)", "bloom/seqlock", 1,
                      iters);
    ok &= measure_row(t, "hw atomic word (depth 0)", "bloom/packed", 1, iters);
    for (std::size_t readers : {1u, 2u, 4u}) {
        ok &= measure_row(t,
                          "four-slot SWSR stack, n=" + std::to_string(readers) +
                              " (depth 2)",
                          "bloom/fourslot", readers, iters);
    }
    t.print(std::cout);

    std::cout << "\nSWSR-register budget of the depth-2 stack (per simulated "
              << "register, both real registers):\n\n";
    table b({"simulated readers n", "ports per real reg",
             "SWSR registers total"});
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
        ported_substrate<std::int64_t> probe(tagged<std::int64_t>{0, false}, n,
                                             0);
        b.row({std::to_string(n), std::to_string(n + 2),
               with_commas(2 * probe.swsr_register_count())});
    }
    b.print(std::cout);

    std::cout << "\nExpected shape: each simulation rung multiplies the cost\n"
              << "roughly by its fan-out (depth 2 read = n+1 SWSR reads + n\n"
              << "SWSR writes per real-register read, three real reads per\n"
              << "simulated read), while preserving wait-freedom.\n";

    if (!flags.json_path.empty()) {
        std::ofstream os(flags.json_path);
        if (!os) {
            std::cerr << "cannot write " << flags.json_path << "\n";
            return 66;
        }
        harness::report_writer rep(os, "fullstack");
        rep.add_table("ladder_latency", t);
        rep.add_table("swsr_budget", b);
        rep.finish();
        std::cout << "wrote " << flags.json_path << "\n";
    }
    return ok ? 0 : 1;
}
