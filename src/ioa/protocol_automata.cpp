#include "ioa/protocol_automata.hpp"

#include <array>
#include <cassert>

#include "core/protocol.hpp"

namespace bloom87::ioa {
namespace {

std::string reg_channel(const std::string& who, int reg) {
    return who + "->reg" + std::to_string(reg);
}

// ---------------------------------------------------------------------------
// Writer automaton.
// ---------------------------------------------------------------------------

class writer_automaton final : public automaton {
public:
    explicit writer_automaton(int index)
        : index_(index), ext_("ext:wr" + std::to_string(index)),
          read_chan_(reg_channel("wr" + std::to_string(index), 1 - index)),
          write_chan_(reg_channel("wr" + std::to_string(index), index)) {}

    [[nodiscard]] std::string name() const override {
        return "Wr" + std::to_string(index_);
    }

    [[nodiscard]] bool in_input(const action& a) const override {
        return (a.channel == ext_ && a.kind == act::write_request) ||
               (a.channel == read_chan_ && a.kind == act::read_ack) ||
               (a.channel == write_chan_ && a.kind == act::write_ack);
    }
    [[nodiscard]] bool in_output(const action& a) const override {
        return (a.channel == ext_ && a.kind == act::write_ack) ||
               (a.channel == read_chan_ && a.kind == act::read_request) ||
               (a.channel == write_chan_ && a.kind == act::write_request);
    }
    [[nodiscard]] bool in_internal(const action&) const override { return false; }

    [[nodiscard]] std::vector<action> enabled() const override {
        switch (pc_) {
            case phase::send_read:
                return {action{act::read_request, read_chan_, 0}};
            case phase::send_write:
                return {action{act::write_request, write_chan_, pending_}};
            case phase::send_ext_ack:
                return {action{act::write_ack, ext_, 0}};
            default:
                return {};
        }
    }

    void apply(const action& a) override {
        if (a.channel == ext_ && a.kind == act::write_request) {
            if (pc_ != phase::idle) return;  // improper input: ignore
            value_ = a.value;
            pc_ = phase::send_read;
        } else if (a.channel == read_chan_ && a.kind == act::read_request) {
            pc_ = phase::await_tag;
        } else if (a.channel == read_chan_ && a.kind == act::read_ack) {
            if (pc_ != phase::await_tag) return;
            const bool t = writer_tag_choice(index_, decode_tagged_bit(a.value));
            pending_ = encode_tagged_value(value_, t);
            pc_ = phase::send_write;
        } else if (a.channel == write_chan_ && a.kind == act::write_request) {
            pc_ = phase::await_write_ack;
        } else if (a.channel == write_chan_ && a.kind == act::write_ack) {
            if (pc_ != phase::await_write_ack) return;
            pc_ = phase::send_ext_ack;
        } else if (a.channel == ext_ && a.kind == act::write_ack) {
            pc_ = phase::idle;
        }
    }

private:
    enum class phase : std::uint8_t {
        idle, send_read, await_tag, send_write, await_write_ack, send_ext_ack
    };

    int index_;
    std::string ext_, read_chan_, write_chan_;
    phase pc_{phase::idle};
    value_t value_{0};    // value being written (raw)
    value_t pending_{0};  // encoded tagged pair for the real write
};

// ---------------------------------------------------------------------------
// Reader automaton.
// ---------------------------------------------------------------------------

class reader_automaton final : public automaton {
public:
    explicit reader_automaton(int number)
        : number_(number), ext_("ext:rd" + std::to_string(number)),
          chan_{reg_channel("rd" + std::to_string(number), 0),
                reg_channel("rd" + std::to_string(number), 1)} {}

    [[nodiscard]] std::string name() const override {
        return "Rd" + std::to_string(number_);
    }

    [[nodiscard]] bool in_input(const action& a) const override {
        return (a.channel == ext_ && a.kind == act::read_request) ||
               ((a.channel == chan_[0] || a.channel == chan_[1]) &&
                a.kind == act::read_ack);
    }
    [[nodiscard]] bool in_output(const action& a) const override {
        return (a.channel == ext_ && a.kind == act::read_ack) ||
               ((a.channel == chan_[0] || a.channel == chan_[1]) &&
                a.kind == act::read_request);
    }
    [[nodiscard]] bool in_internal(const action&) const override { return false; }

    [[nodiscard]] std::vector<action> enabled() const override {
        switch (pc_) {
            case phase::send_r0:
                return {action{act::read_request, chan_[0], 0}};
            case phase::send_r1:
                return {action{act::read_request, chan_[1], 0}};
            case phase::send_r2:
                return {action{act::read_request, chan_[pick_], 0}};
            case phase::send_ext_ack:
                return {action{act::read_ack, ext_, result_}};
            default:
                return {};
        }
    }

    void apply(const action& a) override {
        if (a.channel == ext_ && a.kind == act::read_request) {
            if (pc_ != phase::idle) return;  // improper input: ignore
            pc_ = phase::send_r0;
        } else if (a.kind == act::read_request) {
            // Our own outputs, advancing to the matching wait state.
            if (pc_ == phase::send_r0) pc_ = phase::await_r0;
            else if (pc_ == phase::send_r1) pc_ = phase::await_r1;
            else if (pc_ == phase::send_r2) pc_ = phase::await_r2;
        } else if (a.kind == act::read_ack && a.channel != ext_) {
            if (pc_ == phase::await_r0 && a.channel == chan_[0]) {
                t0_ = decode_tagged_bit(a.value);
                pc_ = phase::send_r1;
            } else if (pc_ == phase::await_r1 && a.channel == chan_[1]) {
                t1_ = decode_tagged_bit(a.value);
                pick_ = static_cast<std::size_t>(reader_pick(t0_, t1_));
                pc_ = phase::send_r2;
            } else if (pc_ == phase::await_r2 && a.channel == chan_[pick_]) {
                result_ = decode_tagged_value(a.value);
                pc_ = phase::send_ext_ack;
            }
        } else if (a.channel == ext_ && a.kind == act::read_ack) {
            pc_ = phase::idle;
        }
    }

private:
    enum class phase : std::uint8_t {
        idle, send_r0, await_r0, send_r1, await_r1, send_r2, await_r2,
        send_ext_ack
    };

    int number_;
    std::string ext_;
    std::array<std::string, 2> chan_;
    phase pc_{phase::idle};
    bool t0_{false}, t1_{false};
    std::size_t pick_{0};
    value_t result_{0};
};

// ---------------------------------------------------------------------------
// Environment automaton.
// ---------------------------------------------------------------------------

class environment_automaton final : public automaton {
public:
    explicit environment_automaton(std::vector<env_port> ports)
        : ports_(std::move(ports)), waiting_(ports_.size(), false),
          progress_(ports_.size(), 0) {}

    [[nodiscard]] std::string name() const override { return "Env"; }

    [[nodiscard]] bool in_input(const action& a) const override {
        return is_ack(a.kind) && port_index(a.channel) != npos;
    }
    [[nodiscard]] bool in_output(const action& a) const override {
        return is_request(a.kind) && port_index(a.channel) != npos;
    }
    [[nodiscard]] bool in_internal(const action&) const override { return false; }

    [[nodiscard]] std::vector<action> enabled() const override {
        std::vector<action> out;
        for (std::size_t i = 0; i < ports_.size(); ++i) {
            if (waiting_[i] || progress_[i] >= ports_[i].script.size()) continue;
            const env_op& op = ports_[i].script[progress_[i]];
            out.push_back(action{
                op.is_write ? act::write_request : act::read_request,
                ports_[i].channel, op.value});
        }
        return out;
    }

    void apply(const action& a) override {
        const std::size_t i = port_index(a.channel);
        if (i == npos) return;
        if (is_request(a.kind)) {
            waiting_[i] = true;
        } else if (is_ack(a.kind)) {
            waiting_[i] = false;
            ++progress_[i];
        }
    }

    [[nodiscard]] bool script_done() const {
        for (std::size_t i = 0; i < ports_.size(); ++i) {
            if (waiting_[i] || progress_[i] < ports_[i].script.size()) return false;
        }
        return true;
    }

private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    [[nodiscard]] std::size_t port_index(const std::string& chan) const {
        for (std::size_t i = 0; i < ports_.size(); ++i) {
            if (ports_[i].channel == chan) return i;
        }
        return npos;
    }

    std::vector<env_port> ports_;
    std::vector<bool> waiting_;
    std::vector<std::size_t> progress_;
};

}  // namespace

std::unique_ptr<automaton> make_writer_automaton(int writer_index) {
    return std::make_unique<writer_automaton>(writer_index);
}

std::unique_ptr<automaton> make_reader_automaton(int reader_number) {
    return std::make_unique<reader_automaton>(reader_number);
}

std::unique_ptr<automaton> make_environment(std::vector<env_port> ports) {
    return std::make_unique<environment_automaton>(std::move(ports));
}

simulated_register_system make_simulated_register(
    value_t initial, int num_readers, std::vector<env_port> env_ports) {
    simulated_register_system sys;

    // Real register channels (paper, Fig. 2): Reg_i is written by Wr_i and
    // read by the other writer and every reader.
    for (int i = 0; i < 2; ++i) {
        std::vector<std::string> read_channels;
        read_channels.push_back(
            reg_channel("wr" + std::to_string(1 - i), i));
        for (int j = 1; j <= num_readers; ++j) {
            read_channels.push_back(reg_channel("rd" + std::to_string(j), i));
        }
        auto reg = std::make_unique<register_automaton>(
            "Reg" + std::to_string(i), encode_tagged_value(initial, false),
            reg_channel("wr" + std::to_string(i), i), std::move(read_channels));
        if (i == 0) sys.reg0 = reg.get();
        else sys.reg1 = reg.get();
        sys.owned.push_back(std::move(reg));
    }
    sys.owned.push_back(make_writer_automaton(0));
    sys.owned.push_back(make_writer_automaton(1));
    for (int j = 1; j <= num_readers; ++j) {
        sys.owned.push_back(make_reader_automaton(j));
    }
    sys.owned.push_back(make_environment(std::move(env_ports)));

    std::vector<automaton*> parts;
    parts.reserve(sys.owned.size());
    for (auto& a : sys.owned) parts.push_back(a.get());
    sys.system = std::make_unique<composition>(std::move(parts));
    return sys;
}

}  // namespace bloom87::ioa
