#include "harness/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "histories/thread_log.hpp"
#include "linearizability/monitor.hpp"
#include "linearizability/streaming.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace bloom87::harness {
namespace {

using steady = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            steady::now().time_since_epoch())
            .count());
}

/// Executes one processor's script against its port, applying pacing, crash
/// injection, latency sampling, and (per_thread collection) lock-free ring
/// recording. Used verbatim by both the thread-per-processor and the seeded
/// single-thread schedules.
class script_runner {
public:
    script_runner(any_port& port, const std::vector<workload_op>& script,
                  processor_id proc, port_role role, const run_spec& spec,
                  std::uint64_t rng_seed, event_ring* ring, seq_source* seqs,
                  pause_fn pause)
        : port_(&port), script_(&script), proc_(proc), role_(role),
          spec_(&spec), gen_(rng_seed), ring_(ring), seqs_(seqs),
          pause_(std::move(pause)) {}

    [[nodiscard]] bool exhausted() const noexcept {
        return cursor_ >= script_->size();
    }

    /// Runs the next scripted op; false when the script is exhausted.
    /// A port killed by a port_crash fault abandons the rest of its script
    /// (every later operation on that port would be a no-op anyway).
    bool step() {
        if (exhausted()) return false;
        if (port_->crashed()) {
            cursor_ = script_->size();
            return false;
        }
        run_op((*script_)[cursor_++]);
        return true;
    }

    /// Runs the next scripted op on behalf of an open-loop client whose
    /// request became due at `due_ns`: the recorded latency spans due ->
    /// completion, so queueing delay at saturation is charged to the op
    /// (no coordinated omission). Every paced op is recorded, ignoring
    /// latency_sample_every. False when the script is exhausted.
    bool step_paced(std::uint64_t due_ns) {
        if (exhausted()) return false;
        if (port_->crashed()) {
            cursor_ = script_->size();
            return false;
        }
        const workload_op& op = (*script_)[cursor_++];
        ++op_counter_;
        if (ring_ != nullptr) ring_->reserve(2);
        if (op.kind == op_kind::write) {
            do_write(op.value);
        } else {
            do_read();
        }
        const std::uint64_t end = now_ns();
        hist_.record(end > due_ns ? end - due_ns : 0);
        return true;
    }

    /// Restarts the script (timed runs cycle it).
    void rewind() noexcept { cursor_ = 0; }

    void reset_counters() noexcept {
        reads_ = writes_ = crashes_ = 0;
        hist_.clear();
    }

    [[nodiscard]] processor_id processor() const noexcept { return proc_; }
    [[nodiscard]] port_role role() const noexcept { return role_; }
    [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
    [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
    [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
    [[nodiscard]] const latency_histogram& hist() const noexcept {
        return hist_;
    }

private:
    void run_op(const workload_op& op) {
        const bool sample =
            spec_->latency_sample_every != 0 &&
            op_counter_ % spec_->latency_sample_every == 0;
        ++op_counter_;
        // Backpressure lands HERE, between operations, never inside one
        // (see event_ring::reserve).
        if (ring_ != nullptr) ring_->reserve(2);
        const std::uint64_t t0 = sample ? now_ns() : 0;
        if (op.kind == op_kind::write) {
            do_write(op.value);
        } else {
            do_read();
        }
        if (sample) hist_.record(now_ns() - t0);
    }

    void do_write(value_t v) {
        // Timed runs cycle the script, which would repeat the scripted
        // write values -- and every checker requires globally unique
        // writes. Substitute a fresh unique value per write instead (the
        // scripted value only matters for scripted reproducibility).
        if (spec_->duration_ms > 0) {
            v = unique_value(proc_,
                             static_cast<std::uint32_t>(fresh_write_++));
        }
        record(op_kind::write, /*response=*/false, v);
        const pacing& pace = spec_->pace;
        bool crashed = false;
        if (pace.crash_num != 0 && gen_.chance(pace.crash_num, pace.crash_den)) {
            const auto cp = static_cast<crash_point>(next_crash_point_);
            next_crash_point_ = (next_crash_point_ + 1) % 3;
            if (port_->write_crashed(v, cp)) {
                crashed = true;
                ++crashes_;
            } else {
                port_->write(v);  // no crash machinery: plain write
            }
        } else if (pace.writer_pace_num != 0 &&
                   gen_.chance(pace.writer_pace_num, pace.writer_pace_den)) {
            port_->write_paced(v, pause_);
        } else {
            port_->write(v);
        }
        ++writes_;
        // A crashed write is never acknowledged: invocation without
        // response, which the history parser records as pending. The same
        // holds when a port_crash fault killed the port mid-write.
        if (!crashed && !port_->crashed()) {
            record(op_kind::write, /*response=*/true, 0);
        }
    }

    void do_read() {
        record(op_kind::read, /*response=*/false, 0);
        const pacing& pace = spec_->pace;
        value_t out;
        if (spec_->cached_writer_reads && role_ == port_role::writer &&
            port_->read_cached(out)) {
            // served from the writer's cache (Section 5)
        } else if (pace.reader_pace_num != 0 && role_ == port_role::reader &&
                   gen_.chance(pace.reader_pace_num, pace.reader_pace_den)) {
            out = port_->read_paced(pause_);
        } else {
            out = port_->read();
        }
        ++reads_;
        // A read on a port killed mid-operation stays pending.
        if (!port_->crashed()) record(op_kind::read, /*response=*/true, out);
    }

    /// Records one sim event into this thread's ring: a stamp drawn from
    /// the shared relaxed counter (the only cross-thread write on the
    /// path), then plain stores plus one release publish. The stamp is
    /// drawn inside the operation's invocation..response window, so the
    /// fetch_add order is a legal serialization and the seq merge
    /// reconstructs a valid external schedule.
    void record(op_kind kind, bool response, value_t v) {
        if (ring_ == nullptr) return;
        event e;
        e.processor = proc_;
        e.op = record_op_ - (response ? 1 : 0);
        if (!response) ++record_op_;
        e.value = v;
        if (kind == op_kind::write) {
            e.kind = response ? event_kind::sim_respond_write
                              : event_kind::sim_invoke_write;
        } else {
            e.kind = response ? event_kind::sim_respond_read
                              : event_kind::sim_invoke_read;
        }
        ring_->push(seqs_->draw(), e);
    }

    any_port* port_;
    const std::vector<workload_op>* script_;
    processor_id proc_;
    port_role role_;
    const run_spec* spec_;
    rng gen_;
    event_ring* ring_;
    seq_source* seqs_;
    pause_fn pause_;

    std::size_t cursor_{0};
    std::uint64_t op_counter_{0};
    std::uint64_t fresh_write_{0};
    op_index record_op_{0};
    unsigned next_crash_point_{0};
    std::uint64_t reads_{0};
    std::uint64_t writes_{0};
    std::uint64_t crashes_{0};
    latency_histogram hist_;
};

void fill_latency(thread_result& tr, const latency_histogram& h) {
    tr.samples = h.count();
    if (tr.samples == 0) return;
    tr.p50_us = h.quantile(0.50) / 1000.0;
    tr.p99_us = h.quantile(0.99) / 1000.0;
    tr.p999_us = h.quantile(0.999) / 1000.0;
    tr.max_us = static_cast<double>(h.max_ns()) / 1000.0;
}

void fill_latency(latency_stats& ls, const latency_histogram& h) {
    ls.samples = h.count();
    if (ls.samples == 0) return;
    ls.p50_us = h.quantile(0.50) / 1000.0;
    ls.p99_us = h.quantile(0.99) / 1000.0;
    ls.p999_us = h.quantile(0.999) / 1000.0;
    ls.max_us = static_cast<double>(h.max_ns()) / 1000.0;
}

[[nodiscard]] std::uint64_t per_proc_seed(std::uint64_t seed, std::size_t p) {
    std::uint64_t s = seed + 0x9e3779b97f4a7c15ULL * (p + 1);
    return splitmix64_next(s);
}

run_result fail(std::string why) {
    run_result r;
    r.error = std::move(why);
    return r;
}

}  // namespace

void trim_heap() {
#if defined(__GLIBC__)
    // One config's freed heap must not be billed to the next (the fix
    // bench_modelcheck shipped in PR 1, applied here for every harness run).
    malloc_trim(0);
#endif
}

run_result run(const run_spec& spec) {
    trim_heap();

    const registry_entry* entry = find_register(spec.register_name);
    if (entry == nullptr) {
        return fail("unknown register '" + spec.register_name + "'");
    }
    if (spec.load.writers < entry->info.min_writers ||
        spec.load.writers > entry->info.max_writers) {
        return fail(entry->info.name + " supports " +
                    std::to_string(entry->info.min_writers) + ".." +
                    std::to_string(entry->info.max_writers) +
                    " writers, got " + std::to_string(spec.load.writers));
    }
    if (entry->info.requires_log && spec.collect != collect_mode::gamma) {
        return fail(entry->info.name +
                    " records real accesses into a shared gamma log; run it "
                    "with collect=gamma");
    }
    const bool timed = spec.duration_ms > 0;
    if (timed && spec.collect != collect_mode::none &&
        !(spec.collect == collect_mode::per_thread &&
          spec.streaming_monitor)) {
        return fail("timed runs produce unbounded histories; collect on a "
                    "timed run only with per_thread + streaming_monitor "
                    "(events are checked and discarded, never retained)");
    }
    if (timed && spec.schedule == schedule_mode::seeded) {
        return fail("the seeded schedule is scripted-only (duration_ms=0)");
    }
    if (spec.fault.active() && entry->info.family != "faulty") {
        return fail(entry->info.name +
                    " has no fault plan; --fault needs a faulty/ register");
    }
    if (spec.online_monitor && spec.collect != collect_mode::gamma) {
        return fail("the online monitor polls the shared gamma log; run "
                    "with collect=gamma");
    }
    if (spec.streaming_monitor && spec.collect == collect_mode::none) {
        return fail("the streaming checker consumes recorded events; run "
                    "with collect=gamma or collect=per_thread");
    }
    if (spec.online_monitor && spec.streaming_monitor) {
        return fail("pick one monitor: online (post-hoc prefix polling) or "
                    "streaming (bounded-memory)");
    }
    if (spec.clients > 0 &&
        (!timed || spec.schedule != schedule_mode::threads)) {
        return fail("simulated open-loop clients need a timed threads-mode "
                    "run (duration_ms > 0)");
    }
    if (spec.clients > 0 &&
        spec.clients < spec.load.writers + spec.load.readers) {
        return fail("need at least one client per worker thread (an idle "
                    "worker's empty ring would stall the live merge)");
    }

    const workload wl = make_workload(spec.load, spec.seed);
    if (!wl.valid()) return fail("generated workload failed validation");

    // Recording substrate: <= 4 real accesses per op on top of the 2
    // invocation/response events; 12x leaves slack for cached-read paths.
    event_log log(spec.collect == collect_mode::gamma
                      ? wl.total_ops() * 12 + 4096
                      : 1);
    register_args args;
    args.initial = spec.initial;
    args.writers = spec.load.writers;
    args.readers = spec.load.readers;
    args.log = spec.collect == collect_mode::gamma ? &log : nullptr;
    args.fault = spec.fault;

    std::string make_error;
    std::unique_ptr<any_register> reg =
        make_register(spec.register_name, args, &make_error);
    if (reg == nullptr) return fail(std::move(make_error));

    const std::size_t n_procs = wl.scripts.size();
    std::vector<std::unique_ptr<any_port>> ports;
    ports.reserve(n_procs);
    for (std::size_t p = 0; p < n_procs; ++p) {
        const port_role role =
            p < wl.writers ? port_role::writer : port_role::reader;
        ports.push_back(
            reg->make_port(static_cast<processor_id>(p), role));
    }

    const bool per_thread = spec.collect == collect_mode::per_thread;
    // Scripted rings cover the whole script (<= 2 events per op), so push
    // never blocks and the ring is a flat slab. Timed streaming rings are
    // bounded; a full ring backpressures its producer (counted in stalls).
    // Timed streaming rings are kept SMALL on purpose: ring slack is
    // exactly how far the merged stream can run past one preempted
    // mid-operation producer, and every event streamed past an open op
    // stays retained in the checker (the quiescent cut cannot pass it).
    // Big rings -> huge retained windows -> superlinear checkpoint cost.
    seq_source seqs;
    std::vector<std::unique_ptr<event_ring>> rings;
    if (per_thread) {
        rings.reserve(n_procs);
        for (std::size_t p = 0; p < n_procs; ++p) {
            rings.push_back(std::make_unique<event_ring>(
                timed ? std::size_t{1} << 10
                      : wl.scripts[p].size() * 2 + 8));
        }
    }

    run_result result;
    result.info = entry->info;
    result.threads.resize(n_procs);
    std::vector<latency_histogram> hists(n_procs);

    // The online watcher polls growing prefixes of the gamma log while the
    // run appends to it. Reads-only, so even the seeded single-thread
    // schedule stays byte-for-byte deterministic underneath it.
    online_verifier verifier(log, spec.initial, spec.monitor_stride);
    std::atomic<bool> run_done{false};
    std::atomic<bool> caught_live{false};
    std::thread watcher;
    if (spec.online_monitor) {
        watcher = std::thread([&] {
            while (!run_done.load(std::memory_order_acquire)) {
                if (verifier.poll()) {
                    caught_live.store(true, std::memory_order_relaxed);
                    return;
                }
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        });
    }

    // The streaming checker rides alongside either collector. collect=gamma:
    // a tail thread chases the shared log one published event at a time.
    // collect=per_thread: the merge thread below feeds it the live seq-order
    // merge. Ingest is sticky on violation, so the tails just drain.
    streaming_config scfg;
    scfg.window = spec.stream_window;
    scfg.stride = spec.stream_stride;
    streaming_checker stream_chk(spec.initial, scfg);
    std::thread stream_tail;
    if (spec.streaming_monitor && spec.collect == collect_mode::gamma) {
        stream_tail = std::thread([&] {
            std::size_t checked = 0;
            while (!run_done.load(std::memory_order_acquire)) {
                const std::size_t avail = log.size();
                if (checked == avail) {
                    std::this_thread::yield();
                    continue;
                }
                while (checked < avail) stream_chk.ingest(log.read_at(checked++));
            }
            const std::size_t avail = log.size();
            while (checked < avail) stream_chk.ingest(log.read_at(checked++));
            stream_chk.finish();
        });
    }

    // per_thread collection. Timed runs need a LIVE consumer: rings are
    // bounded, so one merge thread runs the k-way seq merge concurrently,
    // feeding the streaming checker and discarding (backpressure throttles
    // the producers to the checker's pace). Scripted runs record at pure
    // ring-push speed instead -- the rings cover the whole script, so the
    // merge runs AFTER the workers finish, off the measured path. Merged
    // order is a pure function of seq stamps either way, so consumer
    // timing never changes the history.
    const bool retain_merge = per_thread && !timed;
    const auto drain_merge = [&] {
        std::vector<event_ring*> rp;
        rp.reserve(rings.size());
        for (const auto& r : rings) rp.push_back(r.get());
        ring_merger merger(rp);
        stamped_event se;
        while (merger.next(&se)) {
            if (retain_merge) result.events.push_back(se.e);
            if (spec.streaming_monitor) stream_chk.ingest(se.e);
        }
        if (spec.streaming_monitor) stream_chk.finish();
    };
    std::thread merge_thread;
    if (per_thread && timed) merge_thread = std::thread(drain_merge);

    if (spec.schedule == schedule_mode::seeded) {
        // Deterministic single-thread interleaving at op granularity. A
        // paced operation's pause runs a bounded burst of OTHER processors'
        // ops, so the recorded gamma contains real overlap -- reproducibly.
        // Seq stamps are drawn by this one thread in schedule order, so the
        // merged per_thread history is byte-identical across runs.
        std::vector<script_runner> runners;
        runners.reserve(n_procs);
        bool in_pause = false;
        std::size_t current = n_procs;  // runner currently mid-operation
        rng sched(per_proc_seed(spec.seed, n_procs + 1));
        auto pause_burst = [&]() {
            if (in_pause) return;  // no nested pacing
            in_pause = true;
            for (unsigned i = 0; i < spec.pace.pause_yields; ++i) {
                std::vector<std::size_t> live;
                for (std::size_t p = 0; p < runners.size(); ++p) {
                    // Never step the paused runner itself: re-entering a
                    // port mid-operation would interleave one processor's
                    // invocation/response pairs with themselves.
                    if (p != current && !runners[p].exhausted()) {
                        live.push_back(p);
                    }
                }
                if (live.empty()) break;
                runners[live[sched.below(live.size())]].step();
            }
            in_pause = false;
        };
        for (std::size_t p = 0; p < n_procs; ++p) {
            runners.emplace_back(
                *ports[p], wl.scripts[p], static_cast<processor_id>(p),
                p < wl.writers ? port_role::writer : port_role::reader, spec,
                per_proc_seed(spec.seed, p),
                per_thread ? rings[p].get() : nullptr,
                per_thread ? &seqs : nullptr, pause_burst);
        }
        const std::uint64_t t0 = now_ns();
        for (;;) {
            std::vector<std::size_t> live;
            for (std::size_t p = 0; p < runners.size(); ++p) {
                if (!runners[p].exhausted()) live.push_back(p);
            }
            if (live.empty()) break;
            current = live[sched.below(live.size())];
            runners[current].step();
            current = n_procs;
        }
        result.measured_s = static_cast<double>(now_ns() - t0) / 1e9;
        if (per_thread) {
            for (auto& r : rings) r->finish();
        }
        for (std::size_t p = 0; p < n_procs; ++p) {
            thread_result& tr = result.threads[p];
            tr.processor = static_cast<processor_id>(p);
            tr.role = runners[p].role();
            tr.reads = runners[p].reads();
            tr.writes = runners[p].writes();
            result.crashes_injected += runners[p].crashes();
            fill_latency(tr, runners[p].hist());
            hists[p].merge(runners[p].hist());
        }
    } else {
        // One OS thread per processor. phase: 0 = warmup, 1 = measured
        // epoch, 2 = stop. Scripted runs (duration_ms == 0) skip warmup and
        // run each script exactly once.
        start_gate gate;
        std::atomic<int> phase{timed && spec.warmup_ms > 0 ? 0 : 1};
        std::atomic<std::uint64_t> crash_total{0};
        std::vector<std::thread> pool;
        pool.reserve(n_procs);
        for (std::size_t p = 0; p < n_procs; ++p) {
            pool.emplace_back([&, p] {
                script_runner runner(
                    *ports[p], wl.scripts[p], static_cast<processor_id>(p),
                    p < wl.writers ? port_role::writer : port_role::reader,
                    spec, per_proc_seed(spec.seed, p),
                    per_thread ? rings[p].get() : nullptr,
                    per_thread ? &seqs : nullptr,
                    [yields = spec.pace.pause_yields] {
                        for (unsigned i = 0; i < yields; ++i) {
                            std::this_thread::yield();
                        }
                    });
                // Open-loop client multiplexing: this worker owns an even
                // share of spec.clients, each with its own due-time pacer.
                // The next op run is the earliest-due client's; latency is
                // measured from that due time (queueing included).
                auto paced_loop = [&](auto&& keep_going) {
                    const std::size_t total = spec.clients;
                    const std::size_t lo = p * total / n_procs;
                    const std::size_t hi = (p + 1) * total / n_procs;
                    const std::size_t nc = hi - lo;
                    if (nc == 0) return;  // more threads than clients
                    std::vector<std::uint64_t> due(nc);
                    const std::uint64_t start = now_ns();
                    for (std::size_t i = 0; i < nc; ++i) {
                        // Stagger arrivals across one pace interval so the
                        // clients don't fire in lockstep.
                        due[i] = start + i * spec.client_pace_ns / nc;
                    }
                    while (keep_going()) {
                        std::size_t best = 0;
                        for (std::size_t i = 1; i < nc; ++i) {
                            if (due[i] < due[best]) best = i;
                        }
                        const std::uint64_t t = now_ns();
                        if (due[best] > t) {
                            if (due[best] - t > 100000) {
                                std::this_thread::sleep_for(
                                    std::chrono::microseconds(20));
                            } else {
                                std::this_thread::yield();
                            }
                            continue;
                        }
                        if (!runner.step_paced(due[best])) {
                            runner.rewind();
                            continue;
                        }
                        due[best] += spec.client_pace_ns;
                    }
                };
                gate.wait();
                if (timed) {
                    if (spec.clients > 0) {
                        paced_loop([&] {
                            return phase.load(std::memory_order_acquire) == 0;
                        });
                        while (phase.load(std::memory_order_acquire) == 0) {
                            std::this_thread::yield();
                        }
                    } else {
                        while (phase.load(std::memory_order_acquire) == 0) {
                            if (!runner.step()) runner.rewind();
                        }
                    }
                    runner.reset_counters();
                }
                const std::uint64_t t0 = now_ns();
                if (timed) {
                    if (spec.clients > 0) {
                        paced_loop([&] {
                            return phase.load(std::memory_order_acquire) == 1;
                        });
                        while (phase.load(std::memory_order_acquire) == 1) {
                            std::this_thread::yield();
                        }
                    } else {
                        while (phase.load(std::memory_order_acquire) == 1) {
                            if (!runner.step()) runner.rewind();
                        }
                    }
                } else {
                    while (runner.step()) {}
                }
                const double secs = static_cast<double>(now_ns() - t0) / 1e9;
                if (per_thread) rings[p]->finish();
                thread_result& tr = result.threads[p];
                tr.processor = static_cast<processor_id>(p);
                tr.role = runner.role();
                tr.reads = runner.reads();
                tr.writes = runner.writes();
                tr.ops_per_sec =
                    secs > 0
                        ? static_cast<double>(tr.reads + tr.writes) / secs
                        : 0;
                fill_latency(tr, runner.hist());
                hists[p].merge(runner.hist());
                crash_total.fetch_add(runner.crashes(),
                                      std::memory_order_relaxed);
            });
        }
        const std::uint64_t t0 = now_ns();
        gate.open();
        if (timed) {
            if (spec.warmup_ms > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(spec.warmup_ms));
                phase.store(1, std::memory_order_release);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(spec.duration_ms));
            phase.store(2, std::memory_order_release);
        }
        for (std::thread& t : pool) t.join();
        result.measured_s =
            timed ? spec.duration_ms / 1000.0
                  : static_cast<double>(now_ns() - t0) / 1e9;
        result.crashes_injected = crash_total.load(std::memory_order_relaxed);
    }

    if (merge_thread.joinable()) merge_thread.join();
    if (per_thread && !timed) drain_merge();
    run_done.store(true, std::memory_order_release);
    if (watcher.joinable()) watcher.join();
    if (stream_tail.joinable()) stream_tail.join();

    for (const thread_result& tr : result.threads) {
        result.total_reads += tr.reads;
        result.total_writes += tr.writes;
    }
    {
        latency_histogram total;
        for (const latency_histogram& h : hists) total.merge(h);
        fill_latency(result.latency, total);
    }

    if (spec.collect == collect_mode::gamma) {
        result.events = log.snapshot();
        result.log_overflowed = log.overflowed();
    }

    result.faults_injected = reg->faults();
    if (spec.online_monitor) {
        verifier.finish();  // violations that landed after the last poll
        online_detection& od = result.online;
        od.ran = true;
        od.injection_pos = result.faults_injected.first_injection;
        if (verifier.violation_found()) {
            od.violation = true;
            od.caught_live = caught_live.load(std::memory_order_relaxed);
            // Shrink to the minimal violating prefix; deterministic under
            // the seeded schedule even though the live watcher's poll
            // timing is not.
            const std::optional<op_id> culprit = verifier.locate_culprit();
            od.detection_prefix = verifier.detection_prefix();
            od.diagnosis = verifier.diagnosis();
            if (culprit.has_value()) {
                od.culprit_known = true;
                od.culprit = *culprit;
            }
            if (od.injection_pos != no_event) {
                for (std::size_t i = od.injection_pos;
                     i < od.detection_prefix && i < result.events.size();
                     ++i) {
                    if (is_response(result.events[i].kind)) ++od.latency_ops;
                }
            }
        }
    }
    if (spec.streaming_monitor) {
        stream_outcome& so = result.stream;
        so.ran = true;
        const streaming_stats& ss = stream_chk.stats();
        so.events = ss.events;
        so.ops_completed = ss.ops_completed;
        so.ops_retired = ss.ops_retired;
        so.checkpoints = ss.checkpoints;
        so.retained_peak = ss.peak_retained_ops;
        for (const auto& r : rings) so.producer_stalls += r->stalls();
        if (stream_chk.violation_found()) {
            so.violation = true;
            so.detection_pos = stream_chk.detection_pos();
            so.diagnosis = stream_chk.diagnosis();
            const event_pos inj = result.faults_injected.first_injection;
            if (inj != no_event) {
                // detection_pos and result.events index the same stream
                // (the gamma log, or the retained seq merge), so completed
                // ops between injection and detection are countable.
                const std::size_t hi = std::min<std::size_t>(
                    so.detection_pos, result.events.size());
                for (std::size_t i = inj; i < hi; ++i) {
                    if (is_response(result.events[i].kind)) ++so.latency_ops;
                }
            }
        }
    }

    result.ok = true;
    return result;
}

latency_result measure_latency(const std::string& register_name,
                               std::size_t writers, std::size_t readers,
                               std::uint64_t iters) {
    trim_heap();
    latency_result res;
    if (readers == 0) {
        res.error = "measure_latency needs at least one reader";
        return res;
    }
    register_args args;
    args.writers = writers;
    args.readers = readers;
    std::string err;
    std::unique_ptr<any_register> reg =
        make_register(register_name, args, &err);
    if (reg == nullptr) {
        res.error = std::move(err);
        return res;
    }
    auto w = reg->make_port(0, port_role::writer);
    auto r = reg->make_port(static_cast<processor_id>(writers),
                            port_role::reader);

    value_t sink = 0;
    const auto bench = [&](auto&& body) {
        double best_ns = 0;
        for (int rep = 0; rep < 5; ++rep) {
            const std::uint64_t t0 = now_ns();
            for (std::uint64_t i = 0; i < iters; ++i) body(i);
            const double ns = static_cast<double>(now_ns() - t0) /
                              static_cast<double>(iters);
            if (rep == 0 || ns < best_ns) best_ns = ns;
        }
        return best_ns;
    };

    res.write_ns = bench([&](std::uint64_t i) {
        w->write(unique_value(0, static_cast<std::uint32_t>(i)));
    });
    res.read_ns = bench([&](std::uint64_t) { sink += r->read(); });
    value_t probe;
    if (w->read_cached(probe)) {
        res.cached_read_ns = bench([&](std::uint64_t) {
            value_t out = 0;
            (void)w->read_cached(out);
            sink += out;
        });
    }
    // Defeat dead-code elimination of the read loops.
    if (sink == 0x7f7f7f7f7f7f7f7fLL) res.read_ns += 0.0;
    res.ok = true;
    return res;
}

stall_result measure_stall(const stall_spec& spec) {
    trim_heap();
    stall_result res;
    register_args args;
    args.initial = 1;
    args.writers = spec.writers;
    args.readers = 2;  // the sampling reader + (reader stalls) the staller
    std::string err;
    std::unique_ptr<any_register> reg =
        make_register(spec.register_name, args, &err);
    if (reg == nullptr) {
        res.error = std::move(err);
        return res;
    }
    const auto first_reader = static_cast<processor_id>(spec.writers);
    auto sampler = reg->make_port(first_reader, port_role::reader);
    auto staller =
        spec.stalled_role == port_role::writer
            ? reg->make_port(0, port_role::writer)
            : reg->make_port(static_cast<processor_id>(spec.writers + 1),
                             port_role::reader);

    start_gate gate;
    stop_flag stop;
    std::atomic<bool> stall_supported{true};
    latency_histogram hist;

    std::thread stall_thread([&] {
        gate.wait();
        const bool supported = staller->stall([&] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(spec.stall_ms));
        });
        if (!supported) stall_supported.store(false);
    });
    std::thread read_thread([&] {
        gate.wait();
        value_t sink = 0;
        while (!stop.stop_requested()) {
            const std::uint64_t t0 = now_ns();
            sink += sampler->read();
            hist.record(now_ns() - t0);
        }
        if (sink == 0x7f7f7f7f7f7f7f7fLL) hist.record(0);
    });
    gate.open();
    std::this_thread::sleep_for(std::chrono::milliseconds(spec.run_ms));
    stop.request_stop();
    stall_thread.join();
    read_thread.join();

    if (!stall_supported.load()) {
        res.error = spec.register_name + " has nothing to stall for role";
        return res;
    }
    res.reads = hist.count();
    res.p50_us = hist.quantile(0.50) / 1000.0;
    res.p99_us = hist.quantile(0.99) / 1000.0;
    res.p999_us = hist.quantile(0.999) / 1000.0;
    res.max_us = static_cast<double>(hist.max_ns()) / 1000.0;
    res.ok = true;
    return res;
}

}  // namespace bloom87::harness
