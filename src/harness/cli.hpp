// bloom87: the shared command-line parser for every bench/example binary.
//
// One flag grammar across the whole repository: `--flag value`,
// `--flag=value`, bare boolean flags, optional positionals, and a built-in
// `--help` that prints every registered flag with its default. The common
// harness flags (--register/--writers/--readers/--ops/--seed/--json/
// --check/--duration-ms/--threads) come pre-bundled as `common_flags`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/driver.hpp"

namespace bloom87::harness {

class flag_parser {
public:
    flag_parser(std::string program, std::string description)
        : program_(std::move(program)), description_(std::move(description)) {}

    /// Bare boolean flag: present -> *out = true.
    void add_flag(std::string name, std::string help, bool* out) {
        opts_.push_back({std::move(name), std::move(help), kind::flag, out});
    }
    void add_string(std::string name, std::string help, std::string* out) {
        opts_.push_back({std::move(name), std::move(help), kind::string, out});
    }
    void add_int(std::string name, std::string help, int* out) {
        opts_.push_back({std::move(name), std::move(help), kind::int32, out});
    }
    void add_unsigned(std::string name, std::string help, unsigned* out) {
        opts_.push_back({std::move(name), std::move(help), kind::uint32, out});
    }
    void add_size(std::string name, std::string help, std::size_t* out) {
        opts_.push_back({std::move(name), std::move(help), kind::size, out});
    }
    void add_uint64(std::string name, std::string help, std::uint64_t* out) {
        opts_.push_back({std::move(name), std::move(help), kind::uint64, out});
    }
    /// Optional positional argument (consumed in registration order).
    void add_positional(std::string name, std::string help,
                        std::uint64_t* out) {
        positionals_.push_back({std::move(name), std::move(help), out});
    }

    /// Parses argv. On error prints the problem + usage to stderr and
    /// returns false. `--help` prints usage to stdout, sets
    /// help_requested(), and returns true.
    [[nodiscard]] bool parse(int argc, char** argv);

    [[nodiscard]] bool help_requested() const noexcept { return help_; }

    void print_usage(std::ostream& os) const;

private:
    enum class kind : std::uint8_t { flag, string, int32, uint32, size, uint64 };

    struct option {
        std::string name;  ///< without the leading "--"
        std::string help;
        kind k;
        void* out;
    };
    struct positional {
        std::string name;
        std::string help;
        std::uint64_t* out;
    };

    [[nodiscard]] bool assign(const option& o, const std::string& text);

    std::string program_;
    std::string description_;
    std::vector<option> opts_;
    std::vector<positional> positionals_;
    bool help_{false};
};

/// The flags shared by every harness-driven binary, with the repo-standard
/// defaults. Call add_to() to register them (binaries may register extra
/// flags of their own), then to_spec() for a ready run_spec.
struct common_flags {
    std::string register_name{"bloom/packed"};
    std::string json_path;
    std::string check{"fast"};
    std::size_t writers{2};
    std::size_t readers{2};
    std::size_t ops{64};
    std::uint64_t seed{1};
    unsigned duration_ms{0};
    unsigned threads{0};  ///< explorer/worker thread count (0 = auto)
    bool list{false};     ///< print registered register names and exit

    /// Substrate fault injection (faulty/ registers): the class name, the
    /// trigger rate as "num/den" (or "den", meaning 1/den), the plan's
    /// private seed, and the optional exact access trigger (--fault-at).
    std::string fault{"none"};
    std::string fault_rate{"1/64"};
    std::uint64_t fault_seed{1};
    std::uint64_t fault_at{0};
    bool online{false};  ///< run the online verifier during the run

    /// Streaming checker (bounded-memory, may watch timed runs) and the
    /// open-loop client multiplexer.
    bool streaming{false};
    unsigned stream_window{4096};
    unsigned stream_stride{256};
    unsigned clients{0};
    std::uint64_t client_pace_ns{1000000};

    void add_to(flag_parser& p);

    /// A scripted, per-thread-collected run of the named register. Callers
    /// adjust collect/schedule/pacing as needed.
    [[nodiscard]] run_spec to_spec() const;
};

/// Prints the registry (name, writer range, one-line description); the
/// handler for --list.
void print_register_list(std::ostream& os);

}  // namespace bloom87::harness
