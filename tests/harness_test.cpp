// The run harness itself: registry round-trips, driver determinism, spec
// validation, collection modes, and the checker pipeline's skip rules.
// Everything a bench or example relies on when it trusts `run()` blindly.
#include <gtest/gtest.h>

#include <set>

#include "harness/checkers.hpp"
#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "histories/workload.hpp"

namespace bloom87 {
namespace {

using namespace bloom87::harness;

[[nodiscard]] run_spec smoke_spec(const registry_entry& e) {
    run_spec spec;
    spec.register_name = e.info.name;
    spec.load.writers = e.info.min_writers;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 150;
    spec.load.ops_per_reader = 150;
    spec.seed = 5;
    spec.collect =
        e.info.requires_log ? collect_mode::gamma : collect_mode::per_thread;
    return spec;
}

// Acceptance bar for the registry: every name constructs through the
// factory, survives a concurrent smoke run, and -- unless the registry
// itself marks it broken -- passes the fast checker on the recorded
// history.
TEST(HarnessRegistry, EveryNameConstructsRunsAndChecks) {
    ASSERT_FALSE(registry().empty());
    std::set<std::string> seen;
    for (const registry_entry& e : registry()) {
        EXPECT_TRUE(seen.insert(e.info.name).second)
            << "duplicate registry name " << e.info.name;
        const run_spec spec = smoke_spec(e);
        const run_result res = run(spec);
        ASSERT_TRUE(res.ok) << e.info.name << ": " << res.error;
        EXPECT_FALSE(res.log_overflowed) << e.info.name;
        EXPECT_EQ(res.threads.size(), spec.load.writers + spec.load.readers)
            << e.info.name;

        const pipeline_result checks =
            run_checkers(res.events, spec.initial, {checker_kind::fast});
        ASSERT_TRUE(checks.parsed) << e.info.name << ": " << checks.parse_error;
        ASSERT_TRUE(checks.verdicts[0].ran) << e.info.name;
        if (e.info.expected_atomic) {
            EXPECT_TRUE(checks.verdicts[0].pass)
                << e.info.name << ": " << checks.verdicts[0].diagnosis;
        }
        // The known-broken tournament may or may not get caught on one
        // particular schedule; no assertion either way.
    }
}

TEST(HarnessRegistry, FindRegisterRoundTripsAndRejectsUnknown) {
    for (const registry_entry& e : registry()) {
        const registry_entry* found = find_register(e.info.name);
        ASSERT_NE(found, nullptr) << e.info.name;
        EXPECT_EQ(found->info.name, e.info.name);
    }
    EXPECT_EQ(find_register("no/such-register"), nullptr);
}

TEST(HarnessDriver, SameSeedSameWorkload) {
    workload_config cfg;
    cfg.writers = 2;
    cfg.readers = 3;
    cfg.ops_per_writer = 500;
    cfg.ops_per_reader = 400;
    const workload a = make_workload(cfg, 99);
    const workload b = make_workload(cfg, 99);
    ASSERT_EQ(a.scripts.size(), b.scripts.size());
    EXPECT_EQ(a.writers, b.writers);
    for (std::size_t p = 0; p < a.scripts.size(); ++p) {
        ASSERT_EQ(a.scripts[p].size(), b.scripts[p].size()) << "proc " << p;
        for (std::size_t i = 0; i < a.scripts[p].size(); ++i) {
            EXPECT_EQ(a.scripts[p][i].kind, b.scripts[p][i].kind);
            EXPECT_EQ(a.scripts[p][i].value, b.scripts[p][i].value);
        }
    }
    const workload c = make_workload(cfg, 100);
    bool differs = false;
    for (std::size_t p = 0; p < a.scripts.size() && !differs; ++p) {
        for (std::size_t i = 0; i < a.scripts[p].size() && !differs; ++i) {
            differs = a.scripts[p][i].kind != c.scripts[p][i].kind ||
                      a.scripts[p][i].value != c.scripts[p][i].value;
        }
    }
    EXPECT_TRUE(differs) << "different seeds produced identical workloads";
}

// Under the seeded scheduler the ENTIRE execution is a function of the
// spec: running the same spec twice must record byte-identical histories.
TEST(HarnessDriver, SeededScheduleIsDeterministic) {
    run_spec spec;
    spec.register_name = "bloom/recording";
    spec.load.writers = 2;
    spec.load.readers = 2;
    spec.load.ops_per_writer = 300;
    spec.load.ops_per_reader = 300;
    spec.seed = 1234;
    spec.collect = collect_mode::gamma;
    spec.schedule = schedule_mode::seeded;
    spec.pace.writer_pace_num = 1;
    spec.pace.writer_pace_den = 8;

    const run_result a = run(spec);
    const run_result b = run(spec);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
        EXPECT_EQ(a.events[i].processor, b.events[i].processor) << "event " << i;
        EXPECT_EQ(a.events[i].op, b.events[i].op) << "event " << i;
        EXPECT_EQ(a.events[i].value, b.events[i].value) << "event " << i;
        EXPECT_EQ(a.events[i].reg, b.events[i].reg) << "event " << i;
    }
    const pipeline_result checks =
        run_checkers(a.events, 0, {checker_kind::bloom, checker_kind::fast});
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    for (const check_verdict& v : checks.verdicts) {
        ASSERT_TRUE(v.ran) << v.skip_reason;
        EXPECT_TRUE(v.pass) << checker_name(v.kind) << ": " << v.diagnosis;
    }
}

// The writer count is a first-class, VALIDATED workload field: specs
// outside a register's supported range fail up front with a range message
// instead of constructing a half-broken composition.
TEST(HarnessDriver, WriterCountOutsideRangeIsRejected) {
    for (const auto& [name, writers] :
         std::vector<std::pair<std::string, std::size_t>>{
             {"bloom/packed", 3},
             {"bloom/packed", 1},
             {"swmr/fourslot", 2},
             {"tournament/native", 2},
             {"va/seqlock", 17}}) {
        run_spec spec;
        spec.register_name = name;
        spec.load.writers = writers;
        const run_result res = run(spec);
        EXPECT_FALSE(res.ok) << name << " accepted " << writers << " writers";
        EXPECT_NE(res.error.find("writers"), std::string::npos) << res.error;
    }
}

TEST(HarnessDriver, InvalidSpecsFailFast) {
    {
        run_spec spec;
        spec.register_name = "no/such-register";
        EXPECT_FALSE(run(spec).ok);
    }
    {
        // The recording register cannot run without the shared gamma log.
        run_spec spec;
        spec.register_name = "bloom/recording";
        spec.collect = collect_mode::per_thread;
        EXPECT_FALSE(run(spec).ok);
    }
    {
        // Timed runs are throughput-only: unbounded histories don't fit the
        // event collectors.
        run_spec spec;
        spec.register_name = "bloom/packed";
        spec.duration_ms = 10;
        spec.collect = collect_mode::per_thread;
        EXPECT_FALSE(run(spec).ok);
    }
    {
        run_spec spec;
        spec.register_name = "bloom/packed";
        spec.duration_ms = 10;
        spec.collect = collect_mode::none;
        spec.schedule = schedule_mode::seeded;
        EXPECT_FALSE(run(spec).ok);
    }
}

TEST(HarnessWorkload, WritersFieldIsValidated) {
    workload wl;
    wl.scripts = {{{op_kind::write, 1}}, {{op_kind::read, 0}}};
    wl.writers = 1;
    EXPECT_TRUE(wl.valid());
    EXPECT_EQ(wl.readers(), 1u);

    // A write in a reader slot breaks the processor-id convention.
    wl.scripts[1].push_back({op_kind::write, 2});
    EXPECT_FALSE(wl.valid());
    wl.scripts[1].pop_back();

    wl.writers = 3;  // more writers than scripts
    EXPECT_FALSE(wl.valid());
}

TEST(HarnessCheckers, SkipRulesReportWhy) {
    // A per-thread history has no real accesses and two writing
    // processors: bloom and regular/safe must skip with a reason,
    // fast/monitor must run.
    run_spec spec;
    spec.register_name = "bloom/packed";
    spec.load.ops_per_writer = 100;
    spec.load.ops_per_reader = 100;
    spec.collect = collect_mode::per_thread;
    const run_result res = run(spec);
    ASSERT_TRUE(res.ok) << res.error;

    const pipeline_result checks = run_checkers(
        res.events, 0,
        {checker_kind::bloom, checker_kind::fast, checker_kind::exhaustive,
         checker_kind::monitor, checker_kind::regular, checker_kind::safe,
         checker_kind::race});
    ASSERT_TRUE(checks.parsed) << checks.parse_error;
    for (const check_verdict& v : checks.verdicts) {
        switch (v.kind) {
            case checker_kind::bloom:
            case checker_kind::exhaustive:  // 400 ops > the 62-op limit
            case checker_kind::regular:
            case checker_kind::safe:
            case checker_kind::race:  // no register name passed
                EXPECT_FALSE(v.ran) << checker_name(v.kind);
                EXPECT_FALSE(v.skip_reason.empty()) << checker_name(v.kind);
                break;
            case checker_kind::fast:
            case checker_kind::monitor:
                ASSERT_TRUE(v.ran) << v.skip_reason;
                EXPECT_TRUE(v.pass) << v.diagnosis;
                break;
        }
    }
}

TEST(HarnessCli, ParserHandlesFlagsEqualsAndPositionals) {
    common_flags flags;
    flag_parser parser("t", "test");
    flags.add_to(parser);
    std::uint64_t pos = 7;
    parser.add_positional("pos", "positional", &pos);
    const char* argv[] = {"t",      "--register", "va/seqlock", "--writers=4",
                          "--ops",  "32",         "19",         "--list"};
    ASSERT_TRUE(parser.parse(8, const_cast<char**>(argv)));
    EXPECT_EQ(flags.register_name, "va/seqlock");
    EXPECT_EQ(flags.writers, 4u);
    EXPECT_EQ(flags.ops, 32u);
    EXPECT_EQ(pos, 19u);
    EXPECT_TRUE(flags.list);

    const run_spec spec = flags.to_spec();
    EXPECT_EQ(spec.register_name, "va/seqlock");
    EXPECT_EQ(spec.load.writers, 4u);
    EXPECT_EQ(spec.load.ops_per_writer, 32u);
}

TEST(HarnessCli, ParserRejectsUnknownFlag) {
    common_flags flags;
    flag_parser parser("t", "test");
    flags.add_to(parser);
    const char* argv[] = {"t", "--no-such-flag"};
    EXPECT_FALSE(parser.parse(2, const_cast<char**>(argv)));
}

TEST(HarnessCli, CheckerListParses) {
    std::string err;
    const auto kinds = parse_checker_list("fast,bloom,monitor", &err);
    ASSERT_TRUE(kinds.has_value()) << err;
    EXPECT_EQ(kinds->size(), 3u);
    EXPECT_FALSE(parse_checker_list("fast,nope", &err).has_value());
    EXPECT_NE(err.find("nope"), std::string::npos);
    const auto none = parse_checker_list("none", &err);
    ASSERT_TRUE(none.has_value());
    EXPECT_TRUE(none->empty());
}

}  // namespace
}  // namespace bloom87
