// bloom87: native hardware MRMW atomic register baseline.
//
// Modern hardware provides multi-writer multi-reader atomic words directly
// (the paper predates this being taken for granted -- its footnote 1 even
// remarks that "few if any multiprocessors" have per-processor channels to
// shared registers). One seq_cst atomic word is a wait-free MRMW atomic
// register; it is the upper baseline every simulation is measured against.
#pragma once

#include <atomic>

#include "histories/event_log.hpp"
#include "histories/events.hpp"
#include "util/bits.hpp"
#include "util/sync.hpp"

namespace bloom87 {

/// MRMW atomic register over a word-packable T, via one std::atomic word.
template <word_packable T>
class native_atomic_register {
public:
    explicit native_atomic_register(T initial) noexcept
        : word_(pack_tagged(initial, false)) {}

    [[nodiscard]] T read(processor_id = 0) noexcept {
        return unpack_value<T>(word_.load(std::memory_order_seq_cst));
    }

    void write(T v, processor_id = 0) noexcept {
        word_.store(pack_tagged(v, false), std::memory_order_seq_cst);
    }

private:
    alignas(cacheline_size) std::atomic<std::uint64_t> word_;
};

}  // namespace bloom87
