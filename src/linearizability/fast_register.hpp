// bloom87: polynomial-time linearizability checker for register histories
// with unique write values.
//
// With unique writes, every read names its dictating write, and atomicity
// reduces to the acyclicity of a constraint graph over writes (Gibbons &
// Korach, "Testing Shared Memories": the read-mapping-known case is
// polynomial). Constraints, writing `<rt` for real-time precedence and W(r)
// for the write r read from (or the virtual initial write):
//
//   (a) w1 <rt w2                 =>  w1 before w2
//   (b) w' <rt r                  =>  w' before-or-equal W(r)
//   (c) r <rt w''                 =>  W(r) before w''
//   (d) r1 <rt r2                 =>  W(r1) before-or-equal W(r2)
//
// plus two local conditions: a read may not read from the future, and a
// read of the initial value may not follow a completed write. Because each
// processor is sequential, only the last predecessor per processor needs an
// explicit edge; per-processor chains supply the rest transitively.
//
// The checker is sound AND complete: when the graph is acyclic it builds an
// explicit witness linearization and re-verifies it against the register
// property and real-time order, so a defect in the theory above would
// surface as a loud internal error, not a wrong verdict. Completeness is
// additionally cross-validated against the exhaustive checker in tests.
//
// Complexity: O(N * P) edges for N operations and P processors; topological
// sort and verification are linear in graph size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "histories/history.hpp"

namespace bloom87 {

struct fast_check_result {
    bool linearizable{false};
    /// Witness linearization (copies, in linearization order) when
    /// linearizable.
    std::vector<operation> witness;
    /// For failures: a short explanation of the violated condition.
    std::string diagnosis;
    std::optional<std::string> defect;  ///< malformed input / internal error

    [[nodiscard]] bool ok() const noexcept { return !defect.has_value(); }
};

/// Checks atomicity of a register history in polynomial time.
/// Requires unique write values (enforced); accepts pending operations.
[[nodiscard]] fast_check_result check_fast(const std::vector<operation>& raw,
                                           value_t initial);

}  // namespace bloom87
