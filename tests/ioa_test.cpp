// Tests for src/ioa: the register specification automaton, the protocol
// automata, composition/synchronization mechanics, and fair executions of
// the full Figure 2 system checked for atomicity.
#include <gtest/gtest.h>

#include "ioa/executor.hpp"
#include "ioa/protocol_automata.hpp"
#include "ioa/register_automaton.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/fast_register.hpp"
#include "modelcheck/explorer.hpp"

namespace bloom87::ioa {
namespace {

TEST(RegisterAutomaton, ReadReturnsInitialValue) {
    register_automaton reg("Reg", 7, "w", {"r1"});
    reg.apply(action{act::read_request, "r1", 0});
    auto en = reg.enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::star_read);
    reg.apply(en[0]);
    en = reg.enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::read_ack);
    EXPECT_EQ(en[0].value, 7);
}

TEST(RegisterAutomaton, WriteTakesEffectAtStarAction) {
    register_automaton reg("Reg", 0, "w", {"r1"});
    reg.apply(action{act::write_request, "w", 42});
    EXPECT_EQ(reg.contents(), 0);  // not yet
    auto en = reg.enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::star_write);
    reg.apply(en[0]);
    EXPECT_EQ(reg.contents(), 42);  // the instant of the *-action
    en = reg.enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::write_ack);
}

TEST(RegisterAutomaton, ConcurrentReadersServedIndependently) {
    register_automaton reg("Reg", 3, "w", {"r1", "r2"});
    reg.apply(action{act::read_request, "r1", 0});
    reg.apply(action{act::read_request, "r2", 0});
    EXPECT_EQ(reg.enabled().size(), 2u);  // both stars enabled
}

TEST(RegisterAutomaton, ImproperInputIgnored) {
    // Input-enabledness: a second request on a busy channel must be
    // accepted (and may be ignored) -- the automaton must not wedge.
    register_automaton reg("Reg", 0, "w", {"r1"});
    reg.apply(action{act::read_request, "r1", 0});
    reg.apply(action{act::read_request, "r1", 0});  // improper
    auto en = reg.enabled();
    ASSERT_EQ(en.size(), 1u);
    reg.apply(en[0]);               // star
    reg.apply(reg.enabled()[0]);    // ack
    EXPECT_TRUE(reg.enabled().empty());
}

TEST(RegisterAutomaton, SignatureDisjoint) {
    register_automaton reg("Reg", 0, "w", {"r1"});
    for (auto k : {act::read_request, act::read_ack, act::star_read}) {
        const action a{k, "r1", 0};
        const int classes = int(reg.in_input(a)) + int(reg.in_output(a)) +
                            int(reg.in_internal(a));
        EXPECT_EQ(classes, 1) << to_string(a);
    }
    const action foreign{act::read_request, "other", 0};
    EXPECT_FALSE(reg.in_input(foreign) || reg.in_output(foreign) ||
                 reg.in_internal(foreign));
}

// ---------------------------------------------------------------------------
// Protocol automaton unit tests: step the writer and reader through their
// phases by hand.
// ---------------------------------------------------------------------------

TEST(WriterAutomaton, FollowsTheProtocolPhases) {
    auto wr = make_writer_automaton(0);
    EXPECT_TRUE(wr->enabled().empty());  // idle

    wr->apply(action{act::write_request, "ext:wr0", 42});
    auto en = wr->enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::read_request);
    EXPECT_EQ(en[0].channel, "wr0->reg1");  // reads the OTHER register

    wr->apply(en[0]);  // sends the read request
    EXPECT_TRUE(wr->enabled().empty());  // awaiting the tag

    // Reg1 answers with tag 1 (encoded value*2+tag).
    wr->apply(action{act::read_ack, "wr0->reg1", encode_tagged_value(7, true)});
    en = wr->enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::write_request);
    EXPECT_EQ(en[0].channel, "wr0->reg0");
    // t = 0 (+) 1 = 1; value 42 with tag 1.
    EXPECT_EQ(en[0].value, encode_tagged_value(42, true));

    wr->apply(en[0]);
    wr->apply(action{act::write_ack, "wr0->reg0", 0});
    en = wr->enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::write_ack);
    EXPECT_EQ(en[0].channel, "ext:wr0");
    wr->apply(en[0]);
    EXPECT_TRUE(wr->enabled().empty());  // back to idle
}

TEST(WriterAutomaton, ImproperSecondRequestIgnored) {
    auto wr = make_writer_automaton(1);
    wr->apply(action{act::write_request, "ext:wr1", 5});
    const auto before = wr->enabled();
    wr->apply(action{act::write_request, "ext:wr1", 99});  // improper
    const auto after = wr->enabled();
    ASSERT_EQ(before.size(), after.size());
    EXPECT_EQ(before[0], after[0]);  // state unchanged: still writing 5
}

TEST(ReaderAutomaton, PicksRegisterFromTagSum) {
    auto rd = make_reader_automaton(1);
    rd->apply(action{act::read_request, "ext:rd1", 0});
    auto en = rd->enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].channel, "rd1->reg0");
    rd->apply(en[0]);
    rd->apply(action{act::read_ack, "rd1->reg0", encode_tagged_value(1, false)});
    en = rd->enabled();
    ASSERT_EQ(en[0].channel, "rd1->reg1");
    rd->apply(en[0]);
    rd->apply(action{act::read_ack, "rd1->reg1", encode_tagged_value(2, true)});
    // tags 0 (+) 1 = 1: third read goes to Reg1.
    en = rd->enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].channel, "rd1->reg1");
    rd->apply(en[0]);
    rd->apply(action{act::read_ack, "rd1->reg1", encode_tagged_value(3, true)});
    en = rd->enabled();
    ASSERT_EQ(en.size(), 1u);
    EXPECT_EQ(en[0].kind, act::read_ack);
    EXPECT_EQ(en[0].channel, "ext:rd1");
    EXPECT_EQ(en[0].value, 3);  // the decoded value of the third read
}

// ---------------------------------------------------------------------------
// Exhaustive schedule exploration (replay-based: automata are rebuilt and
// the prefix re-applied for every branch). Complements the random fair
// executor: at a tiny bound, EVERY I/O-automaton schedule is atomic.
// ---------------------------------------------------------------------------

struct ioa_explore_stats {
    std::size_t schedules{0};
    std::size_t truncated{0};
    bool all_atomic{true};
    std::string first_failure;
};

template <typename Factory>
void explore_ioa(const Factory& factory, schedule& prefix,
                 ioa_explore_stats& stats, std::size_t max_schedules) {
    if (stats.schedules >= max_schedules) {
        ++stats.truncated;
        return;
    }
    // Rebuild and replay.
    simulated_register_system sys = factory();
    for (const scheduled_action& sa : prefix) {
        sys.system->apply(sa.owner, sa.act_taken);
    }
    const auto options = sys.system->enabled();
    if (options.empty()) {
        ++stats.schedules;
        const auto hist = external_history(prefix);
        const auto res = bloom87::check_fast(hist, 0);
        if (!res.ok() || !res.linearizable) {
            if (stats.all_atomic) {
                stats.first_failure = bloom87::mc::format_operations(hist);
            }
            stats.all_atomic = false;
        }
        return;
    }
    for (const auto& [owner, a] : options) {
        prefix.push_back(scheduled_action{owner, a});
        explore_ioa(factory, prefix, stats, max_schedules);
        prefix.pop_back();
    }
}

TEST(IoaExhaustive, EveryScheduleOfTinySystemIsAtomic) {
    // One write racing one read: small enough to enumerate completely (the
    // two-writer interactions are exhaustively covered by the dedicated
    // model checker; this validates the I/O-automaton machinery itself).
    auto factory = [] {
        std::vector<env_port> ports;
        ports.push_back({"ext:wr0", {{true, 101}}});
        ports.push_back({"ext:rd1", {{false, 0}}});
        return make_simulated_register(0, 1, std::move(ports));
    };
    schedule prefix;
    ioa_explore_stats stats;
    explore_ioa(factory, prefix, stats, 400000);
    EXPECT_EQ(stats.truncated, 0u) << "bound too small for exhaustiveness";
    EXPECT_GT(stats.schedules, 100u);
    EXPECT_TRUE(stats.all_atomic) << stats.first_failure;
}

// ---------------------------------------------------------------------------
// Full Figure 2 system under fair random execution.
// ---------------------------------------------------------------------------

class FairExecution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairExecution, ExternalScheduleIsAtomic) {
    std::vector<env_port> ports;
    ports.push_back({"ext:wr0",
                     {{true, 101}, {true, 102}, {true, 103}, {true, 104}}});
    ports.push_back({"ext:wr1",
                     {{true, 201}, {true, 202}, {true, 203}, {true, 204}}});
    ports.push_back({"ext:rd1", std::vector<env_op>(6, env_op{false, 0})});
    ports.push_back({"ext:rd2", std::vector<env_op>(6, env_op{false, 0})});

    simulated_register_system sys =
        make_simulated_register(0, /*num_readers=*/2, std::move(ports));
    const schedule sched = run_fair(*sys.system, GetParam());

    const std::vector<operation> hist = external_history(sched);
    EXPECT_EQ(hist.size(), 4u + 4u + 6u + 6u);
    for (const operation& op : hist) EXPECT_TRUE(op.complete());

    const auto res = check_fast(hist, 0);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.linearizable) << res.diagnosis;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairExecution,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(FairExecutionDetail, EveryRequestAcknowledged) {
    std::vector<env_port> ports;
    ports.push_back({"ext:wr0", {{true, 101}}});
    ports.push_back({"ext:rd1", {{false, 0}, {false, 0}}});
    simulated_register_system sys = make_simulated_register(9, 1, std::move(ports));
    const schedule sched = run_fair(*sys.system, 7);

    int requests = 0, acks = 0;
    for (const action& a : external_schedule(sched)) {
        requests += is_request(a.kind);
        acks += is_ack(a.kind);
    }
    EXPECT_EQ(requests, 3);
    EXPECT_EQ(acks, 3);
}

TEST(FairExecutionDetail, SoloReaderSeesInitialValue) {
    std::vector<env_port> ports;
    ports.push_back({"ext:rd1", {{false, 0}}});
    simulated_register_system sys = make_simulated_register(55, 1, std::move(ports));
    const schedule sched = run_fair(*sys.system, 3);
    const auto hist = external_history(sched);
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_EQ(hist[0].value, 55);
}

// The Section 7 proof, run on I/O-automaton executions: the schedule's star
// actions convert to a gamma sequence the constructive linearizer accepts.
class GammaBridge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaBridge, ConstructiveLinearizerAcceptsIoaExecutions) {
    std::vector<env_port> ports;
    ports.push_back({"ext:wr0", {{true, 101}, {true, 102}, {true, 103}}});
    ports.push_back({"ext:wr1", {{true, 201}, {true, 202}, {true, 203}}});
    ports.push_back({"ext:rd1", std::vector<env_op>(5, env_op{false, 0})});
    ports.push_back({"ext:rd2", std::vector<env_op>(5, env_op{false, 0})});
    simulated_register_system sys = make_simulated_register(0, 2, std::move(ports));
    const schedule sched = run_fair(*sys.system, GetParam() + 5000);

    const std::vector<event> gamma = to_gamma(sched);
    parse_result parsed = parse_history(gamma, 0);
    ASSERT_TRUE(parsed.ok()) << parsed.error->message;
    EXPECT_EQ(parsed.hist.ops.size(), 3u + 3u + 5u + 5u);

    const bloom_result res = bloom_linearize(parsed.hist);
    ASSERT_TRUE(res.ok()) << *res.defect;
    EXPECT_TRUE(res.atomic) << res.diagnosis;
    EXPECT_EQ(res.potent_count + res.impotent_count, 6u);

    // And the generic checker agrees.
    const auto fast = check_fast(parsed.hist.ops, 0);
    ASSERT_TRUE(fast.ok()) << *fast.defect;
    EXPECT_TRUE(fast.linearizable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaBridge,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(GammaBridgeDetail, ImpotentWritesAppearUnderIoaScheduling) {
    // The random fair executor explores far nastier interleavings than OS
    // threads do: impotent writes should appear within a few hundred seeds.
    std::size_t impotent = 0;
    for (std::uint64_t seed = 0; seed < 200 && impotent == 0; ++seed) {
        std::vector<env_port> ports;
        ports.push_back({"ext:wr0", {{true, 101}, {true, 102}}});
        ports.push_back({"ext:wr1", {{true, 201}, {true, 202}}});
        simulated_register_system sys =
            make_simulated_register(0, 1, std::move(ports));
        const schedule sched = run_fair(*sys.system, seed);
        parse_result parsed = parse_history(to_gamma(sched), 0);
        ASSERT_TRUE(parsed.ok());
        const bloom_result res = bloom_linearize(parsed.hist);
        ASSERT_TRUE(res.ok());
        ASSERT_TRUE(res.atomic) << res.diagnosis;
        impotent += res.impotent_count;
    }
    EXPECT_GT(impotent, 0u);
}

TEST(FairExecutionDetail, StarActionsAreInternal) {
    std::vector<env_port> ports;
    ports.push_back({"ext:wr0", {{true, 1}}});
    simulated_register_system sys = make_simulated_register(0, 1, std::move(ports));
    const schedule sched = run_fair(*sys.system, 11);
    for (const action& a : external_schedule(sched)) {
        EXPECT_FALSE(is_star(a.kind)) << to_string(a);
    }
    // But the register automata did take them.
    EXPECT_GT(sys.reg0->stars_taken() + sys.reg1->stars_taken(), 0u);
}

}  // namespace
}  // namespace bloom87::ioa
