// [TAB-E] Checker cost: the paper's constructive proof as an algorithm.
//
// Section 7's proof is constructive -- it assigns every operation its
// linearization point directly from the recorded real-register accesses, in
// O(n log n). A general-purpose linearizability checker must SEARCH for an
// order (exponential worst case even with memoization; the register-
// specialized polynomial checker sits in between). This bench records real
// concurrent executions of increasing size and times all three.
#include <chrono>
#include <iostream>
#include <thread>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/bloom_linearizer.hpp"
#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/recording.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"

using namespace bloom87;

namespace {

history record_execution(std::size_t ops_per_writer, std::size_t ops_per_reader,
                         std::size_t readers, std::uint64_t seed) {
    workload_config cfg;
    cfg.readers = readers;
    cfg.ops_per_writer = ops_per_writer;
    cfg.ops_per_reader = ops_per_reader;
    const workload w = make_workload(cfg, seed);

    event_log log(w.total_ops() * 8 + 64);
    two_writer_register<value_t, recording_register> reg(0, &log);
    start_gate gate;
    std::vector<std::thread> pool;
    for (std::size_t p = 0; p < w.scripts.size(); ++p) {
        pool.emplace_back([&, p] {
            gate.wait();
            if (p < 2) {
                auto& wr = p == 0 ? reg.writer0() : reg.writer1();
                for (const workload_op& op : w.scripts[p]) {
                    if (op.kind == op_kind::write) {
                        wr.write(op.value);
                    } else {
                        (void)wr.read();
                    }
                }
            } else {
                auto rd = reg.make_reader(static_cast<processor_id>(p));
                for (std::size_t k = 0; k < w.scripts[p].size(); ++k) {
                    (void)rd.read();
                }
            }
        });
    }
    gate.open();
    for (auto& t : pool) t.join();
    parse_result parsed = parse_history(log.snapshot(), 0);
    return std::move(parsed.hist);
}

template <typename F>
double time_ms(F&& f) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
    print_banner(std::cout, "TAB-E",
                 "Atomicity-checking cost vs history size");

    table t({"ops", "gamma events", "constructive (ms)", "fast register (ms)",
             "exhaustive (ms)", "all agree"});

    for (auto [opw, opr, readers] :
         {std::tuple<std::size_t, std::size_t, std::size_t>{5, 5, 2},
          {25, 25, 2},
          {100, 100, 3},
          {500, 500, 3},
          {2000, 2000, 4},
          {8000, 8000, 4}}) {
        const history h = record_execution(opw, opr, readers, opw * 31 + 7);

        bool constructive_ok = false, fast_ok = false;
        const double c_ms = time_ms([&] {
            const auto res = bloom_linearize(h);
            constructive_ok = res.ok() && res.atomic;
        });
        const double f_ms = time_ms([&] {
            const auto res = check_fast(h.ops, 0);
            fast_ok = res.ok() && res.linearizable;
        });
        std::string e_cell = "skipped (> 62 ops)";
        bool exhaustive_ok = true;
        if (h.ops.size() <= 62) {
            const double e_ms = time_ms([&] {
                const auto res = check_exhaustive(h.ops, 0);
                exhaustive_ok = res.ok() && res.linearizable;
            });
            e_cell = fixed(e_ms, 3);
        }
        t.row({with_commas(h.ops.size()), with_commas(h.gamma.size()),
               fixed(c_ms, 3), fixed(f_ms, 3), e_cell,
               constructive_ok && fast_ok && exhaustive_ok ? "yes (ATOMIC)"
                                                           : "** DISAGREE **"});
    }
    t.print(std::cout);

    std::cout << "\nExpected shape: the constructive linearizer (the paper's\n"
              << "proof, executed) and the polynomial register checker scale\n"
              << "near-linearly; exhaustive search is only feasible for tiny\n"
              << "histories. All verdicts agree: ATOMIC.\n";
    return 0;
}
